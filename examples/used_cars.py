"""The paper's motivating scenario: an online used-car database (Example 1).

Builds a car relation with categorical attributes (type, maker, color,
transmission) and ranking attributes (price, mileage), then answers the
paper's two introduction queries:

    Q1: SELECT TOP 10 FROM cars WHERE type = 'sedan' AND color = 'red'
        ORDER BY price + mileage ASC

    Q2: SELECT TOP 5 FROM cars WHERE maker = 'ford' AND type = 'convertible'
        ORDER BY (price - 10k)**2 + (mileage - 20k)**2 ASC

and the multi-dimensional analysis from the introduction: rolling up Q2 on
the maker dimension when the user is unhappy with the first answer.

Run with:  python examples/used_cars.py
"""

import random

from repro import Database, RankingCube, RankingCubeExecutor, Schema, compile_topk
from repro.relational import ranking_attr, selection_attr

TYPES = ["sedan", "convertible", "suv", "wagon"]
MAKERS = ["ford", "hyundai", "toyota", "bmw", "honda"]
COLORS = ["red", "silver", "black", "white", "blue", "green"]
TRANSMISSIONS = ["auto", "manual"]

ENCODERS = {
    "type": {name: i for i, name in enumerate(TYPES)},
    "maker": {name: i for i, name in enumerate(MAKERS)},
    "color": {name: i for i, name in enumerate(COLORS)},
    "transmission": {name: i for i, name in enumerate(TRANSMISSIONS)},
}


def car_schema() -> Schema:
    return Schema.of(
        [
            selection_attr("type", len(TYPES)),
            selection_attr("maker", len(MAKERS)),
            selection_attr("color", len(COLORS)),
            selection_attr("transmission", len(TRANSMISSIONS)),
            ranking_attr("price"),
            ranking_attr("mileage"),
        ]
    )


def generate_cars(count: int = 30_000, seed: int = 2006) -> list[tuple]:
    """Synthesize a car inventory with realistic price/mileage coupling."""
    rng = random.Random(seed)
    rows = []
    for _ in range(count):
        car_type = rng.randrange(len(TYPES))
        maker = rng.randrange(len(MAKERS))
        color = rng.randrange(len(COLORS))
        transmission = rng.randrange(len(TRANSMISSIONS))
        age = rng.uniform(0, 15)                     # years
        mileage = max(0.0, age * rng.uniform(6_000, 16_000))
        base = {0: 24_000, 1: 38_000, 2: 32_000, 3: 27_000}[car_type]
        brand_premium = {0: 1.0, 1: 0.85, 2: 1.05, 3: 1.5, 4: 1.0}[maker]
        price = max(
            1_500.0,
            base * brand_premium * (0.88 ** age) * rng.uniform(0.85, 1.15),
        )
        rows.append((car_type, maker, color, transmission, price, mileage))
    return rows


def describe(result, rows):
    for row in result:
        car = rows[row.tid]
        print(
            f"  {MAKERS[car[1]]:8s} {TYPES[car[0]]:12s} {COLORS[car[2]]:7s} "
            f"${car[4]:9,.0f}  {car[5]:9,.0f} mi   (score {row.score:,.1f})"
        )


def main() -> None:
    schema = car_schema()
    rows = generate_cars()
    db = Database()
    table = db.load_table("cars", schema, rows)
    cube = RankingCube.build(table, block_size=30)
    executor = RankingCubeExecutor(cube, table)

    q1 = compile_topk(
        "SELECT TOP 10 FROM cars WHERE type = 'sedan' AND color = 'red' "
        "ORDER BY price + mileage ASC",
        schema,
        value_encoders=ENCODERS,
    )
    print("Q1: top-10 red sedans by price + mileage")
    describe(executor.execute(q1), rows)

    q2 = compile_topk(
        "SELECT TOP 5 FROM cars WHERE maker = 'ford' AND type = 'convertible' "
        "ORDER BY (price - 10k)**2 + (mileage - 20k)**2 ASC",
        schema,
        value_encoders=ENCODERS,
    )
    print("\nQ2: top-5 Ford convertibles near $10k / 20k miles")
    describe(executor.execute(q2), rows)

    # The introduction's analysis step: "if a user is not satisfied by the
    # top-5 results returned by Q2, he/she may roll up on the maker
    # dimension and check the top-5 results on all convertibles."
    rollup = compile_topk(
        "SELECT TOP 5 FROM cars WHERE type = 'convertible' "
        "ORDER BY (price - 10k)**2 + (mileage - 20k)**2 ASC",
        schema,
        value_encoders=ENCODERS,
    )
    print("\nroll-up on maker: top-5 convertibles of any maker")
    describe(executor.execute(rollup), rows)

    # Drill back down along a different dimension.
    drill = compile_topk(
        "SELECT TOP 5 FROM cars WHERE type = 'convertible' AND transmission = "
        "'manual' ORDER BY (price - 10k)**2 + (mileage - 20k)**2 ASC",
        schema,
        value_encoders=ENCODERS,
    )
    print("\ndrill down on transmission: top-5 manual convertibles")
    describe(executor.execute(drill), rows)


if __name__ == "__main__":
    main()
