"""Multi-dimensional top-k analysis: roll-up / drill-down over a cube.

The paper frames ranking cubes as enabling OLAP-style *analysis* of top-k
results (Section 1): a user explores the answer space by adding, dropping,
and changing selection conditions while keeping an ad hoc ranking function.
This example drives a whole analysis session over one materialized cube —
every query is answered from the same structure, no re-scanning — and
reports the cumulative I/O compared to baseline scans.

Run with:  python examples/olap_analysis.py
"""

from repro import (
    BaselineExecutor,
    Database,
    LinearFunction,
    RankingCube,
    RankingCubeExecutor,
    TopKQuery,
)
from repro.workloads import SyntheticSpec, generate


def session_queries(schema):
    """An analyst's exploration: start narrow, roll up, slice elsewhere."""
    fn = LinearFunction(["n1", "n2"], [1.0, 1.0])
    skewed = LinearFunction(["n1", "n2"], [1.0, 0.2])
    return [
        ("slice a1=4, a2=1, a3=0", TopKQuery(5, {"a1": 4, "a2": 1, "a3": 0}, fn)),
        ("roll up a3", TopKQuery(5, {"a1": 4, "a2": 1}, fn)),
        ("roll up a2", TopKQuery(5, {"a1": 4}, fn)),
        ("change ranking weights", TopKQuery(5, {"a1": 4}, skewed)),
        ("drill down a3=2", TopKQuery(5, {"a1": 4, "a3": 2}, skewed)),
        ("pivot to a2=3 alone", TopKQuery(5, {"a2": 3}, skewed)),
        ("apex: no selections", TopKQuery(5, {}, fn)),
    ]


def main() -> None:
    dataset = generate(SyntheticSpec(num_tuples=40_000, seed=77))
    db = Database()
    table = dataset.load_into(db)
    cube = RankingCube.build(table, block_size=30)
    executor = RankingCubeExecutor(cube, table)
    for name in dataset.schema.selection_names:
        table.create_secondary_index(name)
    baseline = BaselineExecutor(table)

    print(f"analysis session over {table.num_rows} tuples\n")
    total_cube = total_baseline = 0
    for label, query in session_queries(dataset.schema):
        db.cold_cache()
        before = db.io_snapshot()
        result = executor.execute(query)
        cube_reads = db.io_since(before).reads

        db.cold_cache()
        before = db.io_snapshot()
        baseline_result = baseline.execute(query)
        baseline_reads = db.io_since(before).reads

        assert [round(r.score, 9) for r in result.rows] == [
            round(r.score, 9) for r in baseline_result.rows
        ]
        total_cube += cube_reads
        total_baseline += baseline_reads
        tids = ", ".join(str(t) for t in result.tids)
        print(f"{label:28s} top-5 tids [{tids}]")
        print(f"{'':28s} cube: {cube_reads:4d} pages | "
              f"baseline ({baseline.last_plan}): {baseline_reads:4d} pages")

    print(f"\nwhole session: ranking cube read {total_cube} pages, "
          f"baseline read {total_baseline} pages "
          f"({total_baseline / max(1, total_cube):.1f}x more)")


if __name__ == "__main__":
    main()
