"""Beyond the paper's core: the Section 6 extensions in action.

Three features the paper sketches as extensions/future work, implemented
here:

1. **Incremental maintenance** — tuples inserted after the cube build land
   in a delta store and are visible to queries immediately; a rebuild
   folds them in when the delta outgrows a threshold.
2. **Workload-aware fragment grouping** — dimensions that co-occur in the
   query log share a fragment, so hot queries avoid online intersection.
3. **Many ranking dimensions** — a router over cubes built on
   ranking-dimension groups serves functions over any covered subset.

Run with:  python examples/advanced_features.py
"""

import random

from repro import (
    Database,
    FragmentedRankingCube,
    LinearFunction,
    RankingCube,
    RankingCubeExecutor,
    Schema,
    TopKQuery,
)
from repro.core import (
    MultiCubeRouter,
    cooccurrence_grouping,
    evenly_partition,
    expected_covering_fragments,
)
from repro.relational import ranking_attr, selection_attr
from repro.workloads import SyntheticSpec, generate


def incremental_updates() -> None:
    print("=== 1. incremental maintenance (delta store) ===")
    dataset = generate(SyntheticSpec(num_tuples=10_000, seed=5))
    db = Database()
    table = dataset.load_into(db)
    cube = RankingCube.build(table)
    executor = RankingCubeExecutor(cube, table)
    query = TopKQuery(3, {"a1": 2, "a2": 5}, LinearFunction(["n1", "n2"], [1, 1]))

    before = executor.execute(query)
    print(f"before insert: top-3 = {before.tids} scores={[f'{s:.3f}' for s in before.scores]}")

    # a batch of new listings arrives, one of them unbeatable
    table.insert_rows([(2, 5, 0, 0.001, 0.001)])
    absorbed = cube.refresh_delta(table)
    after = executor.execute(query)
    print(f"absorbed {absorbed} new tuple(s); top-3 now = {after.tids} "
          f"scores={[f'{s:.3f}' for s in after.scores]}")
    print(f"delta size {cube.delta_size}; needs rebuild at 10%? "
          f"{cube.needs_rebuild(0.1)}")


def workload_aware_fragments() -> None:
    print("\n=== 2. workload-aware fragment grouping ===")
    dataset = generate(SyntheticSpec(num_selection_dims=8, num_tuples=8_000, seed=6))
    db = Database()
    table = dataset.load_into(db)
    dims = dataset.schema.selection_names

    # the query log pairs distant dimensions — worst case for even grouping
    rng = random.Random(1)
    workload = [("a1", "a8"), ("a2", "a7"), ("a3", "a6"), ("a4", "a5")] * 10

    even = evenly_partition(dims, 2)
    aware = cooccurrence_grouping(dims, workload, 2)
    print(f"even grouping:  {even}")
    print(f"  avg covering fragments: "
          f"{expected_covering_fragments(even, workload):.2f}")
    print(f"aware grouping: {aware}")
    print(f"  avg covering fragments: "
          f"{expected_covering_fragments(aware, workload):.2f}")

    cube = FragmentedRankingCube.build_fragments(table, fragments=aware)
    executor = RankingCubeExecutor(cube, table)
    query = TopKQuery(
        5,
        {"a1": rng.randrange(10), "a8": rng.randrange(10)},
        LinearFunction(["n1", "n2"], [1, 1]),
    )
    covering = cube.covering_cuboids(query.selection_names)
    print(f"hot query (a1, a8) is covered by {len(covering)} cuboid(s): "
          f"{[c.name for c in covering]}")
    print(f"answer: {executor.execute(query).tids}")


def many_ranking_dimensions() -> None:
    print("\n=== 3. many ranking dimensions (MultiCubeRouter) ===")
    schema = Schema.of(
        [selection_attr("a1", 5)]
        + [ranking_attr(f"n{j}") for j in range(1, 7)]  # six ranking dims
    )
    rng = random.Random(2)
    rows = [
        (rng.randrange(5),) + tuple(rng.random() for _ in range(6))
        for _ in range(8_000)
    ]
    db = Database()
    table = db.load_table("R", schema, rows)
    router = MultiCubeRouter.build(
        table,
        ranking_groups=[("n1", "n2"), ("n3", "n4"), ("n5", "n6"), ("n1", "n4")],
    )
    print(f"grids: {router.grids()}")
    for dims, weights in ((["n3", "n4"], [1.0, 0.5]), (["n1", "n4"], [2.0, 1.0])):
        query = TopKQuery(3, {"a1": 1}, LinearFunction(dims, weights))
        chosen = router.route(query).cube.grid.dims
        result = router.execute(query)
        print(f"query on {dims} -> cube {chosen}: top-3 {result.tids}")


if __name__ == "__main__":
    incremental_updates()
    workload_aware_fragments()
    many_ranking_dimensions()
