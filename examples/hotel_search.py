"""Hotel search with many selection dimensions: ranking fragments at work.

The paper's second motivating application (Section 1): hotels rank by
price and distance to a point of interest, and are filtered by many
boolean/categorical amenities — district, star level, complimentary
breakfast, internet, parking, pool, gym, pets, shuttle, spa.  Ten selection
dimensions make a full ranking cube (2^10 - 1 = 1023 cuboids) unreasonable;
ranking fragments of size 2 materialize only 15 cuboids and still answer
every query by intersecting tid lists.

Run with:  python examples/hotel_search.py
"""

import random

from repro import (
    Database,
    FragmentedRankingCube,
    LpDistance,
    RankingCubeExecutor,
    Schema,
    TopKQuery,
)
from repro.core import estimated_fragment_space
from repro.relational import ranking_attr, selection_attr

AMENITIES = [
    ("district", 12),
    ("stars", 5),
    ("breakfast", 2),
    ("internet", 2),
    ("parking", 2),
    ("pool", 2),
    ("gym", 2),
    ("pets", 2),
    ("shuttle", 2),
    ("spa", 2),
]


def hotel_schema() -> Schema:
    return Schema.of(
        [selection_attr(name, card) for name, card in AMENITIES]
        + [ranking_attr("price"), ranking_attr("distance")]
    )


def generate_hotels(count: int = 25_000, seed: int = 9) -> list[tuple]:
    rng = random.Random(seed)
    rows = []
    for _ in range(count):
        district = rng.randrange(12)
        stars = rng.choices(range(5), weights=[10, 25, 35, 20, 10])[0]
        flags = [1 if rng.random() < 0.3 + 0.1 * stars else 0 for _ in range(8)]
        price = max(30.0, rng.gauss(80 + 45 * stars, 30))
        distance = rng.uniform(0.1, 20.0)  # km to the conference venue
        rows.append((district, stars, *flags, price, distance))
    return rows


def main() -> None:
    schema = hotel_schema()
    rows = generate_hotels()
    db = Database()
    table = db.load_table("hotels", schema, rows)

    cube = FragmentedRankingCube.build_fragments(table, fragment_size=2)
    executor = RankingCubeExecutor(cube, table)

    print(f"{table.num_rows} hotels; fragments: {cube.fragments}")
    print(f"materialized cuboids: {len(cube.cuboids)} "
          f"(a full cube would need {2 ** len(AMENITIES) - 1})")
    estimate = estimated_fragment_space(
        len(AMENITIES), 2, table.num_rows, cube.fragment_size
    )
    ratio = estimate / table.num_rows
    print(f"Lemma 2 estimate: {estimate:,} stored entries ({ratio:.0f} x T)")

    # "Cheap three-star-or-better hotel with breakfast and internet, close
    # to the venue": selections span three different fragments, so the
    # executor intersects three cuboids' tid lists online.
    query = TopKQuery(
        5,
        {"stars": 3, "breakfast": 1, "internet": 1},
        LpDistance(["price", "distance"], [90.0, 0.0], p=1, weights=[1.0, 15.0]),
    )
    covering = cube.covering_cuboids(query.selection_names)
    print(f"\nquery covers {cube.covering_fragment_count(query.selection_names)} "
          f"fragments -> intersecting cuboids: {[c.name for c in covering]}")

    db.cold_cache()
    before = db.io_snapshot()
    result = executor.execute(query)
    io = db.io_since(before)
    print("top-5 three-star hotels with breakfast + internet, "
          "near $90 and close by:")
    for row in result:
        hotel = rows[row.tid]
        print(
            f"  district {hotel[0]:2d}  {hotel[1]}* "
            f"${hotel[-2]:6.0f}  {hotel[-1]:5.1f} km  (score {row.score:.1f})"
        )
    print(f"pages read: {io.reads}; tuples examined: {result.tuples_examined} "
          f"out of {table.num_rows}")

    # Progressive refinement: add a pool requirement (fourth fragment).
    refined = TopKQuery(
        5,
        {"stars": 3, "breakfast": 1, "internet": 1, "pool": 1},
        query.ranking,
    )
    result = executor.execute(refined)
    print("\nrefined with pool = yes:")
    for row in result:
        hotel = rows[row.tid]
        print(
            f"  district {hotel[0]:2d}  {hotel[1]}* "
            f"${hotel[-2]:6.0f}  {hotel[-1]:5.1f} km  (score {row.score:.1f})"
        )


if __name__ == "__main__":
    main()
