"""Quickstart: build a ranking cube and answer top-k queries.

Generates a small synthetic relation, materializes the ranking cube, and
answers a few queries three ways — via the cube, via the SQL front-end,
and via the baseline for comparison — printing answers and I/O costs.

Run with:  python examples/quickstart.py
"""

from repro import (
    BaselineExecutor,
    Database,
    LinearFunction,
    RankingCube,
    RankingCubeExecutor,
    TopKQuery,
    compile_topk,
)
from repro.workloads import SyntheticSpec, generate


def main() -> None:
    # 1. Generate and load a relation: 3 selection dims (cardinality 10),
    #    2 ranking dims, 20k tuples.
    dataset = generate(SyntheticSpec(num_tuples=20_000, seed=7))
    db = Database()
    table = dataset.load_into(db)
    print(f"loaded {table.num_rows} tuples, schema: "
          f"selections={dataset.schema.selection_names} "
          f"rankings={dataset.schema.ranking_names}")

    # 2. Materialize the ranking cube (equi-depth partition, block size 30).
    cube = RankingCube.build(table, block_size=30)
    print(cube.describe())
    executor = RankingCubeExecutor(cube, table)

    # 3. A programmatic top-k query: TOP 5 WHERE a1=3 AND a2=7
    #    ORDER BY n1 + 2*n2.
    query = TopKQuery(5, {"a1": 3, "a2": 7}, LinearFunction(["n1", "n2"], [1.0, 2.0]))
    db.cold_cache()
    before = db.io_snapshot()
    result = executor.execute(query)
    io = db.io_since(before)
    print("\nranking cube answer:")
    for row in result:
        print(f"  tid={row.tid:6d} score={row.score:.4f}")
    print(f"  pages read: {io.reads} "
          f"(random {io.random_reads}, sequential {io.sequential_reads}); "
          f"tuples examined: {result.tuples_examined}")

    # 4. The same query through the SQL front-end.
    sql_query = compile_topk(
        "SELECT TOP 5 FROM R WHERE a1 = 3 AND a2 = 7 ORDER BY n1 + 2*n2",
        dataset.schema,
    )
    sql_result = executor.execute(sql_query)
    assert sql_result.tids == result.tids
    print("\nSQL front-end returns the same answer:", sql_result.tids)

    # 5. Compare against the baseline (scan / per-dimension indexes).
    for name in dataset.schema.selection_names:
        table.create_secondary_index(name)
    baseline = BaselineExecutor(table)
    db.cold_cache()
    before = db.io_snapshot()
    baseline_result = baseline.execute(query)
    io_bl = db.io_since(before)
    assert [round(r.score, 9) for r in baseline_result.rows] == [
        round(r.score, 9) for r in result.rows
    ]
    print(f"\nbaseline ({baseline.last_plan}) examined "
          f"{baseline_result.tuples_examined} tuples and read {io_bl.reads} pages;"
          f"\nranking cube examined {result.tuples_examined} tuples and read "
          f"{io.reads} pages.")


if __name__ == "__main__":
    main()
