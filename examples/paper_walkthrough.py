"""The paper's running example, narrated step by step (Sections 3.1-3.2).

Recreates Tables 1-6 and Figures 1-3 of the paper: the 5-tuple database,
the equi-depth partition with bin boundaries [0,.4,.45,.8,1] x
[0,.2,.45,.9,1], the pseudo-block scaling, and the two-stage execution of

    SELECT TOP 2 FROM R WHERE A1 = 1 AND A2 = 1 ORDER BY N1 + N2

printing the S and H lists at each stage exactly as Tables 5 and 6 do.

Run with:  python examples/paper_walkthrough.py
"""

import heapq

from repro import Database, LinearFunction, RankingCube, RankingCubeExecutor, Schema, TopKQuery
from repro.core import ExecutorTrace, grid_from_boundaries
from repro.relational import ranking_attr, selection_attr

BIN_N1 = (0.0, 0.4, 0.45, 0.8, 1.0)
BIN_N2 = (0.0, 0.2, 0.45, 0.9, 1.0)

#: Reconstructed Table 1: (A1, A2, N1, N2); tid i is the paper's t_{i+1}.
ROWS = [
    (1, 1, 0.05, 0.05),  # t1
    (0, 0, 0.90, 0.95),  # t2
    (1, 1, 0.05, 0.25),  # t3
    (1, 1, 0.35, 0.15),  # t4
    (1, 0, 0.50, 0.50),  # t5
]


def paper_name(bid, grid):
    """Map a 0-based bid back to the paper's b1..b16 naming."""
    col, row = grid.coords_of(bid)
    return f"b{row * 4 + col + 1}"


def main() -> None:
    schema = Schema.of(
        [
            selection_attr("A1", 2),
            selection_attr("A2", 2),
            ranking_attr("N1"),
            ranking_attr("N2"),
        ]
    )
    db = Database()
    table = db.load_table("R", schema, ROWS)
    grid = grid_from_boundaries(("N1", "N2"), [BIN_N1, BIN_N2])
    cube = RankingCube.build(table, grid=grid, block_size=30)

    print("Table 1 — the example database:")
    print("  tid  A1  A2    N1    N2")
    for tid, (a1, a2, n1, n2) in enumerate(ROWS):
        print(f"  t{tid + 1:<3} {a1:2d}  {a2:2d}  {n1:.2f}  {n2:.2f}")

    print("\nTable 4 — meta information:")
    print(f"  bin boundaries of N1: {list(BIN_N1)}")
    print(f"  bin boundaries of N2: {list(BIN_N2)}")
    cuboid = cube.cuboid(("A1", "A2"))
    print(f"  scale factor of cuboid A1A2|N1N2: {cuboid.scale_factor}")

    print("\nFigure 1 — equi-depth partitioning (tuple -> base block):")
    for tid, row in enumerate(ROWS):
        bid = grid.locate(row[2:])
        print(f"  t{tid + 1} -> {paper_name(bid, grid)}")

    print("\nTable 3 — cuboid cell (A1=1, A2=1, p1):")
    entries = sorted(cuboid.get_pseudo_block((1, 1), 0))
    rendered = ", ".join(
        f"t{tid + 1}({paper_name(bid, grid)})" for tid, bid in entries
    )
    print(f"  {rendered}")

    print("\nSection 3.2.3 — processing the top-2 query:")
    fn = LinearFunction(["N1", "N2"], [1.0, 1.0])
    query = TopKQuery(2, {"A1": 1, "A2": 1}, fn)
    positions = grid.project(fn.dims)

    # Re-run the search loop manually to print stage-by-stage lists.
    def bound(bid):
        lower, upper = grid.sub_box(bid, positions)
        return fn.min_over_box(lower, upper)

    start = grid.locate((0.0, 0.0))
    frontier = [(bound(start), start)]
    inserted = {start}
    seen: list[tuple[float, int]] = []
    executor = RankingCubeExecutor(cube, table)
    stage = 0
    while frontier:
        s_unseen = frontier[0][0]
        if len(seen) >= 2 and max(s for s, _t in seen[:2]) <= s_unseen:
            print(f"\n  stop: S_2 = {sorted(seen)[1][0]:.2f} <= "
                  f"S_unseen = {s_unseen:.2f}")
            break
        _b, bid = heapq.heappop(frontier)
        stage += 1
        print(f"\n  stage {stage}: candidate block {paper_name(bid, grid)}")
        entries = cuboid.get_pseudo_block((1, 1), cuboid.pid_of_bid(bid))
        tids = [tid for tid, entry_bid in entries if entry_bid == bid]
        for tid, values in cube.base_table.get_base_block(bid):
            if tid not in tids:
                continue
            score = fn.score([values[p] for p in positions])
            seen.append((score, tid))
            print(f"    evaluate t{tid + 1}: f = {score:.2f}")
        for neighbor in grid.neighbors(bid):
            if neighbor not in inserted:
                inserted.add(neighbor)
                heapq.heappush(frontier, (bound(neighbor), neighbor))
        seen.sort()
        s_list = ", ".join(f"f(t{t + 1})={s:.2f}" for s, t in seen)
        h_list = ", ".join(
            f"f({paper_name(b, grid)})={s:.2f}" for s, b in sorted(frontier)
        )
        print(f"    S list: {s_list}")
        print(f"    H list: {h_list}")

    result = executor.execute(query, trace=(trace := ExecutorTrace()))
    answers = ", ".join(f"t{r.tid + 1} (f={r.score:.2f})" for r in result)
    print(f"\n  answer: {answers}")
    print(f"  executor trace: candidate blocks "
          f"{[paper_name(b, grid) for b in trace.candidate_bids]}, "
          f"{trace.pseudo_block_fetches} pseudo-block fetch(es), "
          f"{trace.pseudo_block_buffer_hits} buffer hit(s)")


if __name__ == "__main__":
    main()
