"""Figure 9: query cost vs. s, the number of selection conditions (S=4).

Paper shape: more conditions help the Baseline (fewer qualifying tuples)
while the ranking cube's cost rises only mildly and stays competitive
throughout; the curves converge at s=4 where almost nothing qualifies.
"""

import pytest

from conftest import emit
from repro.bench import METHOD_RANKING_CUBE, build_environment
from repro.bench.experiments import fig09_selections
from repro.workloads import QueryGenerator, QuerySpec, SyntheticSpec, generate


@pytest.fixture(scope="module")
def result(bench_tuples, bench_queries):
    return fig09_selections(
        num_tuples=bench_tuples, queries_per_point=bench_queries
    )


def test_fig09_shape_and_multi_condition_query(benchmark, result, bench_tuples):
    emit(result)
    baseline_tuples = result.series("baseline", "tuples_examined")
    # each added condition divides BL's evaluated set by ~C
    assert baseline_tuples[0] > 5 * baseline_tuples[-1]
    cube = result.series("ranking_cube", "pages_read")
    baseline = result.series("baseline", "pages_read")
    # RC wins clearly at low s (the regime the paper motivates)
    assert cube[0] < baseline[0]
    assert cube[1] < baseline[1]

    dataset = generate(
        SyntheticSpec(num_selection_dims=4, num_tuples=bench_tuples, seed=47)
    )
    env = build_environment(dataset, (METHOD_RANKING_CUBE,))
    query = QueryGenerator(
        dataset.schema, QuerySpec(num_selections=3, seed=3)
    ).generate()
    executor = env.executors[METHOD_RANKING_CUBE]

    def run():
        env.db.cold_cache()
        return executor.execute(query)

    benchmark(run)
