"""Extra experiment: Onion [8] and PREFER [6] vs. the ranking cube.

Quantifies the paper's Section 1 motivation: both prior-art rank-aware
structures answer pure ranking queries well but are "not aware of the
multi-dimensional selection conditions" — every added equality condition
multiplies their fetch-and-filter work, while the ranking cube barely
notices.
"""

import pytest

from conftest import emit
from repro.baselines import OnionIndex, PreferView
from repro.bench.experiments import extra_prior_art
from repro.ranking import LinearFunction
from repro.relational import Database, TopKQuery
from repro.workloads import SyntheticSpec, generate


@pytest.fixture(scope="module")
def result(bench_tuples, bench_queries):
    return extra_prior_art(
        num_tuples=bench_tuples, queries_per_point=bench_queries
    )


def test_prior_art_degrades_with_selections(benchmark, result, bench_tuples):
    emit(result)
    onion = result.series("onion", "pages_read")
    prefer = result.series("prefer", "pages_read")
    cube = result.series("ranking_cube", "pages_read")
    # with selections the cube beats both prior-art structures
    assert cube[2] < onion[2]
    assert cube[2] < prefer[2]
    # and the prior art degrades sharply from s=0 to s=2
    assert onion[2] > 5 * max(1.0, onion[0])
    assert prefer[2] > 5 * max(1.0, prefer[0])
    # while the cube stays within a small factor
    assert cube[2] < 10 * max(1.0, cube[0])

    # benchmark Onion's sweet spot — the pure ranking query — for context
    dataset = generate(SyntheticSpec(num_tuples=min(bench_tuples, 10_000), seed=103))
    db = Database()
    table = dataset.load_into(db)
    onion_index = OnionIndex(table)
    query = TopKQuery(10, {}, LinearFunction(["n1", "n2"], [1.0, 0.5]))

    def run():
        return onion_index.execute(query)

    answer = benchmark(run)
    assert len(answer.rows) == 10


def test_prefer_view_build_benchmark(benchmark, bench_tuples):
    dataset = generate(SyntheticSpec(num_tuples=min(bench_tuples, 10_000), seed=104))
    db = Database()
    table = dataset.load_into(db)

    def build():
        return PreferView(table)

    view = benchmark.pedantic(build, rounds=3, iterations=1)
    assert len(view) == min(bench_tuples, 10_000)


def test_hybrid_routing_tracks_cheaper_path(benchmark, bench_tuples, bench_queries):
    from repro.bench.experiments import extra_hybrid_routing

    result = extra_hybrid_routing(
        num_tuples=bench_tuples, queries_per_point=bench_queries
    )
    emit(result, metric="io_cost")
    baseline = result.series("baseline", "io_cost")
    cube = result.series("ranking_cube", "io_cost")
    hybrid = result.series("hybrid", "io_cost")
    for bl, rc, hy in zip(baseline, cube, hybrid):
        # the hybrid never does worse than both fixed paths, and stays
        # within the cost-model's slack of the better one
        assert hy <= max(bl, rc) + 1e-9
        assert hy <= 2.0 * min(bl, rc) + 30

    # micro-benchmark the estimate itself (it runs per query)
    from repro.core import RankingCube
    from repro.core.hybrid import HybridExecutor
    from repro.ranking import LinearFunction
    from repro.relational import Database, TopKQuery
    from repro.workloads import SyntheticSpec, generate

    dataset = generate(SyntheticSpec(num_tuples=4000, seed=109))
    db = Database()
    table = dataset.load_into(db)
    for name in dataset.schema.selection_names:
        table.create_secondary_index(name)
    hybrid_executor = HybridExecutor(RankingCube.build(table), table)
    query = TopKQuery(5, {"a1": 1}, LinearFunction(["n1", "n2"], [1, 1]))

    def estimate():
        return hybrid_executor.estimate(query)

    cube_cost, baseline_cost = benchmark(estimate)
    assert cube_cost.pages > 0
    assert baseline_cost.pages > 0
