"""Figure 11: space usage vs. number of selection dimensions S.

Paper shape: all three configurations (Baseline's secondary indexes, Rank
Mapping's per-fragment composite indexes, Ranking Fragments) grow linearly
with S; the fragments cost ~1-2.5x the alternatives — "a fairly acceptable
cost paid for materialization".
"""

import pytest

from conftest import emit
from repro.bench.experiments import fig11_space
from repro.core import estimated_fragment_space
from repro.relational import Database
from repro.workloads import SyntheticSpec, generate


@pytest.fixture(scope="module")
def result(bench_tuples):
    return fig11_space(num_tuples=max(4000, bench_tuples // 4))


def test_fig11_shape_and_fragment_build(benchmark, result):
    emit(result, metric="space_bytes")
    for method in result.methods:
        series = result.series(method, "space_bytes")
        # linear-ish growth: doubling S roughly doubles the increment
        first_growth = series[1] - series[0]
        assert first_growth > 0
        assert series[-1] > series[0]
        # convexity check against super-linear blow-up: the growth per
        # added dimension stays within 3x of the first increment
        dims = result.xs()
        for i in range(1, len(series) - 1):
            per_dim = (series[i + 1] - series[i]) / (dims[i + 1] - dims[i])
            base = first_growth / (dims[1] - dims[0])
            assert per_dim < 3 * base
    fragments = result.series("ranking_fragments", "space_bytes")
    baseline = result.series("baseline", "space_bytes")
    # RF within a small constant factor of BL at the largest S
    assert fragments[-1] < 6 * baseline[-1]

    # Lemma 2 sanity: the analytic estimate also grows linearly
    t = 10_000
    estimates = [estimated_fragment_space(s, 2, t, 2) for s in (4, 8, 12, 16)]
    increments = [b - a for a, b in zip(estimates, estimates[1:])]
    assert max(increments) == min(increments)

    # benchmark fragment materialization
    dataset = generate(SyntheticSpec(num_selection_dims=8, num_tuples=3000))

    def build():
        from repro.core import FragmentedRankingCube

        db = Database()
        table = dataset.load_into(db)
        return FragmentedRankingCube.build_fragments(table, fragment_size=2)

    cube = benchmark(build)
    assert len(cube.cuboids) == 12
