"""Figure 14: query cost vs. number of selection dimensions S (s=3).

Paper shape: Rank Mapping degrades as S grows (its per-fragment
multi-dimensional indexes rarely cover a random query, forcing wide scans
and residual heap fetches); the Baseline is flat; Ranking Fragments stay
flat-ish and cheapest.
"""

import pytest

from conftest import emit
from repro.bench import METHOD_RANKING_FRAGMENTS, build_environment
from repro.bench.experiments import fig14_num_dims
from repro.workloads import QueryGenerator, QuerySpec, SyntheticSpec, generate


@pytest.fixture(scope="module")
def result(bench_tuples, bench_queries):
    return fig14_num_dims(
        num_tuples=bench_tuples, queries_per_point=bench_queries
    )


def test_fig14_shape_and_high_dim_query(benchmark, result, bench_tuples):
    emit(result)
    fragments = result.series("ranking_fragments", "pages_read")
    rank_mapping = result.series("rank_mapping", "pages_read")
    baseline = result.series("baseline", "pages_read")
    # RF cheapest at the highest dimensionality
    assert fragments[-1] < baseline[-1]
    assert fragments[-1] < rank_mapping[-1]
    # RM at S=12 is much worse than RM at S=3 relative to RF
    assert rank_mapping[-1] / max(1.0, fragments[-1]) > rank_mapping[0] / max(
        1.0, fragments[0]
    ) * 0.5
    # RF stays flat-ish across S
    assert max(fragments) < 4 * max(1.0, min(fragments))

    dataset = generate(
        SyntheticSpec(num_selection_dims=12, num_tuples=bench_tuples, seed=71)
    )
    env = build_environment(dataset, (METHOD_RANKING_FRAGMENTS,), fragment_size=2)
    query = QueryGenerator(
        dataset.schema, QuerySpec(num_selections=3, seed=71)
    ).generate()
    executor = env.executors[METHOD_RANKING_FRAGMENTS]

    def run():
        env.db.cold_cache()
        return executor.execute(query)

    benchmark(run)
