"""Figure 7: query cost vs. database size T.

Paper shape: Baseline and Rank Mapping degrade as T grows (more qualifying
tuples to evaluate / larger ranges); the ranking cube's cost is essentially
flat — the property that makes it "especially attractive for larger data".
"""

import pytest

from conftest import emit
from repro.bench import METHOD_RANKING_CUBE, build_environment
from repro.bench.experiments import fig07_dbsize
from repro.workloads import QueryGenerator, QuerySpec, SyntheticSpec, generate


@pytest.fixture(scope="module")
def result(bench_tuples, bench_queries):
    sizes = (bench_tuples // 3, bench_tuples, bench_tuples * 3)
    return fig07_dbsize(sizes=sizes, queries_per_point=bench_queries)


def test_fig07_shape_and_large_db_query(benchmark, result, bench_tuples):
    emit(result)
    baseline = result.series("baseline", "pages_read")
    cube = result.series("ranking_cube", "pages_read")
    # BL cost grows with T
    assert baseline[-1] > 2 * baseline[0]
    # RC cost is nearly flat: grows far slower than the data
    assert cube[-1] < 3 * cube[0]
    # and RC wins at the largest size by a growing factor
    assert cube[-1] < baseline[-1] / 3

    dataset = generate(SyntheticSpec(num_tuples=bench_tuples * 3, seed=41))
    env = build_environment(dataset, (METHOD_RANKING_CUBE,))
    query = QueryGenerator(dataset.schema, QuerySpec(seed=11)).generate()
    executor = env.executors[METHOD_RANKING_CUBE]

    def run():
        env.db.cold_cache()
        return executor.execute(query)

    benchmark(run)
