"""Figure 8: query cost vs. selection-dimension cardinality C.

Paper shape: increasing C favors the Baseline (selections filter more);
the ranking cube's cost bumps up at moderate C (sparser pseudo blocks
force more base-block verifications) and recovers at high C, where most
pseudo-block probes find empty cells and skip the base block entirely —
the robustness of combining the two access methods (Section 3.2.1).
"""

import pytest

from conftest import emit
from repro.bench import METHOD_RANKING_CUBE, build_environment
from repro.bench.experiments import fig08_cardinality
from repro.core import ExecutorTrace
from repro.workloads import QueryGenerator, QuerySpec, SyntheticSpec, generate


@pytest.fixture(scope="module")
def result(bench_tuples, bench_queries):
    return fig08_cardinality(
        num_tuples=bench_tuples, queries_per_point=bench_queries
    )


def test_fig08_shape_and_empty_cell_skip(benchmark, result, bench_tuples):
    emit(result)
    baseline = result.series("baseline", "tuples_examined")
    # BL examines ever fewer tuples as C grows
    assert baseline[-1] < baseline[0]
    cube_pages = result.series("ranking_cube", "pages_read")
    # RC stays bounded across the whole sweep (robustness claim): no point
    # costs more than a small multiple of the cheapest point
    assert max(cube_pages) < 8 * max(1.0, min(cube_pages))

    # empty-cell skipping really happens at high cardinality
    dataset = generate(
        SyntheticSpec(cardinality=100, num_tuples=bench_tuples, seed=43)
    )
    env = build_environment(dataset, (METHOD_RANKING_CUBE,))
    query = QueryGenerator(dataset.schema, QuerySpec(seed=7)).generate()
    executor = env.executors[METHOD_RANKING_CUBE]
    trace = ExecutorTrace()
    env.db.cold_cache()
    executor.execute(query, trace=trace)
    assert trace.empty_cells_skipped > 0

    def run():
        env.db.cold_cache()
        return executor.execute(query)

    benchmark(run)
