"""Figure 13: fragment query cost vs. fragment size F.

Paper shape: larger fragments cover queries with fewer cuboids, so the
same s=3 workload gets cheaper as F grows from 1 to 3 (at the price of the
space measured in Figure 11).
"""

import pytest

from conftest import emit
from repro.bench import METHOD_RANKING_FRAGMENTS, build_environment
from repro.bench.experiments import fig13_fragment_size
from repro.workloads import QueryGenerator, QuerySpec, SyntheticSpec, generate


@pytest.fixture(scope="module")
def result(bench_tuples, bench_queries):
    return fig13_fragment_size(
        num_tuples=bench_tuples, queries_per_point=bench_queries
    )


def test_fig13_shape_and_f3_query(benchmark, result, bench_tuples):
    emit(result)
    pages = result.series("ranking_fragments", "pages_read")
    # F=3 answers the s=3 workload with fewer page reads than F=1
    assert pages[-1] < pages[0]

    dataset = generate(
        SyntheticSpec(num_selection_dims=12, num_tuples=bench_tuples, seed=67)
    )
    env = build_environment(dataset, (METHOD_RANKING_FRAGMENTS,), fragment_size=3)
    query = QueryGenerator(
        dataset.schema, QuerySpec(num_selections=3, seed=67)
    ).generate()
    executor = env.executors[METHOD_RANKING_FRAGMENTS]

    def run():
        env.db.cold_cache()
        return executor.execute(query)

    benchmark(run)
