"""Figure 15: cost vs. k on the Forest CoverType stand-in (real data).

Paper shape: on this low-cardinality, correlated data the Baseline beats
Rank Mapping (cardinality-2 selections filter poorly, so RM's ranges
return floods of tuples), and Ranking Fragments remain the fastest at
every k.
"""

import pytest

from conftest import emit
from repro.bench import METHOD_RANKING_FRAGMENTS, build_environment
from repro.bench.experiments import fig15_covertype
from repro.workloads import CoverTypeSpec, QueryGenerator, QuerySpec, generate_covertype


@pytest.fixture(scope="module")
def result(bench_tuples, bench_queries):
    return fig15_covertype(
        num_tuples=bench_tuples, queries_per_point=bench_queries
    )


def test_fig15_shape_and_covertype_query(benchmark, result, bench_tuples):
    emit(result)
    fragments = result.series("ranking_fragments", "pages_read")
    baseline = result.series("baseline", "pages_read")
    # RF consistently best, at every k (the paper's headline for Fig 15)
    assert all(rf < bl for rf, bl in zip(fragments, baseline))
    # RF examines a tiny fraction of what BL evaluates
    assert result.series("ranking_fragments", "tuples_examined")[0] < (
        result.series("baseline", "tuples_examined")[0] / 3
    )

    dataset = generate_covertype(CoverTypeSpec(num_tuples=bench_tuples, seed=73))
    env = build_environment(dataset, (METHOD_RANKING_FRAGMENTS,), fragment_size=3)
    query = QueryGenerator(
        dataset.schema, QuerySpec(num_selections=3, num_ranking_dims=3, seed=73)
    ).generate()
    executor = env.executors[METHOD_RANKING_FRAGMENTS]

    def run():
        env.db.cold_cache()
        return executor.execute(query)

    benchmark(run)
