"""Figure 12: fragment query cost vs. number of covering fragments.

Paper shape: cost grows with the covering-fragment count (each extra
fragment adds a cuboid to probe and intersect) — roughly 1.4x for two and
2x for three fragments relative to one; even three stays far below the
baselines (cross-checked in Figure 14's experiment).
"""

import pytest

from conftest import emit
from repro.bench import METHOD_RANKING_FRAGMENTS, build_environment
from repro.bench.experiments import fig12_covering_fragments
from repro.workloads import QueryGenerator, QuerySpec, SyntheticSpec, generate


@pytest.fixture(scope="module")
def result(bench_tuples, bench_queries):
    return fig12_covering_fragments(
        num_tuples=bench_tuples, queries_per_point=bench_queries
    )


def test_fig12_shape_and_intersection_path(benchmark, result, bench_tuples):
    emit(result)
    pages = result.series("ranking_fragments", "pages_read")
    # more covering fragments -> more I/O, monotonically
    assert pages[0] <= pages[1] <= pages[2]
    assert pages[2] > pages[0]
    # but bounded: three fragments cost within ~4x of one (paper: ~2x)
    assert pages[2] < 4 * max(1.0, pages[0])

    dataset = generate(
        SyntheticSpec(num_selection_dims=12, num_tuples=bench_tuples, seed=61)
    )
    env = build_environment(dataset, (METHOD_RANKING_FRAGMENTS,), fragment_size=2)
    assert env.cube is not None
    gen = QueryGenerator(dataset.schema, QuerySpec(num_selections=3, seed=61))
    # a deliberately three-fragment query
    query = gen.constrained(["a1", "a3", "a5"])
    executor = env.executors[METHOD_RANKING_FRAGMENTS]

    def run():
        env.db.cold_cache()
        return executor.execute(query)

    benchmark(run)
