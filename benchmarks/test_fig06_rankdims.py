"""Figure 6: query cost vs. r, the ranking dimensions used (R=4 data).

Paper shape: the ranking cube gets slightly *more* expensive as r
decreases below R — a low-dimensional query projects the 4-d blocks onto
fewer dimensions, so more blocks tie on the same bound and must be
retrieved.  The Baseline is insensitive to r.
"""

import pytest

from conftest import emit
from repro.bench import METHOD_RANKING_CUBE, build_environment
from repro.bench.experiments import fig06_ranking_dims
from repro.workloads import QueryGenerator, QuerySpec, SyntheticSpec, generate


@pytest.fixture(scope="module")
def result(bench_tuples, bench_queries):
    return fig06_ranking_dims(
        num_tuples=bench_tuples, queries_per_point=bench_queries
    )


def test_fig06_shape_and_projection_cost(benchmark, result, bench_tuples):
    emit(result)
    baseline = result.series("baseline", "pages_read")
    cube = result.series("ranking_cube", "pages_read")
    assert all(rc < bl for rc, bl in zip(cube, baseline))
    # BL insensitive to r
    assert max(baseline) <= 1.2 * min(baseline)
    # projection effect: r=1 costs the cube at least as much as r=R
    assert cube[0] >= cube[-1]

    dataset = generate(
        SyntheticSpec(num_ranking_dims=4, num_tuples=bench_tuples, seed=37)
    )
    env = build_environment(dataset, (METHOD_RANKING_CUBE,), block_size=60)
    query = QueryGenerator(
        dataset.schema, QuerySpec(num_ranking_dims=2, seed=3)
    ).generate()
    executor = env.executors[METHOD_RANKING_CUBE]

    def run():
        env.db.cold_cache()
        return executor.execute(query)

    benchmark(run)
