"""Ablation benchmarks for the design choices DESIGN.md §6 calls out.

* partitioning strategy (equi-depth vs. equi-width) on skewed data,
* pseudo-block buffering at the retrieve step,
* micro-benchmarks of the structural primitives the query path leans on
  (block bound computation, pseudo-block mapping, covering selection).
"""

import pytest

from conftest import emit
from repro.bench.experiments import ablation_buffering, ablation_partitioner
from repro.core import BlockGrid, PseudoBlockMap, RankingCube
from repro.ranking import LinearFunction
from repro.relational import Database
from repro.workloads import SyntheticSpec, generate


def test_partitioner_ablation(benchmark, bench_tuples, bench_queries):
    result = ablation_partitioner(
        num_tuples=bench_tuples, queries_per_point=bench_queries
    )
    emit(result)
    depth = result.points[0].metrics["ranking_cube"]
    width = result.points[1].metrics["ranking_cube"]
    # on gaussian data equi-depth should not lose badly to equi-width;
    # typically it wins by adapting bin widths to density
    assert depth.pages_read < 2 * width.pages_read

    # benchmark the partition build itself on skewed data
    dataset = generate(
        SyntheticSpec(
            num_tuples=bench_tuples, ranking_distribution="gaussian", seed=79
        )
    )
    columns = list(zip(*(row[3:] for row in dataset.rows)))

    from repro.core import EquiDepthPartitioner

    def build():
        return EquiDepthPartitioner().build_grid(("n1", "n2"), columns, 30)

    grid = benchmark(build)
    assert grid.num_blocks > 1


def test_buffering_ablation(benchmark, bench_tuples, bench_queries):
    result = ablation_buffering(
        num_tuples=bench_tuples, queries_per_point=bench_queries
    )
    emit(result)
    on = result.points[0].metrics["ranking_cube"]
    off = result.points[1].metrics["ranking_cube"]
    # buffering never hurts and usually saves pseudo-block re-reads
    assert on.pages_read <= off.pages_read

    # micro-benchmark the hot structural path: block bound + pid mapping
    grid = BlockGrid(
        ("n1", "n2"),
        (tuple(i / 50 for i in range(51)), tuple(i / 50 for i in range(51))),
    )
    pseudo = PseudoBlockMap(grid, sf=4)
    fn = LinearFunction(["n1", "n2"], [1.0, 0.3])
    positions = (0, 1)

    def hot_path():
        total = 0.0
        for bid in range(0, grid.num_blocks, 7):
            lower, upper = grid.sub_box(bid, positions)
            total += fn.min_over_box(lower, upper)
            total += pseudo.pid_of_bid(bid)
        return total

    benchmark(hot_path)


def test_covering_selection_benchmark(benchmark, bench_tuples):
    # covering-cuboid selection over a 12-dim fragment family
    dataset = generate(
        SyntheticSpec(num_selection_dims=12, num_tuples=2000, seed=83)
    )
    db = Database()
    table = dataset.load_into(db)
    from repro.core import FragmentedRankingCube

    cube = FragmentedRankingCube.build_fragments(table, fragment_size=2)

    def cover():
        return cube.covering_cuboids(("a1", "a4", "a9"))

    covering = benchmark(cover)
    assert len(covering) == 3


def test_pseudo_blocking_ablation(benchmark, bench_tuples, bench_queries):
    from repro.bench.experiments import ablation_pseudo_blocking

    result = ablation_pseudo_blocking(
        num_tuples=bench_tuples, queries_per_point=bench_queries
    )
    emit(result)
    on = result.points[0].metrics["ranking_cube"]
    off = result.points[1].metrics["ranking_cube"]
    # pseudo blocking never reads more pages than the sf=1 layout
    assert on.pages_read <= off.pages_read * 1.1

    # micro-benchmark: the pid mapping across a large grid
    from repro.core import BlockGrid, PseudoBlockMap

    grid = BlockGrid(
        ("n1", "n2"),
        (tuple(i / 100 for i in range(101)), tuple(i / 100 for i in range(101))),
    )
    pseudo = PseudoBlockMap(grid, sf=7)

    def map_all():
        return sum(pseudo.pid_of_bid(bid) for bid in range(0, grid.num_blocks, 13))

    benchmark(map_all)


def test_compression_ablation(benchmark, bench_tuples, bench_queries):
    from repro.bench.experiments import ablation_compression

    result = ablation_compression(
        num_tuples=bench_tuples, queries_per_point=bench_queries
    )
    emit(result, metric="space_bytes")
    off = result.points[0].metrics["ranking_cube"]
    on = result.points[1].metrics["ranking_cube"]
    # compression saves at least 20% of cuboid storage
    assert on.space_bytes < 0.8 * off.space_bytes
    # and costs no extra page I/O per query
    assert on.pages_read <= off.pages_read * 1.2

    # micro-benchmark encode+decode of a realistic cell
    from repro.core import decode_tid_list, encode_tid_list

    records = [(tid * 3, tid % 50) for tid in range(500)]

    def codec_roundtrip():
        return decode_tid_list(encode_tid_list(records))

    decoded = benchmark(codec_roundtrip)
    assert len(decoded) == 500
