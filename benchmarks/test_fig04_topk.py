"""Figure 4: query cost vs. k.

Paper shape: the ranking cube is far cheaper than both the Baseline and
Rank Mapping across k; the Baseline is insensitive to k (it always
evaluates every qualifying tuple); the ranking cube's cost grows with k
(progressively more blocks retrieved).
"""

import pytest

from conftest import emit
from repro.bench import METHOD_RANKING_CUBE, build_environment
from repro.bench.experiments import fig04_topk
from repro.workloads import QueryGenerator, QuerySpec, SyntheticSpec, generate


@pytest.fixture(scope="module")
def result(bench_tuples, bench_queries):
    return fig04_topk(num_tuples=bench_tuples, queries_per_point=bench_queries)


def test_fig04_shape_and_query_path(benchmark, result, bench_tuples):
    emit(result)
    baseline = result.series("baseline", "pages_read")
    cube = result.series("ranking_cube", "pages_read")
    # RC reads far fewer pages than BL at every k
    assert all(rc < bl for rc, bl in zip(cube, baseline))
    # BL is insensitive to k (same scan / same index fetches)
    assert max(baseline) <= 1.2 * min(baseline)
    # RC cost grows with k (more progressive block retrievals)
    assert cube[-1] > cube[0]
    # RC also wins on work done: far fewer tuples examined
    assert result.series("ranking_cube", "tuples_examined")[0] < (
        result.series("baseline", "tuples_examined")[0] / 5
    )

    # benchmark the characteristic path: one k=50 cube query, cold cache
    dataset = generate(SyntheticSpec(num_tuples=bench_tuples, seed=29))
    env = build_environment(dataset, (METHOD_RANKING_CUBE,))
    query = QueryGenerator(dataset.schema, QuerySpec(k=50, seed=1)).generate()
    executor = env.executors[METHOD_RANKING_CUBE]

    def run():
        env.db.cold_cache()
        return executor.execute(query)

    answer = benchmark(run)
    assert len(answer.rows) == 50
