"""Figure 5: query cost vs. query skewness u.

Paper shape: the ranking cube's cost rises slightly as queries get more
skewed (top results spread over more base blocks) but stays far below the
Baseline and Rank Mapping at every skew level.
"""

import pytest

from conftest import emit
from repro.bench import METHOD_RANKING_CUBE, build_environment
from repro.bench.experiments import fig05_skew
from repro.workloads import QueryGenerator, QuerySpec, SyntheticSpec, generate


@pytest.fixture(scope="module")
def result(bench_tuples, bench_queries):
    return fig05_skew(num_tuples=bench_tuples, queries_per_point=bench_queries)


def test_fig05_shape_and_skewed_query(benchmark, result, bench_tuples):
    emit(result)
    baseline = result.series("baseline", "pages_read")
    cube = result.series("ranking_cube", "pages_read")
    # RC beats BL at every skewness
    assert all(rc < bl for rc, bl in zip(cube, baseline))
    # skew costs the cube something: the most skewed point reads at least
    # as much as the balanced point (paper: "increases slightly with u")
    assert cube[-1] >= 0.8 * cube[0]

    dataset = generate(SyntheticSpec(num_tuples=bench_tuples, seed=31))
    env = build_environment(dataset, (METHOD_RANKING_CUBE,))
    query = QueryGenerator(
        dataset.schema, QuerySpec(skewness=0.1, seed=5)
    ).generate()
    executor = env.executors[METHOD_RANKING_CUBE]

    def run():
        env.db.cold_cache()
        return executor.execute(query)

    benchmark(run)
