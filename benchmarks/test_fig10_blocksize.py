"""Figure 10: ranking-cube cost vs. base block size B.

Paper shape: performance varies only modestly across B in 10..1000 —
the design is not sensitive to the block-size knob.  Our simulated device
weighs random vs. sequential reads, so the bounded-variation claim is
asserted on the weighted I/O cost.
"""

import pytest

from conftest import emit
from repro.bench import METHOD_RANKING_CUBE, build_environment
from repro.bench.experiments import fig10_block_size
from repro.workloads import QueryGenerator, QuerySpec, SyntheticSpec, generate


@pytest.fixture(scope="module")
def result(bench_tuples, bench_queries):
    return fig10_block_size(
        num_tuples=bench_tuples, queries_per_point=bench_queries
    )


def test_fig10_shape_and_build_cost(benchmark, result, bench_tuples):
    emit(result, metric="io_cost")
    costs = result.series("ranking_cube", "io_cost")
    # bounded sensitivity: no blow-up anywhere across two orders of
    # magnitude of B (the paper reports ~20%; our device model is harsher
    # on tiny blocks, so allow a wider but still bounded band)
    assert max(costs) < 6 * min(costs)
    # every configuration still answers queries
    for point in result.points:
        assert point.metrics["ranking_cube"].pages_read > 0

    # benchmark cube construction at the default B (the build-time cost
    # a deployment pays once)
    dataset = generate(SyntheticSpec(num_tuples=bench_tuples // 4, seed=53))

    def build():
        env = build_environment(dataset, (METHOD_RANKING_CUBE,), block_size=30)
        return env.cube

    cube = benchmark(build)
    assert cube is not None
