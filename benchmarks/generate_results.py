"""Regenerate the measured tables embedded in EXPERIMENTS.md.

Runs every experiment at its default (scaled) size and writes all three
cost views per figure to ``results/`` plus one concatenated
``results/all_results.txt``.  EXPERIMENTS.md quotes these tables.

Usage:  python benchmarks/generate_results.py [output_dir]
"""

from __future__ import annotations

import pathlib
import sys

from repro.bench.experiments import ALL_EXPERIMENTS


def main() -> int:
    out_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    out_dir.mkdir(exist_ok=True)
    combined = []
    for name, fn in ALL_EXPERIMENTS.items():
        result = fn()
        if name == "fig11":
            text = result.format_table("space_bytes")
        else:
            text = "\n\n".join(
                result.format_table(metric)
                for metric in ("pages_read", "io_cost", "wall_ms")
            )
        (out_dir / f"{name}.txt").write_text(text + "\n")
        combined.append(text)
        print(f"[done] {name}")
    (out_dir / "all_results.txt").write_text("\n\n\n".join(combined) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
