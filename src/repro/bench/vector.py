"""Vectorized-executor benchmark: ``python -m repro.bench vector``.

Replays one fixed-seed query stream (half linear, half Lp-distance
ranking functions) through three serial configurations:

* ``row_executor``    — the paper's per-tuple scalar evaluate step.
* ``vector_executor`` — the same queries through the columnar batched
  kernels of :mod:`repro.vector` (``use_vector=True``).
* ``vector_cached``   — the vector path with a shared
  :class:`~repro.serve.cache.ColumnarBlockCache`, so repeated blocks
  skip the fetch + decode entirely.

All three must return **byte-identical** answers (the vector engine's
equivalence contract); the payload records ``equivalent_answers`` and
the regression gate refuses a fresh run where it is false.  Logical
counters (``blocks_per_query``, ``tuples_per_query``) are deterministic
for the fixed seed and serve as the gate's serial-tolerance metrics.

A kernel microbenchmark then isolates the evaluate step itself: every
base block is pre-fetched, and the scalar scoring loop races the
batched ``eval_batch`` + ``topk_select`` pipeline over identical blocks.
``evaluate_speedup`` is the headline number; full (non ``--smoke``) runs
fail when it misses the 5x target.  Results land in
``BENCH_vector.json``.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass

from ..core.cube import RankingCube
from ..core.executor import ExecutorTrace, RankingCubeExecutor
from ..relational.database import Database
from ..serve.cache import ColumnarBlockCache
from ..vector.kernels import eval_scores, topk_select
from ..vector.layout import ColumnarBlock
from ..workloads.queries import QueryGenerator, QuerySpec
from ..workloads.synthetic import SyntheticSpec, generate

#: Full runs must beat the row evaluate step by at least this factor.
SPEEDUP_TARGET = 5.0


@dataclass(frozen=True)
class VectorBenchConfig:
    """Knobs of one vector-benchmark run (fixed seed => fixed stream).

    ``block_size`` is deliberately larger than the serving benchmarks
    use: batched kernels amortize per-block dispatch over the block's
    tuples, and the interesting regime is the one where blocks actually
    hold a batch.
    """

    num_tuples: int = 40_000
    num_queries: int = 120
    cardinality: int = 6
    num_selection_dims: int = 3
    num_ranking_dims: int = 2
    k: int = 10
    block_size: int = 200
    buffer_capacity: int = 8192
    kernel_repeats: int = 5
    seed: int = 23

    @classmethod
    def smoke(cls) -> "VectorBenchConfig":
        """Fast fixed-seed configuration for CI (a few seconds)."""
        return cls(
            num_tuples=4_000, num_queries=30, block_size=100, kernel_repeats=2
        )


def build_query_stream(config: VectorBenchConfig, schema) -> list:
    """Fixed-seed stream mixing the two exactly-vectorized families."""
    half = max(1, config.num_queries // 2)
    linear = QueryGenerator(
        schema,
        QuerySpec(k=config.k, num_selections=2, seed=config.seed),
    ).batch(half)
    lp = QueryGenerator(
        schema,
        QuerySpec(
            k=config.k,
            num_selections=2,
            function_family="lp",
            p=2.0,
            seed=config.seed + 1,
        ),
    ).batch(config.num_queries - half)
    return linear + lp


def _build_environment(config: VectorBenchConfig):
    """Fresh device + table + cube (per scenario, for apples-to-apples)."""
    dataset = generate(
        SyntheticSpec(
            num_selection_dims=config.num_selection_dims,
            num_ranking_dims=config.num_ranking_dims,
            num_tuples=config.num_tuples,
            cardinality=config.cardinality,
            seed=config.seed,
        )
    )
    db = Database(buffer_capacity=config.buffer_capacity)
    table = dataset.load_into(db)
    cube = RankingCube.build(table, block_size=config.block_size)
    return db, table, cube


@dataclass
class ScenarioReport:
    """One configuration's aggregate numbers over the replayed stream."""

    queries: int
    wall_s: float
    throughput_qps: float
    blocks_per_query: float
    tuples_per_query: float
    candidates_per_query: float
    vector_blocks_per_query: float
    columnar_hit_rate: float


def _answers_signature(results) -> list:
    """Exact (bitwise) answer identity: raw score floats, tids, counters."""
    return [
        (
            [(row.tid, row.score) for row in r.rows],
            r.blocks_accessed,
            r.tuples_examined,
            r.candidates_examined,
        )
        for r in results
    ]


def run_scenario(
    config: VectorBenchConfig, stream, use_vector: bool, cached: bool
):
    """Serial cold-cache replay through one executor configuration."""
    db, table, cube = _build_environment(config)
    columnar_cache = ColumnarBlockCache() if cached else None
    executor = RankingCubeExecutor(
        cube, table, use_vector=use_vector, columnar_cache=columnar_cache
    )
    results = []
    total_blocks = total_tuples = total_candidates = vector_blocks = 0
    started = time.perf_counter()
    for query in stream:
        db.cold_cache()
        trace = ExecutorTrace()
        result = executor.execute(query, trace=trace)
        total_blocks += result.blocks_accessed
        total_tuples += result.tuples_examined
        total_candidates += result.candidates_examined
        vector_blocks += trace.vector_blocks
        results.append(result)
    wall = time.perf_counter() - started
    count = max(1, len(stream))
    report = ScenarioReport(
        queries=len(stream),
        wall_s=wall,
        throughput_qps=len(stream) / wall if wall > 0 else 0.0,
        blocks_per_query=total_blocks / count,
        tuples_per_query=total_tuples / count,
        candidates_per_query=total_candidates / count,
        vector_blocks_per_query=vector_blocks / count,
        columnar_hit_rate=(
            columnar_cache.stats.hit_rate if columnar_cache is not None else 0.0
        ),
    )
    return report, _answers_signature(results)


def run_kernel_bench(config: VectorBenchConfig) -> dict:
    """Evaluate-step microbenchmark over pre-fetched blocks.

    Both engines score every tuple of every non-empty base block with
    the same ranking function (no selection, the evaluate step's pure
    arithmetic); I/O and decode are paid up front so the race isolates
    scoring + top-k selection.
    """
    _db, table, cube = _build_environment(config)
    state = cube.snapshot()
    fn = QueryGenerator(
        table.schema, QuerySpec(k=config.k, num_selections=0, seed=config.seed)
    ).generate().ranking
    positions = state.grid.project(fn.dims)
    num_dims = state.grid.num_dims

    row_blocks = []
    col_blocks = []
    for bid in range(state.grid.num_blocks):
        records = state.base_table.get_base_block(bid)
        if records:
            row_blocks.append(records)
            col_blocks.append(ColumnarBlock.from_records(records, num_dims))

    k = config.k
    repeats = max(1, config.kernel_repeats)

    row_started = time.perf_counter()
    for _ in range(repeats):
        for records in row_blocks:
            scored = []
            for tid, values in records:
                point = [values[p] for p in positions]
                scored.append((fn.score(point), tid))
            scored.sort()
            del scored[k:]
    row_s = time.perf_counter() - row_started

    vec_started = time.perf_counter()
    for _ in range(repeats):
        for block in col_blocks:
            scores = eval_scores(fn, block, positions)
            topk_select(scores, block.tids, k)
    vec_s = time.perf_counter() - vec_started

    blocks_timed = len(row_blocks) * repeats
    tuples_timed = sum(len(r) for r in row_blocks) * repeats
    return {
        "blocks": len(row_blocks),
        "tuples": sum(len(r) for r in row_blocks),
        "repeats": repeats,
        "row_wall_s": row_s,
        "vector_wall_s": vec_s,
        "row_blocks_per_s": blocks_timed / row_s if row_s > 0 else 0.0,
        "vector_blocks_per_s": blocks_timed / vec_s if vec_s > 0 else 0.0,
        "row_tuples_per_s": tuples_timed / row_s if row_s > 0 else 0.0,
        "vector_tuples_per_s": tuples_timed / vec_s if vec_s > 0 else 0.0,
    }


def run_vector_bench(config: VectorBenchConfig) -> dict:
    """Run every scenario over one shared stream; return the JSON payload."""
    _db, table, cube = _build_environment(config)
    stream = build_query_stream(config, table.schema)

    scenarios = {}
    signatures = {}
    scenarios["row_executor"], signatures["row_executor"] = run_scenario(
        config, stream, use_vector=False, cached=False
    )
    scenarios["vector_executor"], signatures["vector_executor"] = run_scenario(
        config, stream, use_vector=True, cached=False
    )
    scenarios["vector_cached"], signatures["vector_cached"] = run_scenario(
        config, stream, use_vector=True, cached=True
    )

    reference = signatures["row_executor"]
    equivalent = all(sig == reference for sig in signatures.values())

    kernel = run_kernel_bench(config)
    speedup = (
        kernel["row_wall_s"] / kernel["vector_wall_s"]
        if kernel["vector_wall_s"] > 0
        else float("inf")
    )

    return {
        "benchmark": "vector",
        "config": asdict(config),
        "grid_blocks": cube.grid.num_blocks,
        "scenarios": {name: asdict(report) for name, report in scenarios.items()},
        "kernel": kernel,
        "evaluate_speedup": speedup,
        "meets_speedup_target": speedup >= SPEEDUP_TARGET,
        "equivalent_answers": equivalent,
    }


def format_vector_table(payload: dict) -> str:
    """Fixed-width human-readable view of the JSON payload."""
    headers = ("scenario", "qps", "blk/q", "tup/q", "vec-blk/q", "col-hit%")
    lines = [
        "vector: columnar batched execution vs the row executor",
        "".join(h.rjust(14) for h in headers),
        "-" * (14 * len(headers)),
    ]
    for name, s in payload["scenarios"].items():
        lines.append(
            name.rjust(14)
            + f"{s['throughput_qps']:14.1f}"
            + f"{s['blocks_per_query']:14.2f}"
            + f"{s['tuples_per_query']:14.1f}"
            + f"{s['vector_blocks_per_query']:14.2f}"
            + f"{100.0 * s['columnar_hit_rate']:14.1f}"
        )
    kernel = payload["kernel"]
    lines.append(
        f"kernel evaluate: row {kernel['row_tuples_per_s']:.0f} tup/s vs "
        f"vector {kernel['vector_tuples_per_s']:.0f} tup/s over "
        f"{kernel['blocks']} blocks x{kernel['repeats']}"
    )
    lines.append(
        f"evaluate speedup: {payload['evaluate_speedup']:.2f}x "
        f"({'meets' if payload['meets_speedup_target'] else 'MISSES'} "
        f"{SPEEDUP_TARGET:g}x target); "
        f"answers byte-identical: {payload['equivalent_answers']}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench vector",
        description="Race the columnar batched engine against the row executor.",
    )
    parser.add_argument("--smoke", action="store_true", help="fast fixed-seed CI mode")
    parser.add_argument("--tuples", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--out", default="BENCH_vector.json", help="JSON output path")
    args = parser.parse_args(argv)

    config = VectorBenchConfig.smoke() if args.smoke else VectorBenchConfig()
    overrides = {}
    if args.tuples is not None:
        overrides["num_tuples"] = args.tuples
    if args.queries is not None:
        overrides["num_queries"] = args.queries
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        config = VectorBenchConfig(**{**asdict(config), **overrides})

    payload = run_vector_bench(config)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(format_vector_table(payload))
    print(f"wrote {args.out}")
    if not payload["equivalent_answers"]:
        return 1
    # the throughput target is enforced on full runs only: smoke sizes are
    # too small for stable timing on shared CI machines
    if not args.smoke and not payload["meets_speedup_target"]:
        return 1
    return 0
