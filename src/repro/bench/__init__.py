"""Benchmark harness and per-figure experiment definitions."""

from .experiments import ALL_EXPERIMENTS
from .faultmatrix import (
    DEFAULT_MATRIX_SEEDS,
    FaultMatrixResult,
    HarnessError,
    ScheduleOutcome,
    run_fault_matrix,
    run_schedule,
)
from .harness import (
    METHOD_BASELINE,
    METHOD_RANKING_CUBE,
    METHOD_RANKING_FRAGMENTS,
    METHOD_RANK_MAPPING,
    Environment,
    ExperimentResult,
    MethodMetrics,
    SeriesPoint,
    build_environment,
    sweep,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "DEFAULT_MATRIX_SEEDS",
    "Environment",
    "FaultMatrixResult",
    "HarnessError",
    "ScheduleOutcome",
    "run_fault_matrix",
    "run_schedule",
    "ExperimentResult",
    "METHOD_BASELINE",
    "METHOD_RANKING_CUBE",
    "METHOD_RANKING_FRAGMENTS",
    "METHOD_RANK_MAPPING",
    "MethodMetrics",
    "SeriesPoint",
    "build_environment",
    "sweep",
]
