"""Parallel cube-construction benchmark: ``python -m repro.bench build``.

Builds the same ranking cube serially and with a process-pool grouping
phase (2 and 4 workers by default), each time on a fresh device over the
same generated dataset, and reports three things per scenario:

* **wall-clock** of :meth:`RankingCube.build`,
* **device I/O profile** of the whole load+build (reads/writes and the
  sequential fraction of each — the bulk heap loader should keep the
  build's write stream sequential),
* a **device fingerprint** (SHA-256 over every page image) proving the
  canonical-layout guarantee: the parallel build's bytes equal the
  serial build's, bit for bit.

A query battery then runs against each built cube and the benchmark
asserts identical answers.  Results land in ``BENCH_build.json``;
``python -m repro.bench check`` treats ``parallel_identical`` (and, for
the full-size config, ``parallel_faster``) as exact-match regression
gates while wall-clock metrics are recorded but never compared.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass

from ..core.cube import RankingCube
from ..core.executor import RankingCubeExecutor
from ..relational.database import Database
from ..workloads.queries import QueryGenerator, QuerySpec
from ..workloads.synthetic import SyntheticSpec, generate


@dataclass(frozen=True)
class BuildBenchConfig:
    """Knobs of one build-benchmark run (fixed seed => fixed dataset).

    ``workers`` is a comma-separated string (not a tuple) so the config
    survives a JSON round-trip unchanged — the regression gate compares
    configs exactly, and JSON has no tuples.  ``enforce_speedup`` gates
    the ``parallel_faster`` assertion: the smoke config disables it
    because process-pool startup dominates at toy sizes.  Even when
    enabled, the assertion only binds on machines with at least two
    usable cores — on a single-core box process parallelism cannot beat
    serial wall-clock, so the run records the measured speedup but does
    not fail on it (the byte-identity gate still binds everywhere).
    """

    num_tuples: int = 60_000
    workers: str = "2,4"
    num_selection_dims: int = 3
    num_ranking_dims: int = 2
    cardinality: int = 8
    block_size: int = 30
    buffer_capacity: int = 8192
    num_queries: int = 30
    k: int = 10
    seed: int = 23
    enforce_speedup: bool = True

    @classmethod
    def smoke(cls) -> "BuildBenchConfig":
        """Fast fixed-seed configuration for CI (a few seconds)."""
        return cls(num_tuples=2_500, workers="2", enforce_speedup=False)

    def worker_counts(self) -> list[int]:
        return [int(part) for part in self.workers.split(",") if part]


@dataclass
class BuildScenarioReport:
    """One build configuration's numbers."""

    workers: int
    build_wall_s: float
    tuples_per_s: float
    device_reads: int
    device_writes: int
    sequential_read_fraction: float
    sequential_write_fraction: float
    fingerprint: str
    cuboids: int


def _usable_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _dataset(config: BuildBenchConfig):
    return generate(
        SyntheticSpec(
            num_selection_dims=config.num_selection_dims,
            num_ranking_dims=config.num_ranking_dims,
            num_tuples=config.num_tuples,
            cardinality=config.cardinality,
            seed=config.seed,
        )
    )


def run_build_scenario(
    config: BuildBenchConfig, dataset, workers: int
) -> tuple[BuildScenarioReport, "RankingCube", Database, object]:
    """Load + build on a fresh device; meter the whole construction."""
    db = Database(buffer_capacity=config.buffer_capacity)
    db.device.reset_stats()
    table = dataset.load_into(db)
    started = time.perf_counter()
    cube = RankingCube.build(table, block_size=config.block_size, workers=workers)
    wall = time.perf_counter() - started
    db.pool.flush()
    stats = db.device.stats.snapshot()
    reads = max(1, stats.reads)
    writes = max(1, stats.writes)
    report = BuildScenarioReport(
        workers=workers,
        build_wall_s=wall,
        tuples_per_s=config.num_tuples / wall if wall > 0 else 0.0,
        device_reads=stats.reads,
        device_writes=stats.writes,
        sequential_read_fraction=stats.sequential_reads / reads,
        sequential_write_fraction=stats.sequential_writes / writes,
        fingerprint=db.device.fingerprint(),
        cuboids=len(cube.cuboids),
    )
    return report, cube, db, table


def _answers_signature(executor, queries) -> list[list[tuple[int, float]]]:
    return [
        [(row.tid, round(row.score, 9)) for row in executor.execute(q).rows]
        for q in queries
    ]


def run_build_bench(config: BuildBenchConfig) -> dict:
    """Build serially and at each worker count; return the JSON payload."""
    dataset = _dataset(config)
    queries = QueryGenerator(
        dataset.schema,
        QuerySpec(k=config.k, num_selections=2, seed=config.seed),
    ).batch(config.num_queries)

    scenarios: dict[str, BuildScenarioReport] = {}
    signatures: dict[str, list] = {}

    serial_report, serial_cube, serial_db, serial_table = run_build_scenario(
        config, dataset, workers=1
    )
    scenarios["build_serial"] = serial_report
    signatures["build_serial"] = _answers_signature(
        RankingCubeExecutor(serial_cube, serial_table), queries
    )
    grid_blocks = serial_cube.grid.num_blocks

    for workers in config.worker_counts():
        report, cube, db, table = run_build_scenario(config, dataset, workers)
        name = f"build_w{workers}"
        scenarios[name] = report
        signatures[name] = _answers_signature(
            RankingCubeExecutor(cube, table), queries
        )

    reference_fp = serial_report.fingerprint
    parallel_identical = all(
        report.fingerprint == reference_fp for report in scenarios.values()
    )
    reference_sig = signatures["build_serial"]
    equivalent = all(sig == reference_sig for sig in signatures.values())

    parallel_names = [n for n in scenarios if n != "build_serial"]
    fastest_parallel = (
        min(scenarios[n].build_wall_s for n in parallel_names)
        if parallel_names
        else serial_report.build_wall_s
    )
    speedup = (
        serial_report.build_wall_s / fastest_parallel
        if fastest_parallel > 0
        else float("inf")
    )
    seq_reads_ok = all(
        scenarios[n].sequential_read_fraction
        >= serial_report.sequential_read_fraction - 1e-9
        for n in parallel_names
    )
    cores = _usable_cores()
    enforced = config.enforce_speedup and cores >= 2
    parallel_faster = (speedup > 1.0 and seq_reads_ok) if enforced else True

    return {
        "benchmark": "build",
        "config": asdict(config),
        "grid_blocks": grid_blocks,
        "scenarios": {name: asdict(report) for name, report in scenarios.items()},
        "cpu_cores": cores,
        "speedup_enforced": enforced,
        "build_speedup_vs_serial": speedup,
        "parallel_identical": parallel_identical,
        "parallel_faster": parallel_faster,
        "equivalent_answers": equivalent,
    }


def format_build_table(payload: dict) -> str:
    """Fixed-width human-readable view of the JSON payload."""
    headers = ("scenario", "wall_s", "ktup/s", "reads", "writes", "seqW%")
    lines = [
        "build: parallel cube construction vs serial",
        "".join(h.rjust(14) for h in headers),
        "-" * (14 * len(headers)),
    ]
    for name, s in payload["scenarios"].items():
        lines.append(
            name.rjust(14)
            + f"{s['build_wall_s']:14.3f}"
            + f"{s['tuples_per_s'] / 1000.0:14.1f}"
            + f"{s['device_reads']:14d}"
            + f"{s['device_writes']:14d}"
            + f"{100.0 * s['sequential_write_fraction']:14.1f}"
        )
    enforced = "enforced" if payload.get("speedup_enforced") else (
        f"not enforced, {payload.get('cpu_cores', '?')} core(s)"
    )
    lines.append(
        f"speedup vs serial: {payload['build_speedup_vs_serial']:.2f}x "
        f"({enforced}); "
        f"byte-identical: {payload['parallel_identical']}; "
        f"answers equivalent: {payload['equivalent_answers']}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench build",
        description="Measure parallel cube construction against the serial path.",
    )
    parser.add_argument("--smoke", action="store_true", help="fast fixed-seed CI mode")
    parser.add_argument("--tuples", type=int, default=None)
    parser.add_argument(
        "--workers", default=None, help='comma-separated counts, e.g. "2,4"'
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--out", default="BENCH_build.json", help="JSON output path")
    args = parser.parse_args(argv)

    config = BuildBenchConfig.smoke() if args.smoke else BuildBenchConfig()
    overrides = {}
    if args.tuples is not None:
        overrides["num_tuples"] = args.tuples
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        config = BuildBenchConfig(**{**asdict(config), **overrides})

    payload = run_build_bench(config)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(format_build_table(payload))
    print(f"wrote {args.out}")
    if not payload["equivalent_answers"] or not payload["parallel_identical"]:
        return 1
    if not payload["parallel_faster"]:
        return 1
    return 0
