"""Adaptive-routing benchmark: ``python -m repro.bench adaptive``.

Replays one fixed-seed *drifting* workload (three phases; see
:mod:`repro.workloads.drifting`) through four configurations built over
identical data:

* **adaptive** — the :class:`~repro.route.AdaptiveRouter` over the full
  path family, with the :class:`~repro.route.CubeAdvisor` re-planning
  the materialized cuboid set from observed popularity and the
  :class:`~repro.route.DriftDetector` re-partitioning the grid online
  after the drifted appends;
* **static_cube / static_vector / static_baseline** — the same stream
  pinned to one path, no advisor, no re-partitioning (what a one-shot
  configuration choice costs under a shifting workload).

The phases are designed so no single static path wins everywhere: phase
A's unselective ``{a1}`` / ``{a1,a2}`` queries favour the cube, phase
B's ultra-selective high-cardinality ``{a3}`` lookups favour the
baseline relation, and phase C replays phase A's mix after a skewed
append batch unbalances the equi-depth grid.  Costs are *logical
weighted pages* (sequential pages at ``SEQ_READ_WEIGHT``, random at
``RANDOM_READ_WEIGHT`` — the estimator's currency), so the replay is
deterministic and cache-state-independent.

Hard gates (``python -m repro.bench check`` re-verifies them):

* ``adaptive_beats_best_static`` — the adaptive configuration's total
  observed cost is strictly below the *best* static configuration's;
* ``equivalent_answers`` — every configuration's every answer equals the
  brute-force oracle over the rows live at that point, bitwise;
* ``repartition_triggered`` — the drifted append tripped the detector
  and the online re-partition swapped a rebalanced grid in.

Results land in ``BENCH_adaptive.json`` (``BENCH_adaptive_smoke.json``
for the CI-sized run).
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import asdict, dataclass, field

from ..core.cube import RankingCube
from ..core.executor import RankingCubeExecutor
from ..baselines.scan import BaselineExecutor
from ..obs.metrics import MetricsRegistry
from ..relational.database import Database
from ..relational.schema import Schema, ranking_attr, selection_attr
from ..route import AdaptiveRouter, CubeAdvisor, DriftDetector, repartition_cube
from ..storage.device import RANDOM_READ_WEIGHT, SEQ_READ_WEIGHT
from ..workloads.drifting import DriftingQueryStream, WorkloadPhase, shifted_rows
from ..workloads.oracle import brute_force_topk

#: Scenario names the bench runs; "adaptive" first, statics alphabetical.
SCENARIOS = ("adaptive", "static_cube", "static_vector", "static_baseline")


@dataclass(frozen=True)
class AdaptiveBenchConfig:
    """Knobs of one adaptive-routing run (fixed seed => fixed replay)."""

    num_tuples: int = 12_000
    append_tuples: int = 3_000
    phase_a_queries: int = 60
    phase_b_queries: int = 40
    phase_c_queries: int = 60
    low_cardinality: int = 8      #: domains of a1 / a2 (cube-friendly)
    high_cardinality: int = 1_000  #: domain of a3 (index-friendly)
    k: int = 10
    selective_k: int = 5
    block_size: int = 100
    buffer_capacity: int = 8_192
    advise_interval: int = 20     #: queries between advisor re-plans
    drift_threshold: float = 2.0
    seed: int = 41

    @classmethod
    def smoke(cls) -> "AdaptiveBenchConfig":
        """Fast fixed-seed configuration for CI (a few seconds).

        Smaller relation, but the same cost *contrasts*: the low
        cardinality drops to 4 so phase A stays clearly cube-friendly
        against the now-cheap sequential scan, and the append batch is
        proportionally larger so the drifted top bin clears the 2.0
        depth-ratio threshold (at 1/4 the data a same-ratio append
        would sit exactly on it).
        """
        return cls(
            num_tuples=5_000,
            append_tuples=1_500,
            phase_a_queries=24,
            phase_b_queries=16,
            phase_c_queries=24,
            low_cardinality=4,
            high_cardinality=500,
            block_size=150,
            advise_interval=12,
        )


def _make_schema(config: AdaptiveBenchConfig) -> Schema:
    return Schema.of(
        [
            selection_attr("a1", config.low_cardinality),
            selection_attr("a2", config.low_cardinality),
            selection_attr("a3", config.high_cardinality),
            ranking_attr("n1"),
            ranking_attr("n2"),
        ]
    )


def _make_rows(config: AdaptiveBenchConfig, schema: Schema) -> list[tuple]:
    rng = random.Random(config.seed)
    cards = [a.cardinality for a in schema.selection_attributes]
    return [
        tuple(rng.randrange(c) for c in cards) + (rng.random(), rng.random())
        for _ in range(config.num_tuples)
    ]


def _build_environment(config: AdaptiveBenchConfig, schema, rows):
    """Fresh identical stack: relation + indexes + singleton-cuboid cube."""
    db = Database(buffer_capacity=config.buffer_capacity)
    table = db.load_table("R", schema, rows)
    for name in schema.selection_names:
        table.create_secondary_index(name)
    cube = RankingCube.build(
        table,
        block_size=config.block_size,
        cuboid_sets=[(d,) for d in schema.selection_names],
    )
    return db, table, cube


def _rebuild_indexes(table) -> None:
    """Secondary indexes are build-once; appends require a rebuild.

    Every scenario rebuilds at the same stream position, so the (one-off,
    unmetered-by-the-gate) maintenance cost is identical across them.
    """
    for name in list(table.secondary_indexes):
        table.secondary_indexes.pop(name)
        table.create_secondary_index(name)


def build_stream(config: AdaptiveBenchConfig, schema) -> list:
    """The fixed drifting stream every scenario replays verbatim."""
    phases = [
        WorkloadPhase(
            selection_sets=(("a1",), ("a1", "a2")),
            queries=config.phase_a_queries,
            k=config.k,
        ),
        WorkloadPhase(
            selection_sets=(("a3",),),
            queries=config.phase_b_queries,
            k=config.selective_k,
        ),
        WorkloadPhase(
            selection_sets=(("a1",), ("a1", "a2")),
            queries=config.phase_c_queries,
            k=config.k,
        ),
    ]
    return list(
        DriftingQueryStream(schema, phases, seed=config.seed + 101)
    )


@dataclass
class ScenarioReport:
    """One configuration's aggregate numbers over the drifting stream."""

    queries: int = 0
    wall_s: float = 0.0
    total_observed_io: float = 0.0   #: weighted logical pages (the gate metric)
    total_pages: int = 0             #: unweighted logical pages
    oracle_matches: bool = True
    path_counts: dict = field(default_factory=dict)
    probes: int = 0
    promoted_cuboids: list = field(default_factory=list)
    demoted_cuboids: list = field(default_factory=list)
    repartitions: int = 0
    drift_ratio_at_check: float = 0.0
    final_epoch: int = 0


def _run_scenario(config: AdaptiveBenchConfig, name: str, stream) -> ScenarioReport:
    schema = _make_schema(config)
    rows = _make_rows(config, schema)
    _db, table, cube = _build_environment(config, schema, rows)
    live_rows = list(rows)
    append_at = config.phase_a_queries + config.phase_b_queries
    extra = shifted_rows(
        schema, config.append_tuples, seed=config.seed + 13
    )

    report = ScenarioReport()
    registry = MetricsRegistry()
    router = advisor = detector = None
    executor = None
    if name == "adaptive":
        router = AdaptiveRouter.for_cube(cube, table, registry=registry)
        advisor = CubeAdvisor(
            cube,
            table,
            table.pool,
            min_observations=min(16, config.advise_interval),
            registry=registry,
        )
        detector = DriftDetector(cube, threshold=config.drift_threshold)
    elif name == "static_cube":
        executor = RankingCubeExecutor(cube, table)
    elif name == "static_vector":
        executor = RankingCubeExecutor(cube, table, use_vector=True)
    elif name != "static_baseline":
        raise ValueError(f"unknown scenario {name!r}")

    started = time.perf_counter()
    for index, query in enumerate(stream):
        if index == append_at:
            # the drifted append lands identically in every scenario ...
            table.insert_rows(extra)
            live_rows.extend(extra)
            _rebuild_indexes(table)
            cube.refresh_delta(table)
            if detector is not None:
                # ... but only the adaptive one is allowed to react
                probe = detector.check()
                report.drift_ratio_at_check = probe.max_depth_ratio
                if probe.drifted:
                    rebuilt = repartition_cube(
                        cube, table, table.pool, registry=registry
                    )
                    if rebuilt.swapped:
                        report.repartitions += 1
        if router is not None:
            decision = router.execute(query)
            result = decision.result
            observed_io = decision.observed_io
            path = decision.path
            if decision.probe:
                report.probes += 1
            advisor.observe(query)
            if (index + 1) % config.advise_interval == 0:
                plan = advisor.advise_once()
                report.promoted_cuboids.extend(plan.promoted)
                report.demoted_cuboids.extend(plan.demoted)
        elif executor is not None:
            result = executor.execute(query)
            observed_io = RANDOM_READ_WEIGHT * result.blocks_accessed
            path = name.removeprefix("static_")
        else:
            baseline = BaselineExecutor(table)
            result = baseline.execute(query)
            weight = (
                SEQ_READ_WEIGHT
                if baseline.last_plan == "scan"
                else RANDOM_READ_WEIGHT
            )
            observed_io = weight * result.blocks_accessed
            path = "baseline"
        report.queries += 1
        report.total_observed_io += observed_io
        report.total_pages += result.blocks_accessed
        report.path_counts[path] = report.path_counts.get(path, 0) + 1
        answer = [(r.score, r.tid) for r in result.rows]
        if answer != brute_force_topk(schema, live_rows, query):
            report.oracle_matches = False
    report.wall_s = time.perf_counter() - started
    report.final_epoch = cube.epoch
    return report


def _scenario_payload(report: ScenarioReport) -> dict:
    """JSON form with stable *string* encodings for the structured fields.

    ``bench check`` compares scenario metrics as numbers or exact
    strings; the deterministic replay makes these strings exact too.
    """
    payload = asdict(report)
    payload["path_counts"] = ",".join(
        f"{path}={count}"
        for path, count in sorted(report.path_counts.items())
    )
    payload["promoted_cuboids"] = ",".join(report.promoted_cuboids)
    payload["demoted_cuboids"] = ",".join(report.demoted_cuboids)
    return payload


def run_adaptive_bench(config: AdaptiveBenchConfig) -> dict:
    """Run all four configurations over one stream; return the payload."""
    schema = _make_schema(config)
    stream = build_stream(config, schema)
    scenarios = {
        name: _run_scenario(config, name, stream) for name in SCENARIOS
    }

    adaptive = scenarios["adaptive"]
    statics = {
        name: report
        for name, report in scenarios.items()
        if name != "adaptive"
    }
    best_static_name = min(
        statics, key=lambda name: (statics[name].total_observed_io, name)
    )
    best_static_io = statics[best_static_name].total_observed_io

    return {
        "benchmark": "adaptive",
        "config": asdict(config),
        "queries": len(stream),
        "scenarios": {
            name: _scenario_payload(r) for name, r in scenarios.items()
        },
        "best_static": best_static_name,
        "best_static_observed_io": best_static_io,
        "adaptive_observed_io": adaptive.total_observed_io,
        "adaptive_beats_best_static": adaptive.total_observed_io < best_static_io,
        "repartition_triggered": adaptive.repartitions > 0,
        "equivalent_answers": all(
            r.oracle_matches for r in scenarios.values()
        ),
    }


def format_adaptive_table(payload: dict) -> str:
    """Fixed-width human-readable view of the JSON payload."""
    headers = ("scenario", "weighted io", "pages", "probes", "repart")
    lines = [
        "adaptive: cost-routed planning vs static configurations "
        "on a drifting stream",
        "".join(h.rjust(14) for h in headers),
        "-" * (14 * len(headers)),
    ]
    for name, s in payload["scenarios"].items():
        lines.append(
            name.rjust(14)
            + f"{s['total_observed_io']:14.0f}"
            + f"{s['total_pages']:14d}"
            + f"{s['probes']:14d}"
            + f"{s['repartitions']:14d}"
        )
    adaptive = payload["scenarios"]["adaptive"]
    lines.append(
        f"adaptive routes: {adaptive['path_counts']}; "
        f"promoted {adaptive['promoted_cuboids']}"
    )
    lines.append(
        f"best static: {payload['best_static']} "
        f"({payload['best_static_observed_io']:.0f} weighted pages) -> "
        f"adaptive {'beats' if payload['adaptive_beats_best_static'] else 'LOSES TO'} it "
        f"({payload['adaptive_observed_io']:.0f}); "
        f"repartition triggered: {payload['repartition_triggered']}; "
        f"answers identical to oracle: {payload['equivalent_answers']}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench adaptive",
        description=(
            "Gate the adaptive router / advisor / drift-repartition stack "
            "against the best static configuration."
        ),
    )
    parser.add_argument("--smoke", action="store_true", help="fast fixed-seed CI mode")
    parser.add_argument("--tuples", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--out",
        default=None,
        help="JSON output path (default: BENCH_adaptive.json, _smoke with --smoke)",
    )
    args = parser.parse_args(argv)

    config = AdaptiveBenchConfig.smoke() if args.smoke else AdaptiveBenchConfig()
    overrides = {}
    if args.tuples is not None:
        overrides["num_tuples"] = args.tuples
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        config = AdaptiveBenchConfig(**{**asdict(config), **overrides})

    out = args.out or (
        "BENCH_adaptive_smoke.json" if args.smoke else "BENCH_adaptive.json"
    )
    payload = run_adaptive_bench(config)
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(format_adaptive_table(payload))
    print(f"wrote {out}")
    gates = (
        "adaptive_beats_best_static",
        "repartition_triggered",
        "equivalent_answers",
    )
    return 0 if all(payload[g] for g in gates) else 1
