"""Bench regression gate: ``python -m repro.bench check --baseline results/``.

Discovers checked-in ``BENCH_*.json`` baselines, re-runs each benchmark
from the configuration *embedded in the baseline file* (so the gate
always compares like with like, even after default configs drift), and
diffs the fresh payload against the stored one metric by metric.

Tolerances are declared per metric class, not guessed per run:

* **timing** (``wall_s``, ``*_qps``, ``*_ms``) — never compared; CI
  machines make wall-clock regressions meaningless at this scale.
* **serial scenarios** — fixed seed + serial execution is deterministic,
  so counters must match within ``SERIAL_REL_TOL`` (float dust only).
* **concurrent scenarios** — worker interleaving moves cache-stampede
  counters (a pseudo-block being decoded twice is legal), so those
  compare under ``CONCURRENT_REL_TOL`` / ``RATE_ABS_TOL``.
* **structure** (``grid_blocks``, ``config``) — exact; a drift here
  means the benchmark itself changed and the baseline must be re-blessed.
* **correctness** (``equivalent_answers``) — must be ``True`` fresh,
  full stop.

Exit status is nonzero iff any violation is found, and every violation
names its metric path, both values, and the tolerance that failed — so a
red gate is actionable from the log alone.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass
from pathlib import Path

#: Serial scenarios are bit-deterministic; allow only float dust.
SERIAL_REL_TOL = 0.01
#: Concurrent scenarios: thread interleaving legitimately moves
#: stampede-sensitive counters (duplicate decodes, memo races).
CONCURRENT_REL_TOL = 0.5
#: Hit rates in concurrent scenarios, compared absolutely.
RATE_ABS_TOL = 0.25
#: Reduction ratios divide two noisy numbers; compare loosely.
RATIO_REL_TOL = 0.5

#: Metric name fragments that are wall-clock-derived and never compared.
TIMING_METRICS = (
    "wall_s",
    "throughput_qps",
    "p50_ms",
    "p95_ms",
    "tuples_per_s",
    "blocks_per_s",
    "evaluate_speedup",
)

#: Scenario names whose counters are deterministic (serial replay).
SERIAL_SCENARIOS = ("serial_cold", "serial_warm")

#: Per-query counters that stampedes can move in concurrent scenarios.
RATE_METRICS = ("pseudo_cache_hit_rate", "bound_memo_hit_rate")


class UnknownBenchmarkError(ValueError):
    """Baseline names a benchmark this gate has no runner for."""


def _run_serve(config: dict) -> dict:
    from .serve import ServeBenchConfig, run_serve_bench

    return run_serve_bench(ServeBenchConfig(**config))


def _run_build(config: dict) -> dict:
    from .build import BuildBenchConfig, run_build_bench

    return run_build_bench(BuildBenchConfig(**config))


def _run_shard(config: dict) -> dict:
    from .shard import ShardBenchConfig, run_shard_bench

    return run_shard_bench(ShardBenchConfig(**config))


def _run_vector(config: dict) -> dict:
    from .vector import VectorBenchConfig, run_vector_bench

    return run_vector_bench(VectorBenchConfig(**config))


def _run_anyk(config: dict) -> dict:
    from .anyk import AnyKBenchConfig, run_anyk_bench

    return run_anyk_bench(AnyKBenchConfig(**config))


def _run_ingest(config: dict) -> dict:
    from .ingest import IngestBenchConfig, run_ingest_bench

    return run_ingest_bench(IngestBenchConfig(**config))


def _run_adaptive(config: dict) -> dict:
    from .adaptive import AdaptiveBenchConfig, run_adaptive_bench

    return run_adaptive_bench(AdaptiveBenchConfig(**config))


#: benchmark name (payload["benchmark"]) -> fresh-run callable(config dict).
RUNNERS = {
    "serve": _run_serve,
    "build": _run_build,
    "shard": _run_shard,
    "vector": _run_vector,
    "anyk": _run_anyk,
    "ingest": _run_ingest,
    "adaptive": _run_adaptive,
}


@dataclass(frozen=True)
class Violation:
    """One metric outside tolerance; ``str()`` is the log line."""

    baseline_file: str
    metric: str
    expected: object
    actual: object
    tolerance: str

    def __str__(self) -> str:
        return (
            f"{self.baseline_file}: {self.metric}: "
            f"baseline={self.expected!r} fresh={self.actual!r} "
            f"({self.tolerance})"
        )


def _within(expected: float, actual: float, rel_tol: float) -> bool:
    if expected == actual:
        return True
    scale = max(abs(expected), abs(actual))
    if math.isinf(scale):
        return math.isinf(expected) and math.isinf(actual)
    return abs(expected - actual) <= rel_tol * scale


def _compare_scenario(
    name: str, expected: dict, actual: dict, source: str
) -> list[Violation]:
    # Build scenarios replay a fixed seed through a deterministic
    # construction (even the parallel ones — the layout is canonical), so
    # they get serial tolerances.  Fingerprints are strings; compare exact.
    # Shard scenarios replay serially with cold caches, so their counters
    # are deterministic too — in both modes: process-mode (proc_*) merge
    # rounds are synchronous and worker stepping depends only on the
    # shipped (kth, max_steps) and its own deterministic state.
    # Vector scenarios (row_*/vector_*) replay serially with cold caches
    # under the byte-identical-answers contract, so their counters are
    # deterministic too.  The any-k / reverse scenarios (anyk_*/reverse_*)
    # are serial cold-cache cursor replays of the same kind.
    serial = (
        name in SERIAL_SCENARIOS
        or name.startswith("build_")
        or name == "unsharded"
        or name.startswith("shards_")
        or name.startswith("proc_")
        or name.startswith("row_")
        or name.startswith("vector_")
        or name.startswith("anyk_")
        or name.startswith("reverse_")
        or name.startswith("ingest_")
        or name.startswith("failover_")
        # adaptive-bench scenarios replay one fixed stream serially with
        # logical (cache-independent) page accounting
        or name == "adaptive"
        or name.startswith("static_")
    )
    violations = []
    for metric in sorted(set(expected) | set(actual)):
        if any(metric.endswith(t) or metric == t for t in TIMING_METRICS):
            continue
        exp, act = expected.get(metric), actual.get(metric)
        path = f"scenarios.{name}.{metric}"
        if exp is None or act is None:
            violations.append(
                Violation(source, path, exp, act, "metric present in only one payload")
            )
            continue
        if isinstance(exp, (str, bool)) or isinstance(act, (str, bool)):
            # non-numeric metrics (device fingerprints, flags) compare exact
            if exp != act:
                violations.append(Violation(source, path, exp, act, "exact"))
            continue
        if not serial and metric in RATE_METRICS:
            if abs(float(exp) - float(act)) > RATE_ABS_TOL:
                violations.append(
                    Violation(source, path, exp, act, f"abs tol {RATE_ABS_TOL}")
                )
            continue
        rel = SERIAL_REL_TOL if serial else CONCURRENT_REL_TOL
        if not _within(float(exp), float(act), rel):
            violations.append(Violation(source, path, exp, act, f"rel tol {rel}"))
    return violations


def compare_payloads(expected: dict, actual: dict, source: str) -> list[Violation]:
    """Diff a fresh benchmark payload against its baseline.

    Pure function over two payload dicts — the unit tests drive it with
    synthetic payloads, no benchmark run required.
    """
    violations: list[Violation] = []
    if actual.get("equivalent_answers") is not True:
        violations.append(
            Violation(
                source,
                "equivalent_answers",
                True,
                actual.get("equivalent_answers"),
                "fresh run must return serial-equivalent answers",
            )
        )
    for metric in (
        "grid_blocks",
        "parallel_identical",
        "parallel_faster",
        "shard_identical",
        "process_identical",
        "hot_shard_below_baseline",
        "early_stop_engaged",
        "process_faster_than_thread",
        "sharded_beats_unsharded",
        "enumeration_matches_oracle",
        "reverse_matches_oracle",
        "pruning_effective",
        "recovery_replay_correct",
        "failover_zero_wrong_answers",
        "recovery_time_bounded",
        "adaptive_beats_best_static",
        "repartition_triggered",
        "best_static",
    ):
        if metric in expected and expected[metric] != actual.get(metric):
            violations.append(
                Violation(
                    source, metric, expected[metric], actual.get(metric), "exact"
                )
            )
    if expected.get("config") != actual.get("config"):
        violations.append(
            Violation(
                source,
                "config",
                expected.get("config"),
                actual.get("config"),
                "exact (fresh run must replay the baseline's config)",
            )
        )
    for metric in (
        "block_read_reduction_vs_serial_cold",
        "logical_block_reduction_vs_serial_cold",
    ):
        if metric not in expected:
            continue
        exp, act = expected[metric], actual.get(metric)
        if act is None or not _within(float(exp), float(act), RATIO_REL_TOL):
            violations.append(
                Violation(source, metric, exp, act, f"rel tol {RATIO_REL_TOL}")
            )
    expected_scenarios = expected.get("scenarios", {})
    actual_scenarios = actual.get("scenarios", {})
    for name in sorted(set(expected_scenarios) | set(actual_scenarios)):
        if name not in expected_scenarios or name not in actual_scenarios:
            violations.append(
                Violation(
                    source,
                    f"scenarios.{name}",
                    name in expected_scenarios,
                    name in actual_scenarios,
                    "scenario present in only one payload",
                )
            )
            continue
        violations.extend(
            _compare_scenario(
                name, expected_scenarios[name], actual_scenarios[name], source
            )
        )
    return violations


def discover_baselines(baseline_dir: Path, smoke: bool) -> list[Path]:
    """``BENCH_*.json`` files under ``baseline_dir`` (small configs if smoke)."""
    found = sorted(baseline_dir.glob("BENCH_*.json"))
    if not smoke:
        return found
    small = []
    for path in found:
        payload = json.loads(path.read_text())
        if payload.get("config", {}).get("num_tuples", 0) <= 5_000:
            small.append(path)
    return small


def check_baseline(path: Path, runner_map=None) -> list[Violation]:
    """Re-run one baseline file's benchmark and return its violations."""
    runners = runner_map if runner_map is not None else RUNNERS
    expected = json.loads(path.read_text())
    benchmark = expected.get("benchmark")
    runner = runners.get(benchmark)
    if runner is None:
        raise UnknownBenchmarkError(
            f"{path.name}: no runner for benchmark {benchmark!r} "
            f"(known: {sorted(runners)})"
        )
    actual = runner(expected["config"])
    return compare_payloads(expected, actual, path.name)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench check",
        description="Re-run checked-in benchmark baselines and fail on regression.",
    )
    parser.add_argument(
        "--baseline",
        default="results",
        help="directory holding BENCH_*.json baselines (default: results/)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="only baselines with small configs (num_tuples <= 5000)",
    )
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline)
    if not baseline_dir.is_dir():
        print(f"bench check: baseline directory not found: {baseline_dir}")
        return 2
    baselines = discover_baselines(baseline_dir, smoke=args.smoke)
    if not baselines:
        print(
            f"bench check: no BENCH_*.json baselines in {baseline_dir}"
            + (" matching --smoke" if args.smoke else "")
        )
        return 2

    all_violations: list[Violation] = []
    for path in baselines:
        print(f"bench check: re-running {path.name} ...")
        violations = check_baseline(path)
        all_violations.extend(violations)
        status = "OK" if not violations else f"{len(violations)} violation(s)"
        print(f"bench check: {path.name}: {status}")
    if all_violations:
        print()
        for violation in all_violations:
            print(f"REGRESSION {violation}")
        return 1
    print(f"bench check: {len(baselines)} baseline(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
