"""Crash-consistency schedules and the fault-matrix runner.

A *schedule* is one reproducible storm: build a ranking cube on a
:class:`~repro.storage.faults.FaultyBlockDevice` under a seeded transient
fault plan, run top-k queries through the retrying storage stack, then
simulate a crash — tear a few in-flight page writes, discard every
unflushed buffer-pool frame — "reopen" the surviving device image, and
check the two guarantees this repository makes about failure:

1. **No silent wrong answers.**  Every query, before and after the crash,
   either returns exactly the pristine-device top-k or raises a typed
   :class:`~repro.storage.device.StorageError` subclass (usually
   :class:`~repro.core.executor.QueryAbortedError` with partial results
   attached).
2. **Detectable damage only.**  After the crash, every device page is
   either readable or *detectably* invalid — scrubbing finds exactly the
   pages the crash tore, never an undetected mutation.

``run_fault_matrix`` sweeps a fixed seed tuple so CI stays deterministic
and fast (``python -m repro.bench fault-matrix``); the crash-consistency
test suite drives ``run_schedule`` across 100 seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core import RankingCube, RankingCubeExecutor
from ..core.compaction import COMPACTION_FAULT_POINTS, CubeCompactor
from ..ranking import LinearFunction
from ..relational import (
    Database,
    Schema,
    TopKQuery,
    ranking_attr,
    selection_attr,
)
from ..storage import (
    BlockDevice,
    FaultyBlockDevice,
    RetryPolicy,
    StorageError,
    transient_fault_plan,
)

#: Fixed seeds for the CI fault matrix (`python -m repro.bench fault-matrix`).
DEFAULT_MATRIX_SEEDS = (11, 23, 47)

_CARDS = (3, 4)


class HarnessError(AssertionError):
    """A crash-consistency guarantee was violated (this is the bug alarm)."""


@dataclass
class ScheduleOutcome:
    """What one seeded schedule observed.

    ``silent_wrong`` and ``undetected_damage`` must be zero for the
    schedule to uphold the consistency guarantees; everything else is
    descriptive (how hard the storm hit, how often retries saved a query).
    """

    seed: int
    built: bool = False
    build_error: str | None = None
    queries_ok: int = 0
    queries_aborted: int = 0
    silent_wrong: int = 0
    post_crash_ok: int = 0
    post_crash_aborted: int = 0
    undetected_damage: int = 0
    torn_pages: int = 0
    corrupt_pages_detected: int = 0
    dirty_pages_lost: int = 0
    faults_injected: int = 0
    retried_reads: int = 0
    retried_writes: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return self.silent_wrong == 0 and self.undetected_damage == 0


@dataclass
class FaultMatrixResult:
    """Aggregate of :func:`run_schedule` over a seed sweep."""

    outcomes: list[ScheduleOutcome]

    @property
    def consistent(self) -> bool:
        return all(outcome.consistent for outcome in self.outcomes)

    @property
    def total_faults(self) -> int:
        return sum(outcome.faults_injected for outcome in self.outcomes)

    def format_table(self) -> str:
        header = (
            f"fault-matrix over {len(self.outcomes)} schedule(s)  "
            f"[consistent={'yes' if self.consistent else 'NO'}]"
        )
        columns = (
            "seed built ok abort wrong post_ok post_abort torn detected "
            "lost faults rd_retry wr_retry"
        ).split()
        lines = [header, "  ".join(f"{c:>10}" for c in columns)]
        for o in self.outcomes:
            row = [
                o.seed,
                "yes" if o.built else "no",
                o.queries_ok,
                o.queries_aborted,
                o.silent_wrong,
                o.post_crash_ok,
                o.post_crash_aborted,
                o.torn_pages,
                o.corrupt_pages_detected,
                o.dirty_pages_lost,
                o.faults_injected,
                o.retried_reads,
                o.retried_writes,
            ]
            lines.append("  ".join(f"{str(v):>10}" for v in row))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# schedule ingredients
# ----------------------------------------------------------------------
def _schema() -> Schema:
    return Schema.of(
        [selection_attr("a1", _CARDS[0]), selection_attr("a2", _CARDS[1])]
        + [ranking_attr("n1"), ranking_attr("n2")]
    )


def _rows(rng: random.Random, count: int) -> list[tuple]:
    return [
        (rng.randrange(_CARDS[0]), rng.randrange(_CARDS[1]), rng.random(), rng.random())
        for _ in range(count)
    ]


def _queries(rng: random.Random, count: int) -> list[TopKQuery]:
    queries = []
    for _ in range(count):
        selections = {}
        if rng.random() < 0.8:
            selections["a1"] = rng.randrange(_CARDS[0])
        if rng.random() < 0.5:
            selections["a2"] = rng.randrange(_CARDS[1])
        fn = LinearFunction(
            ["n1", "n2"], [0.1 + rng.random(), 0.1 + rng.random()]
        )
        queries.append(TopKQuery(rng.randint(1, 8), selections, fn))
    return queries


def brute_force_scores(
    schema: Schema, rows: list[tuple], query: TopKQuery
) -> list[float]:
    """Reference top-k scores, computed with no storage at all."""
    scored = sorted(
        query.score_row(schema, row)
        for row in rows
        if query.matches(schema, row)
    )
    return scored[: query.k]


def _scores_match(result_rows, expected: list[float], tol: float = 1e-9) -> bool:
    got = [row.score for row in result_rows]
    if len(got) != len(expected):
        return False
    return all(abs(g - e) <= tol for g, e in zip(got, expected))


# ----------------------------------------------------------------------
# one schedule
# ----------------------------------------------------------------------
def run_schedule(
    seed: int,
    *,
    num_rows: int = 80,
    num_queries: int = 4,
    crash_torn_pages: int = 3,
    page_size: int = 512,
    retry_attempts: int = 6,
) -> ScheduleOutcome:
    """Run one seeded build/query/crash/reopen schedule.

    Raises :class:`HarnessError` if a consistency guarantee is violated —
    a query result that differs from the pristine reference without a
    typed error, a non-``StorageError`` escaping the stack, or post-crash
    damage the scrub cannot detect.
    """
    outcome = ScheduleOutcome(seed=seed)
    rng = random.Random(seed)
    schema = _schema()
    rows = _rows(rng, num_rows)
    queries = _queries(rng, num_queries)
    references = [brute_force_scores(schema, rows, q) for q in queries]

    injector = transient_fault_plan(rng.randrange(2**31))
    device = FaultyBlockDevice(BlockDevice(page_size=page_size), injector)
    db = Database(
        buffer_capacity=512,
        device=device,
        retry_policy=RetryPolicy(max_attempts=retry_attempts),
    )

    # --- build under fire -------------------------------------------------
    try:
        table = db.load_table("R", schema, rows)
        cube = RankingCube.build(table, block_size=rng.choice([4, 8, 16]))
        outcome.built = True
    except StorageError as exc:
        # a typed abort is an acceptable (if unlucky) outcome; anything
        # else would propagate out of this function as the bug it is
        outcome.build_error = f"{type(exc).__name__}: {exc}"
        outcome.faults_injected = injector.stats.total
        return outcome

    executor = RankingCubeExecutor(cube, table)

    # --- queries under fire ----------------------------------------------
    for query, expected in zip(queries, references):
        try:
            db.cold_cache()  # force every page access to face the device
            result = executor.execute(query)
        except StorageError:
            # QueryAbortedError (with partial rows) or a retry-exhausted /
            # corruption escalation from the cold_cache flush: all typed
            outcome.queries_aborted += 1
            continue
        if _scores_match(result.rows, expected):
            outcome.queries_ok += 1
        else:
            outcome.silent_wrong += 1
            outcome.notes.append(f"pre-crash silent wrong answer for {query}")

    # --- checkpoint, then crash with writes in flight ---------------------
    injector.disarm()
    db.pool.flush()  # checkpoint: the durable state queries will reopen
    # writes in flight at the moment of the crash: a few pages get torn
    # (partial image, stale checksum), a few buffered updates are lost
    # outright (dirtied in the pool, never flushed)
    tearable = list(range(device.num_pages))
    rng.shuffle(tearable)
    torn: list[int] = []
    for page_id in tearable[:crash_torn_pages]:
        garbage = bytes(rng.randrange(256) for _ in range(rng.randint(1, page_size)))
        device.patch(page_id, garbage, update_checksum=False)
        torn.append(page_id)
    outcome.torn_pages = len(torn)
    for page_id in tearable[crash_torn_pages : crash_torn_pages + 2]:
        db.pool.put(page_id, b"\x7fLOST" + bytes(page_size - 5))
    outcome.dirty_pages_lost = len(db.pool.dirty_pages)
    db.pool.crash()

    # --- reopen and verify ------------------------------------------------
    scrub = device.scrub()
    outcome.corrupt_pages_detected = len(scrub.corrupt_page_ids) + len(
        scrub.unreadable_page_ids
    )
    undetected = [
        page_id
        for page_id in torn
        if page_id not in scrub.corrupt_page_ids
        and page_id not in scrub.unreadable_page_ids
        and not _patch_was_noop(device, page_id)
    ]
    outcome.undetected_damage = len(undetected)
    if undetected:
        outcome.notes.append(f"torn pages not detected by scrub: {undetected}")
    unexpected = [
        page_id
        for page_id in scrub.corrupt_page_ids + scrub.unreadable_page_ids
        if page_id not in torn
    ]
    if unexpected:
        # scrubbing flagged a page the crash did not tear: the transient
        # fault plan leaked persistent damage, which would be a retry bug
        outcome.undetected_damage += len(unexpected)
        outcome.notes.append(f"unexpected corrupt pages: {unexpected}")

    for query, expected in zip(queries, references):
        try:
            result = executor.execute(query)
        except StorageError:
            outcome.post_crash_aborted += 1
            continue
        if _scores_match(result.rows, expected):
            outcome.post_crash_ok += 1
        else:
            outcome.silent_wrong += 1
            outcome.notes.append(f"post-crash silent wrong answer for {query}")

    outcome.faults_injected = injector.stats.total
    outcome.retried_reads = device.stats.retried_reads
    outcome.retried_writes = device.stats.retried_writes

    if not outcome.consistent:
        raise HarnessError(
            f"schedule seed={seed} violated crash consistency: "
            f"silent_wrong={outcome.silent_wrong}, "
            f"undetected_damage={outcome.undetected_damage}, "
            f"notes={outcome.notes}"
        )
    return outcome


def _patch_was_noop(device: FaultyBlockDevice, page_id: int) -> bool:
    """True when a torn patch happened to leave the page image intact."""
    try:
        device.inner.read(page_id)
        return True
    except StorageError:
        return False


# ----------------------------------------------------------------------
# compaction crash schedules
# ----------------------------------------------------------------------
class SimulatedKill(BaseException):
    """Raised by the fault hook to model the compactor dying mid-run.

    Deliberately *not* an ``Exception`` subclass: a kill is not an error
    the compactor may swallow, and deriving from ``BaseException`` proves
    no ``except Exception`` in the compaction path can absorb it.
    """


@dataclass
class CompactionCrashOutcome:
    """What one compaction-kill schedule observed.

    ``consistent`` requires every post-crash query to equal the full
    brute-force oracle (pre- and post-merge states both satisfy this —
    the delta covers whatever the materialization lacks) *and* the cube
    to be wholly in one generation (``state_violation == 0``).
    """

    seed: int
    fault_point: str
    killed: bool = False          #: the hook fired and the run died there
    swapped: bool = False         #: cube answers from the post-merge state
    reloaded: bool = False        #: verified via a save/load round-trip
    delta_remaining: int = 0
    queries_ok: int = 0
    silent_wrong: int = 0
    state_violation: int = 0      #: mixed-generation evidence (must be 0)
    notes: list[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return self.silent_wrong == 0 and self.state_violation == 0


def run_compaction_schedule(
    seed: int,
    *,
    fault_point: str,
    num_rows: int = 72,
    num_delta: int = 28,
    num_queries: int = 4,
    page_size: int = 1024,
    buffer_capacity: int = 256,
    snapshot_path=None,
) -> CompactionCrashOutcome:
    """Kill a compaction at ``fault_point`` and verify crash consistency.

    Builds a cube, appends ``num_delta`` tuples through ``refresh_delta``,
    checkpoints, then runs :meth:`CubeCompactor.compact_once` with a fault
    hook that raises :class:`SimulatedKill` at the named point.  After the
    kill the buffer pool crashes (unflushed frames drop), and every query
    must still equal the brute-force oracle over *all* rows: before the
    swap the old materialization plus the intact delta answers; after it
    the new materialization plus the residual delta does.  Partial states
    — some cuboids swapped, a half-merged delta — would miss or duplicate
    tuples and fail the oracle comparison.

    ``snapshot_path`` (a writable file path) additionally round-trips the
    survivor through ``Workspace.save`` / ``Workspace.load`` and verifies
    the *reloaded* cube, modeling a process restart from disk.
    """
    if fault_point not in COMPACTION_FAULT_POINTS:
        raise ValueError(
            f"unknown fault point {fault_point!r}; "
            f"known: {COMPACTION_FAULT_POINTS}"
        )
    outcome = CompactionCrashOutcome(seed=seed, fault_point=fault_point)
    rng = random.Random(seed)
    schema = _schema()
    rows = _rows(rng, num_rows)
    delta_rows = _rows(rng, num_delta)
    queries = _queries(rng, num_queries)
    all_rows = rows + delta_rows
    references = [brute_force_scores(schema, all_rows, q) for q in queries]

    db = Database(
        page_size=page_size,
        buffer_capacity=buffer_capacity,
        device=BlockDevice(page_size=page_size),
    )
    table = db.load_table("R", schema, rows)
    cube = RankingCube.build(table, block_size=rng.choice([4, 8]))
    table.insert_rows(delta_rows)
    cube.refresh_delta(table)
    db.pool.flush()  # checkpoint: pre-merge state is durable

    executor = RankingCubeExecutor(cube, table)
    for query, expected in zip(queries, references):
        if not _scores_match(executor.execute(query).rows, expected):
            raise HarnessError(
                f"seed {seed}: pre-crash answers already wrong for {query}"
            )

    def hook(point: str) -> None:
        if point == fault_point:
            raise SimulatedKill(point)

    compactor = CubeCompactor(cube, db.pool, fault_hook=hook)
    try:
        compactor.compact_once()
    except SimulatedKill:
        outcome.killed = True
    if not outcome.killed:
        raise HarnessError(
            f"seed {seed}: fault point {fault_point!r} never fired "
            f"(compaction was a no-op?)"
        )

    # the crash: every unflushed buffer frame is gone
    db.pool.crash()

    # whole-generation check: epochs move together or not at all
    epochs = {c.epoch for c in cube.cuboids.values()}
    if len(epochs) != 1:
        outcome.state_violation += 1
        outcome.notes.append(f"mixed cuboid generations: {sorted(epochs)}")
    outcome.swapped = epochs == {1}
    expect_swapped = fault_point in ("swapped", "notified")
    if outcome.swapped != expect_swapped:
        outcome.state_violation += 1
        outcome.notes.append(
            f"fault at {fault_point!r} left swapped={outcome.swapped}"
        )

    verify_cube, verify_table, verify_db = cube, table, db
    if snapshot_path is not None:
        from ..persist import Workspace

        Workspace(db=db, cubes={"R": cube}).save(snapshot_path)
        loaded = Workspace.load(snapshot_path)
        verify_cube = loaded.cube("R")
        verify_table = loaded.db.table("R")
        verify_db = loaded.db
        outcome.reloaded = True

    outcome.delta_remaining = verify_cube.delta_size
    verify_executor = RankingCubeExecutor(verify_cube, verify_table)
    for query, expected in zip(queries, references):
        verify_db.cold_cache()  # answers must come from the device image
        result = verify_executor.execute(query)
        if _scores_match(result.rows, expected):
            outcome.queries_ok += 1
        else:
            outcome.silent_wrong += 1
            outcome.notes.append(
                f"post-crash answer diverged from oracle for {query}"
            )

    if not outcome.consistent:
        raise HarnessError(
            f"compaction kill at {fault_point!r} seed={seed} violated "
            f"consistency: silent_wrong={outcome.silent_wrong}, "
            f"state_violation={outcome.state_violation}, "
            f"notes={outcome.notes}"
        )
    return outcome


# ----------------------------------------------------------------------
# the matrix
# ----------------------------------------------------------------------
def run_fault_matrix(
    seeds: tuple[int, ...] = DEFAULT_MATRIX_SEEDS, **schedule_kwargs
) -> FaultMatrixResult:
    """Run :func:`run_schedule` for each seed and aggregate the outcomes."""
    return FaultMatrixResult(
        outcomes=[run_schedule(seed, **schedule_kwargs) for seed in seeds]
    )
