"""Crash-consistency schedules and the fault-matrix runner.

A *schedule* is one reproducible storm: build a ranking cube on a
:class:`~repro.storage.faults.FaultyBlockDevice` under a seeded transient
fault plan, run top-k queries through the retrying storage stack, then
simulate a crash — tear a few in-flight page writes, discard every
unflushed buffer-pool frame — "reopen" the surviving device image, and
check the two guarantees this repository makes about failure:

1. **No silent wrong answers.**  Every query, before and after the crash,
   either returns exactly the pristine-device top-k or raises a typed
   :class:`~repro.storage.device.StorageError` subclass (usually
   :class:`~repro.core.executor.QueryAbortedError` with partial results
   attached).
2. **Detectable damage only.**  After the crash, every device page is
   either readable or *detectably* invalid — scrubbing finds exactly the
   pages the crash tore, never an undetected mutation.

``run_fault_matrix`` sweeps a fixed seed tuple so CI stays deterministic
and fast (``python -m repro.bench fault-matrix``); the crash-consistency
test suite drives ``run_schedule`` across 100 seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core import RankingCube, RankingCubeExecutor
from ..core.compaction import COMPACTION_FAULT_POINTS, CubeCompactor
from ..ranking import LinearFunction
from ..relational import (
    Database,
    Schema,
    TopKQuery,
    ranking_attr,
    selection_attr,
)
from ..storage import (
    BlockDevice,
    FaultyBlockDevice,
    RetryPolicy,
    StorageError,
    transient_fault_plan,
)

#: Fixed seeds for the CI fault matrix (`python -m repro.bench fault-matrix`).
DEFAULT_MATRIX_SEEDS = (11, 23, 47)

_CARDS = (3, 4)


class HarnessError(AssertionError):
    """A crash-consistency guarantee was violated (this is the bug alarm)."""


@dataclass
class ScheduleOutcome:
    """What one seeded schedule observed.

    ``silent_wrong`` and ``undetected_damage`` must be zero for the
    schedule to uphold the consistency guarantees; everything else is
    descriptive (how hard the storm hit, how often retries saved a query).
    """

    seed: int
    built: bool = False
    build_error: str | None = None
    queries_ok: int = 0
    queries_aborted: int = 0
    silent_wrong: int = 0
    post_crash_ok: int = 0
    post_crash_aborted: int = 0
    undetected_damage: int = 0
    torn_pages: int = 0
    corrupt_pages_detected: int = 0
    dirty_pages_lost: int = 0
    faults_injected: int = 0
    retried_reads: int = 0
    retried_writes: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return self.silent_wrong == 0 and self.undetected_damage == 0


@dataclass
class FaultMatrixResult:
    """Aggregate of :func:`run_schedule` over a seed sweep."""

    outcomes: list[ScheduleOutcome]

    @property
    def consistent(self) -> bool:
        return all(outcome.consistent for outcome in self.outcomes)

    @property
    def total_faults(self) -> int:
        return sum(outcome.faults_injected for outcome in self.outcomes)

    def format_table(self) -> str:
        header = (
            f"fault-matrix over {len(self.outcomes)} schedule(s)  "
            f"[consistent={'yes' if self.consistent else 'NO'}]"
        )
        columns = (
            "seed built ok abort wrong post_ok post_abort torn detected "
            "lost faults rd_retry wr_retry"
        ).split()
        lines = [header, "  ".join(f"{c:>10}" for c in columns)]
        for o in self.outcomes:
            row = [
                o.seed,
                "yes" if o.built else "no",
                o.queries_ok,
                o.queries_aborted,
                o.silent_wrong,
                o.post_crash_ok,
                o.post_crash_aborted,
                o.torn_pages,
                o.corrupt_pages_detected,
                o.dirty_pages_lost,
                o.faults_injected,
                o.retried_reads,
                o.retried_writes,
            ]
            lines.append("  ".join(f"{str(v):>10}" for v in row))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# schedule ingredients
# ----------------------------------------------------------------------
def _schema() -> Schema:
    return Schema.of(
        [selection_attr("a1", _CARDS[0]), selection_attr("a2", _CARDS[1])]
        + [ranking_attr("n1"), ranking_attr("n2")]
    )


def _rows(rng: random.Random, count: int) -> list[tuple]:
    return [
        (rng.randrange(_CARDS[0]), rng.randrange(_CARDS[1]), rng.random(), rng.random())
        for _ in range(count)
    ]


def _queries(rng: random.Random, count: int) -> list[TopKQuery]:
    queries = []
    for _ in range(count):
        selections = {}
        if rng.random() < 0.8:
            selections["a1"] = rng.randrange(_CARDS[0])
        if rng.random() < 0.5:
            selections["a2"] = rng.randrange(_CARDS[1])
        fn = LinearFunction(
            ["n1", "n2"], [0.1 + rng.random(), 0.1 + rng.random()]
        )
        queries.append(TopKQuery(rng.randint(1, 8), selections, fn))
    return queries


def brute_force_scores(
    schema: Schema, rows: list[tuple], query: TopKQuery
) -> list[float]:
    """Reference top-k scores, computed with no storage at all."""
    scored = sorted(
        query.score_row(schema, row)
        for row in rows
        if query.matches(schema, row)
    )
    return scored[: query.k]


def _scores_match(result_rows, expected: list[float], tol: float = 1e-9) -> bool:
    got = [row.score for row in result_rows]
    if len(got) != len(expected):
        return False
    return all(abs(g - e) <= tol for g, e in zip(got, expected))


# ----------------------------------------------------------------------
# one schedule
# ----------------------------------------------------------------------
def run_schedule(
    seed: int,
    *,
    num_rows: int = 80,
    num_queries: int = 4,
    crash_torn_pages: int = 3,
    page_size: int = 512,
    retry_attempts: int = 6,
) -> ScheduleOutcome:
    """Run one seeded build/query/crash/reopen schedule.

    Raises :class:`HarnessError` if a consistency guarantee is violated —
    a query result that differs from the pristine reference without a
    typed error, a non-``StorageError`` escaping the stack, or post-crash
    damage the scrub cannot detect.
    """
    outcome = ScheduleOutcome(seed=seed)
    rng = random.Random(seed)
    schema = _schema()
    rows = _rows(rng, num_rows)
    queries = _queries(rng, num_queries)
    references = [brute_force_scores(schema, rows, q) for q in queries]

    injector = transient_fault_plan(rng.randrange(2**31))
    device = FaultyBlockDevice(BlockDevice(page_size=page_size), injector)
    db = Database(
        buffer_capacity=512,
        device=device,
        retry_policy=RetryPolicy(max_attempts=retry_attempts),
    )

    # --- build under fire -------------------------------------------------
    try:
        table = db.load_table("R", schema, rows)
        cube = RankingCube.build(table, block_size=rng.choice([4, 8, 16]))
        outcome.built = True
    except StorageError as exc:
        # a typed abort is an acceptable (if unlucky) outcome; anything
        # else would propagate out of this function as the bug it is
        outcome.build_error = f"{type(exc).__name__}: {exc}"
        outcome.faults_injected = injector.stats.total
        return outcome

    executor = RankingCubeExecutor(cube, table)

    # --- queries under fire ----------------------------------------------
    for query, expected in zip(queries, references):
        try:
            db.cold_cache()  # force every page access to face the device
            result = executor.execute(query)
        except StorageError:
            # QueryAbortedError (with partial rows) or a retry-exhausted /
            # corruption escalation from the cold_cache flush: all typed
            outcome.queries_aborted += 1
            continue
        if _scores_match(result.rows, expected):
            outcome.queries_ok += 1
        else:
            outcome.silent_wrong += 1
            outcome.notes.append(f"pre-crash silent wrong answer for {query}")

    # --- checkpoint, then crash with writes in flight ---------------------
    injector.disarm()
    db.pool.flush()  # checkpoint: the durable state queries will reopen
    # writes in flight at the moment of the crash: a few pages get torn
    # (partial image, stale checksum), a few buffered updates are lost
    # outright (dirtied in the pool, never flushed)
    tearable = list(range(device.num_pages))
    rng.shuffle(tearable)
    torn: list[int] = []
    for page_id in tearable[:crash_torn_pages]:
        garbage = bytes(rng.randrange(256) for _ in range(rng.randint(1, page_size)))
        device.patch(page_id, garbage, update_checksum=False)
        torn.append(page_id)
    outcome.torn_pages = len(torn)
    for page_id in tearable[crash_torn_pages : crash_torn_pages + 2]:
        db.pool.put(page_id, b"\x7fLOST" + bytes(page_size - 5))
    outcome.dirty_pages_lost = len(db.pool.dirty_pages)
    db.pool.crash()

    # --- reopen and verify ------------------------------------------------
    scrub = device.scrub()
    outcome.corrupt_pages_detected = len(scrub.corrupt_page_ids) + len(
        scrub.unreadable_page_ids
    )
    undetected = [
        page_id
        for page_id in torn
        if page_id not in scrub.corrupt_page_ids
        and page_id not in scrub.unreadable_page_ids
        and not _patch_was_noop(device, page_id)
    ]
    outcome.undetected_damage = len(undetected)
    if undetected:
        outcome.notes.append(f"torn pages not detected by scrub: {undetected}")
    unexpected = [
        page_id
        for page_id in scrub.corrupt_page_ids + scrub.unreadable_page_ids
        if page_id not in torn
    ]
    if unexpected:
        # scrubbing flagged a page the crash did not tear: the transient
        # fault plan leaked persistent damage, which would be a retry bug
        outcome.undetected_damage += len(unexpected)
        outcome.notes.append(f"unexpected corrupt pages: {unexpected}")

    for query, expected in zip(queries, references):
        try:
            result = executor.execute(query)
        except StorageError:
            outcome.post_crash_aborted += 1
            continue
        if _scores_match(result.rows, expected):
            outcome.post_crash_ok += 1
        else:
            outcome.silent_wrong += 1
            outcome.notes.append(f"post-crash silent wrong answer for {query}")

    outcome.faults_injected = injector.stats.total
    outcome.retried_reads = device.stats.retried_reads
    outcome.retried_writes = device.stats.retried_writes

    if not outcome.consistent:
        raise HarnessError(
            f"schedule seed={seed} violated crash consistency: "
            f"silent_wrong={outcome.silent_wrong}, "
            f"undetected_damage={outcome.undetected_damage}, "
            f"notes={outcome.notes}"
        )
    return outcome


def _patch_was_noop(device: FaultyBlockDevice, page_id: int) -> bool:
    """True when a torn patch happened to leave the page image intact."""
    try:
        device.inner.read(page_id)
        return True
    except StorageError:
        return False


# ----------------------------------------------------------------------
# compaction crash schedules
# ----------------------------------------------------------------------
class SimulatedKill(BaseException):
    """Raised by the fault hook to model the compactor dying mid-run.

    Deliberately *not* an ``Exception`` subclass: a kill is not an error
    the compactor may swallow, and deriving from ``BaseException`` proves
    no ``except Exception`` in the compaction path can absorb it.
    """


@dataclass
class CompactionCrashOutcome:
    """What one compaction-kill schedule observed.

    ``consistent`` requires every post-crash query to equal the full
    brute-force oracle (pre- and post-merge states both satisfy this —
    the delta covers whatever the materialization lacks) *and* the cube
    to be wholly in one generation (``state_violation == 0``).
    """

    seed: int
    fault_point: str
    killed: bool = False          #: the hook fired and the run died there
    swapped: bool = False         #: cube answers from the post-merge state
    reloaded: bool = False        #: verified via a save/load round-trip
    delta_remaining: int = 0
    queries_ok: int = 0
    silent_wrong: int = 0
    state_violation: int = 0      #: mixed-generation evidence (must be 0)
    notes: list[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return self.silent_wrong == 0 and self.state_violation == 0


def run_compaction_schedule(
    seed: int,
    *,
    fault_point: str,
    num_rows: int = 72,
    num_delta: int = 28,
    num_queries: int = 4,
    page_size: int = 1024,
    buffer_capacity: int = 256,
    snapshot_path=None,
) -> CompactionCrashOutcome:
    """Kill a compaction at ``fault_point`` and verify crash consistency.

    Builds a cube, appends ``num_delta`` tuples through ``refresh_delta``,
    checkpoints, then runs :meth:`CubeCompactor.compact_once` with a fault
    hook that raises :class:`SimulatedKill` at the named point.  After the
    kill the buffer pool crashes (unflushed frames drop), and every query
    must still equal the brute-force oracle over *all* rows: before the
    swap the old materialization plus the intact delta answers; after it
    the new materialization plus the residual delta does.  Partial states
    — some cuboids swapped, a half-merged delta — would miss or duplicate
    tuples and fail the oracle comparison.

    ``snapshot_path`` (a writable file path) additionally round-trips the
    survivor through ``Workspace.save`` / ``Workspace.load`` and verifies
    the *reloaded* cube, modeling a process restart from disk.
    """
    if fault_point not in COMPACTION_FAULT_POINTS:
        raise ValueError(
            f"unknown fault point {fault_point!r}; "
            f"known: {COMPACTION_FAULT_POINTS}"
        )
    outcome = CompactionCrashOutcome(seed=seed, fault_point=fault_point)
    rng = random.Random(seed)
    schema = _schema()
    rows = _rows(rng, num_rows)
    delta_rows = _rows(rng, num_delta)
    queries = _queries(rng, num_queries)
    all_rows = rows + delta_rows
    references = [brute_force_scores(schema, all_rows, q) for q in queries]

    db = Database(
        page_size=page_size,
        buffer_capacity=buffer_capacity,
        device=BlockDevice(page_size=page_size),
    )
    table = db.load_table("R", schema, rows)
    cube = RankingCube.build(table, block_size=rng.choice([4, 8]))
    table.insert_rows(delta_rows)
    cube.refresh_delta(table)
    db.pool.flush()  # checkpoint: pre-merge state is durable

    executor = RankingCubeExecutor(cube, table)
    for query, expected in zip(queries, references):
        if not _scores_match(executor.execute(query).rows, expected):
            raise HarnessError(
                f"seed {seed}: pre-crash answers already wrong for {query}"
            )

    def hook(point: str) -> None:
        if point == fault_point:
            raise SimulatedKill(point)

    compactor = CubeCompactor(cube, db.pool, fault_hook=hook)
    try:
        compactor.compact_once()
    except SimulatedKill:
        outcome.killed = True
    if not outcome.killed:
        raise HarnessError(
            f"seed {seed}: fault point {fault_point!r} never fired "
            f"(compaction was a no-op?)"
        )

    # the crash: every unflushed buffer frame is gone
    db.pool.crash()

    # whole-generation check: epochs move together or not at all
    epochs = {c.epoch for c in cube.cuboids.values()}
    if len(epochs) != 1:
        outcome.state_violation += 1
        outcome.notes.append(f"mixed cuboid generations: {sorted(epochs)}")
    outcome.swapped = epochs == {1}
    expect_swapped = fault_point in ("swapped", "notified")
    if outcome.swapped != expect_swapped:
        outcome.state_violation += 1
        outcome.notes.append(
            f"fault at {fault_point!r} left swapped={outcome.swapped}"
        )

    verify_cube, verify_table, verify_db = cube, table, db
    if snapshot_path is not None:
        from ..persist import Workspace

        Workspace(db=db, cubes={"R": cube}).save(snapshot_path)
        loaded = Workspace.load(snapshot_path)
        verify_cube = loaded.cube("R")
        verify_table = loaded.db.table("R")
        verify_db = loaded.db
        outcome.reloaded = True

    outcome.delta_remaining = verify_cube.delta_size
    verify_executor = RankingCubeExecutor(verify_cube, verify_table)
    for query, expected in zip(queries, references):
        verify_db.cold_cache()  # answers must come from the device image
        result = verify_executor.execute(query)
        if _scores_match(result.rows, expected):
            outcome.queries_ok += 1
        else:
            outcome.silent_wrong += 1
            outcome.notes.append(
                f"post-crash answer diverged from oracle for {query}"
            )

    if not outcome.consistent:
        raise HarnessError(
            f"compaction kill at {fault_point!r} seed={seed} violated "
            f"consistency: silent_wrong={outcome.silent_wrong}, "
            f"state_violation={outcome.state_violation}, "
            f"notes={outcome.notes}"
        )
    return outcome


# ----------------------------------------------------------------------
# ingestion crash schedules
# ----------------------------------------------------------------------
@dataclass
class IngestCrashOutcome:
    """What one ingestion-kill schedule observed.

    ``consistent`` requires recovery to reconstruct *exactly* the durable
    prefix — every acknowledged batch present, the killed unacknowledged
    batch absent, every row byte-identical to the synchronous oracle, and
    every post-recovery query equal to brute force over that prefix.
    """

    seed: int
    fault_point: str
    killed: bool = False           #: the hook fired and append died there
    batches_total: int = 0
    batches_durable: int = 0       #: batches the durable prefix must hold
    rows_durable: int = 0          #: total rows after recovery (incl. base)
    rows_lost: int = 0             #: appended rows the crash legitimately lost
    torn_tail_bytes: int = 0       #: partial-record bytes left in the WAL
    replayed_rows: int = 0         #: rows recovery replayed from the WAL
    recovery_wall_s: float = 0.0
    queries_ok: int = 0
    silent_wrong: int = 0
    state_mismatch: int = 0        #: row-level divergence from the oracle
    notes: list[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return self.silent_wrong == 0 and self.state_mismatch == 0


def run_ingest_schedule(
    seed: int,
    *,
    fault_point: str,
    directory=None,
    num_base: int = 48,
    num_batches: int = 6,
    num_queries: int = 4,
    compact_threshold: int = 12,
) -> IngestCrashOutcome:
    """Kill a streaming append at ``fault_point`` and verify recovery.

    Builds a workspace, snapshots it, then streams ``num_batches`` row
    batches through a :class:`~repro.ingest.StreamIngestor` whose fault
    hook raises :class:`SimulatedKill` at a seeded occurrence of the
    named point.  The crash semantics follow write-ahead ordering:

    * ``"wal-append"`` — the record reached the OS but was never fsynced,
      so the crash may lose it entirely or leave a torn tail; the harness
      truncates the WAL file accordingly and the batch is NOT durable.
    * ``"wal-fsync"`` / ``"delta-tier-flush"`` / ``"compaction-swap"`` —
      the record is on stable storage, so the batch IS durable and
      recovery must replay it even though the in-memory state died.

    Recovery (:meth:`StreamIngestor.recover`) must then equal the
    synchronous oracle that applied exactly the durable batches: same
    row count, same bytes per tid, same top-k answers, and a repaired
    (cleanly appendable) WAL — proven by one post-recovery append.
    Raises :class:`HarnessError` on any divergence.
    """
    import os
    import shutil
    import tempfile
    from pathlib import Path

    from ..ingest import INGEST_FAULT_POINTS, StreamIngestor
    from ..persist import Workspace

    if fault_point not in INGEST_FAULT_POINTS:
        raise ValueError(
            f"unknown fault point {fault_point!r}; known: {INGEST_FAULT_POINTS}"
        )
    outcome = IngestCrashOutcome(seed=seed, fault_point=fault_point)
    rng = random.Random(seed)
    schema = _schema()
    base = _rows(rng, num_base)
    batches = [_rows(rng, rng.randint(2, 9)) for _ in range(num_batches)]
    queries = _queries(rng, num_queries)
    outcome.batches_total = num_batches

    own_dir = None
    if directory is None:
        own_dir = tempfile.mkdtemp(prefix="repro-ingest-kill-")
        directory = own_dir
    directory = Path(directory)
    snapshot_path = directory / f"ingest-{seed}.snapshot"
    wal_path = directory / f"ingest-{seed}.wal"
    for stale in (snapshot_path, wal_path):
        if stale.exists():
            stale.unlink()  # a rerun must not inherit the last crash's WAL

    try:
        db = Database(buffer_capacity=1024)
        table = db.load_table("R", schema, base)
        cube = RankingCube.build(table, block_size=rng.choice([4, 8]))
        workspace = Workspace(db=db, cubes={"R": cube})
        workspace.save(snapshot_path)

        # vary when the kill lands: the Nth firing of the point, so the
        # seed sweep covers first-batch, mid-stream, and compaction-time
        # deaths (compaction-swap fires rarely, so always take the first)
        per_batch = fault_point != "compaction-swap"
        occurrence = rng.randint(1, min(4, num_batches)) if per_batch else 1
        hits = 0

        def hook(point: str) -> None:
            nonlocal hits
            if point == fault_point:
                hits += 1
                if hits == occurrence:
                    raise SimulatedKill(point)

        ingestor = StreamIngestor(
            workspace,
            "R",
            wal_path,
            compact_threshold=compact_threshold,
            fault_hook=hook,
        )
        durable = list(base)
        appended = 0
        for batch in batches:
            pre_size = wal_path.stat().st_size if wal_path.exists() else 0
            try:
                ingestor.append(batch)
            except SimulatedKill:
                outcome.killed = True
                appended += len(batch)
                ingestor.close()
                if fault_point == "wal-append":
                    # never fsynced: chop the record back out, sometimes
                    # leaving a torn prefix for recovery to repair
                    full = wal_path.stat().st_size
                    if rng.random() < 0.5 or full - pre_size < 2:
                        cut = pre_size
                    else:
                        cut = pre_size + rng.randint(1, full - pre_size - 1)
                    with open(wal_path, "r+b") as fh:
                        fh.truncate(cut)
                        fh.flush()
                        os.fsync(fh.fileno())
                    outcome.torn_tail_bytes = cut - pre_size
                else:
                    durable.extend(batch)
                    outcome.batches_durable += 1
                break
            durable.extend(batch)
            outcome.batches_durable += 1
            appended += len(batch)
        else:
            ingestor.close()
        if not outcome.killed:
            raise HarnessError(
                f"seed {seed}: fault point {fault_point!r} never fired "
                f"(schedule too short to reach it?)"
            )
        outcome.rows_durable = len(durable)
        outcome.rows_lost = appended - (len(durable) - len(base))

        # the crash: the live workspace is simply gone; recovery starts
        # from the snapshot file plus whatever the WAL durably holds
        recovered = StreamIngestor.recover(snapshot_path, "R", wal_path)
        outcome.replayed_rows = recovered.recovered_rows
        outcome.recovery_wall_s = recovered.recovery_wall_s

        if recovered.table.num_rows != len(durable):
            outcome.state_mismatch += 1
            outcome.notes.append(
                f"recovered {recovered.table.num_rows} row(s), oracle holds "
                f"{len(durable)}"
            )
        else:
            diverged = [
                tid
                for tid, row in enumerate(durable)
                if recovered.table.fetch_by_tid(tid) != tuple(row)
            ]
            if diverged:
                outcome.state_mismatch += 1
                outcome.notes.append(f"rows diverge at tids {diverged[:5]}")
        if recovered.wal.torn_tail_bytes() != 0:
            outcome.state_mismatch += 1
            outcome.notes.append("recovery left a torn WAL tail in place")

        executor = RankingCubeExecutor(recovered.cube, recovered.table)
        for query in queries:
            expected = brute_force_scores(schema, durable, query)
            recovered.workspace.db.cold_cache()
            if _scores_match(executor.execute(query).rows, expected):
                outcome.queries_ok += 1
            else:
                outcome.silent_wrong += 1
                outcome.notes.append(
                    f"post-recovery answer diverged from oracle for {query}"
                )

        # liveness: the repaired WAL must take appends on a clean record
        # boundary, and they must be queryable immediately
        extra = _rows(rng, 3)
        recovered.append(extra)
        durable_plus = durable + extra
        probe = queries[0]
        expected = brute_force_scores(schema, durable_plus, probe)
        if not _scores_match(executor.execute(probe).rows, expected):
            outcome.silent_wrong += 1
            outcome.notes.append("post-recovery append not visible to queries")
        recovered.close()
    finally:
        if own_dir is not None:
            shutil.rmtree(own_dir, ignore_errors=True)

    if not outcome.consistent:
        raise HarnessError(
            f"ingest kill at {fault_point!r} seed={seed} violated "
            f"durability: state_mismatch={outcome.state_mismatch}, "
            f"silent_wrong={outcome.silent_wrong}, notes={outcome.notes}"
        )
    return outcome


# ----------------------------------------------------------------------
# sharded failover schedules
# ----------------------------------------------------------------------
#: Kill points the failover matrix drives.  All five exist in thread
#: mode; in process mode ``enum_next`` kills the worker process between
#: batches (there is no front-end hook inside a worker's enumeration).
FAILOVER_KILL_POINTS = (
    "scatter",        # shard death while opening per-shard searches
    "merge_round",    # shard death mid-merge, partial heap in hand
    "enum_next",      # shard death mid any-k enumeration
    "reverse_count",  # shard death during a reverse top-k count
    "promote",        # death *during the promotion itself*
)


@dataclass
class FailoverOutcome:
    """What one sharded failover schedule observed.

    ``consistent`` requires zero silent wrong answers: every query that
    returns must be byte-identical to the unsharded oracle, kill or no
    kill.  For the ``"promote"`` point the first query is *expected* to
    surface the :class:`SimulatedKill` (``kill_surfaced``) and the next
    query must heal.
    """

    seed: int
    mode: str
    kill_point: str
    victim: int = -1
    killed: bool = False
    kill_surfaced: bool = False    #: promote-kill escaped as it must
    failovers: int = 0             #: shard.replica.failovers for the victim
    promotions: int = 0            #: shard.replica.promotions (all shards)
    cold_respawns: int = 0         #: shard.pool.respawns (must stay 0)
    queries_ok: int = 0
    rows_compared: int = 0
    silent_wrong: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return self.silent_wrong == 0


class _PrimaryKill:
    """Fault hook that models one shard primary dying at a named point.

    Thread mode raises a typed :class:`StorageError` at the point for as
    long as the victim's original stack is still installed — a dead
    device stays dead until a replica replaces it.  Process mode SIGKILLs
    the victim's *current* worker process once (promoted replicas keep
    their spawn name, so the pool handle is the only reliable address).
    The ``"promote"`` point composes both: a primary death at scatter
    plus one :class:`SimulatedKill` at the promotion instant.
    """

    def __init__(self, kill_point: str, victim: int, mode: str):
        self.kill_point = kill_point
        self.victim = victim
        self.mode = mode
        self.armed = False
        self.fired = False
        self.promote_fired = False
        self.service = None
        self.original_shard = None

    def _primary_alive(self) -> bool:
        if self.mode == "process":
            return not self.fired
        return self.service.cube.shards[self.victim] is self.original_shard

    def kill_worker(self) -> None:
        """SIGKILL the victim's current worker (process mode only)."""
        self.fired = True
        handle = self.service._proc_pool._handles.get(self.victim)
        if handle is not None and handle.alive:
            handle.process.kill()
            handle.process.join(timeout=10)

    def __call__(self, point: str, shard_id: int) -> None:
        if not self.armed or shard_id != self.victim:
            return
        if point == "promote":
            if self.kill_point == "promote" and not self.promote_fired:
                self.promote_fired = True
                raise SimulatedKill(point)
            return
        trigger = "scatter" if self.kill_point == "promote" else self.kill_point
        if point != trigger or not self._primary_alive():
            return
        if self.mode == "process":
            self.kill_worker()
            # returning lets the in-flight request hit the dead pipe and
            # surface as WorkerDiedError, exactly like an external SIGKILL
            return
        self.fired = True
        raise StorageError(
            f"injected primary death at {point} (shard {shard_id})"
        )


def run_failover_schedule(
    seed: int,
    *,
    kill_point: str,
    mode: str = "thread",
    num_rows: int = 120,
    num_shards: int = 2,
    num_queries: int = 3,
) -> FailoverOutcome:
    """Kill one shard primary at ``kill_point`` and verify failover.

    Builds the same relation unsharded (the oracle) and sharded with
    ``replication_factor=2``, arms a :class:`_PrimaryKill`, then runs the
    workload.  Every answer the service returns must be byte-identical —
    ``(tid, score)`` for ``(tid, score)`` — to the oracle's, the victim's
    ``shard.replica.failovers`` counter must match the induced kills, and
    a promotion must have actually happened (no silent cold path).
    Raises :class:`HarnessError` on any violation.
    """
    from ..core.anyk import AnyKCursor
    from ..core.executor import ExecutorTrace
    from ..core.reverse import ReverseTopKQuery, simplex_grid_family
    from ..obs.metrics import MetricsRegistry
    from ..serve.sharded import ShardedQueryService
    from ..shard.builder import build_sharded
    from ..workloads.oracle import brute_force_reverse_topk

    if kill_point not in FAILOVER_KILL_POINTS:
        raise ValueError(
            f"unknown kill point {kill_point!r}; known: {FAILOVER_KILL_POINTS}"
        )
    outcome = FailoverOutcome(seed=seed, mode=mode, kill_point=kill_point)
    rng = random.Random(seed)
    schema = _schema()
    rows = _rows(rng, num_rows)
    queries = _queries(rng, num_queries)
    # reverse_count consults shards in id order and may stop early once
    # k predecessors are proven, so only shard 0 is guaranteed a look
    victim = 0 if kill_point == "reverse_count" else rng.randrange(num_shards)
    outcome.victim = victim

    # the unsharded oracle
    oracle_db = Database(buffer_capacity=4096)
    oracle_table = oracle_db.load_table("R", schema, rows)
    oracle_cube = RankingCube.build(oracle_table, block_size=8)
    oracle = RankingCubeExecutor(oracle_cube, oracle_table)

    sharded = build_sharded(
        schema, rows, num_shards, block_size=8, replication_factor=2
    )
    registry = MetricsRegistry()
    kill = _PrimaryKill(kill_point, victim, mode)
    service = ShardedQueryService(
        sharded,
        workers=2,
        mode=mode,
        registry=registry,
        fault_hook=kill,
        worker_timeout_s=30.0,
        # small step batches force multi-round gathers, so merge-time
        # kill points actually get reached in process mode too
        step_batch=2,
    )
    kill.service = service
    kill.original_shard = sharded.shards[victim]

    def check(got_pairs, expected_pairs, what: str) -> None:
        outcome.rows_compared += len(expected_pairs)
        if got_pairs == expected_pairs:
            outcome.queries_ok += 1
        else:
            outcome.silent_wrong += 1
            outcome.notes.append(f"{what}: {got_pairs!r} != {expected_pairs!r}")

    try:
        # for enum_next the kill arms only after a prefix has been pulled,
        # so the failover genuinely happens mid-enumeration
        kill.armed = kill_point != "enum_next"
        if kill_point == "enum_next":
            # deep enumeration: kill strikes mid-stream, the cursor must
            # fail over and keep emitting the exact oracle order
            enum_query = TopKQuery(4, {}, queries[0].ranking)
            depth = min(40, num_rows)
            oracle_cursor = AnyKCursor(oracle, enum_query, ExecutorTrace())
            expected = [
                (row.tid, round(row.score, 12))
                for row in oracle_cursor.next_batch(depth)
            ]
            cursor = service.open_search(enum_query)
            prefix = rng.randint(4, 12)
            got = [
                (row.tid, round(row.score, 12))
                for row in cursor.next_batch(prefix)
            ]
            kill.armed = True
            if mode == "process":
                kill.kill_worker()
            got += [
                (row.tid, round(row.score, 12))
                for row in cursor.next_batch(depth - len(got))
            ]
            cursor.close()
            check(got, expected, "any-k enumeration across the kill")
        elif kill_point == "reverse_count":
            best = max(
                range(len(rows)), key=lambda tid: (rows[tid][2] + rows[tid][3], tid)
            )
            reverse_query = ReverseTopKQuery(
                best, 6, {}, simplex_grid_family(["n1", "n2"], 3)
            )
            expected = brute_force_reverse_topk(schema, rows, reverse_query)
            got = service.submit_reverse(reverse_query).result()
            check(
                list(got.qualifying),
                list(expected),
                "reverse top-k across the kill",
            )
        elif kill_point == "promote":
            probe = queries[0]
            expected = [(r.tid, round(r.score, 12)) for r in oracle.execute(probe).rows]
            try:
                service.submit(probe).result()
                outcome.notes.append("promotion kill never surfaced")
                outcome.silent_wrong += 1
            except SimulatedKill:
                outcome.kill_surfaced = True
            # the retry must find the standby still on the bench and heal
            result = service.submit(probe).result()
            check(
                [(r.tid, round(r.score, 12)) for r in result.rows],
                expected,
                "first query after the promotion kill",
            )
        else:  # "scatter" / "merge_round"
            for index, query in enumerate(queries):
                expected = [
                    (r.tid, round(r.score, 12)) for r in oracle.execute(query).rows
                ]
                result = service.submit(query).result()
                check(
                    [(r.tid, round(r.score, 12)) for r in result.rows],
                    expected,
                    f"query {index} across the kill",
                )
        outcome.killed = kill.fired or kill.promote_fired

        # cooldown: with the primary promoted, the rest of the workload
        # must run clean (no residual dead state, no repeat failovers)
        for index, query in enumerate(queries[1:], start=1):
            expected = [
                (r.tid, round(r.score, 12)) for r in oracle.execute(query).rows
            ]
            result = service.submit(query).result()
            check(
                [(r.tid, round(r.score, 12)) for r in result.rows],
                expected,
                f"cooldown query {index}",
            )
    finally:
        service.close()

    outcome.failovers = int(
        registry.value("shard.replica.failovers", shard=str(victim))
    )
    outcome.promotions = int(registry.total("shard.replica.promotions"))
    outcome.cold_respawns = int(registry.total("shard.pool.respawns"))
    if not outcome.killed:
        raise HarnessError(
            f"seed {seed}: kill point {kill_point!r} never fired in {mode} mode"
        )
    if outcome.promotions != 1:
        raise HarnessError(
            f"seed {seed}: 1 induced kill at {kill_point!r} but "
            f"{outcome.promotions} replica promotion(s)"
        )
    if outcome.cold_respawns != 0:
        raise HarnessError(
            f"seed {seed}: kill at {kill_point!r} took the cold respawn "
            f"path ({outcome.cold_respawns}) despite a warm standby"
        )
    if kill_point == "promote":
        if not outcome.kill_surfaced:
            raise HarnessError(
                f"seed {seed}: promotion kill was swallowed somewhere"
            )
    elif mode == "thread" and outcome.failovers != 1:
        # in process mode a kill can heal below the query layer (the pool
        # warm-promotes on handle acquisition), so failovers may be 0 there
        raise HarnessError(
            f"seed {seed}: induced 1 kill at {kill_point!r} but "
            f"shard.replica.failovers[shard={victim}] is {outcome.failovers}"
        )
    if not outcome.consistent:
        raise HarnessError(
            f"failover kill at {kill_point!r} seed={seed} mode={mode} gave "
            f"silent wrong answers: {outcome.notes}"
        )
    return outcome


# ----------------------------------------------------------------------
# the matrix
# ----------------------------------------------------------------------
def run_fault_matrix(
    seeds: tuple[int, ...] = DEFAULT_MATRIX_SEEDS, **schedule_kwargs
) -> FaultMatrixResult:
    """Run :func:`run_schedule` for each seed and aggregate the outcomes."""
    return FaultMatrixResult(
        outcomes=[run_schedule(seed, **schedule_kwargs) for seed in seeds]
    )
