"""Any-k / reverse top-k benchmark: ``python -m repro.bench anyk``.

Replays two fixed-seed scenario families against one seeded cube, on the
row executor and the vectorized executor:

* **any-k enumeration** — a cursor opened per query streams
  ``enum_depth`` rows (far past ``k``) in certified rank order; every
  streamed prefix must equal the brute-force ranked oracle
  (:func:`repro.workloads.oracle.brute_force_ranked`) exactly —
  the ``enumeration_matches_oracle`` gate.
* **reverse top-k** — each seeded target tuple is tested against the
  simplex weight-vector family; the qualifying sets must equal
  :func:`repro.workloads.oracle.brute_force_reverse_topk` exactly —
  the ``reverse_matches_oracle`` gate.  The per-function frontier must
  also *prune*: candidate block pops may be at most
  ``PRUNING_TARGET`` of the exhaustive blocks-times-functions count —
  the ``pruning_effective`` gate (Lemma-1 bounds at work; an
  exhaustive counter would visit every block for every function).

Row and vector paths must agree bitwise (``equivalent_answers``).  All
four gates are hard: a fresh run failing any of them exits nonzero, and
``python -m repro.bench check`` refuses the payload.  Results land in
``BENCH_anyk.json`` (``BENCH_anyk_smoke.json`` for the CI-sized run).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass

from ..core.cube import RankingCube
from ..core.executor import RankingCubeExecutor
from ..core.reverse import ReverseTopKQuery, reverse_topk, simplex_grid_family
from ..relational.database import Database
from ..workloads.oracle import brute_force_ranked, brute_force_reverse_topk
from ..workloads.queries import QueryGenerator, QuerySpec
from ..workloads.synthetic import SyntheticSpec, generate

#: Reverse counting must pop at most this fraction of the exhaustive
#: (every block, every function, every target) candidate count.
PRUNING_TARGET = 0.5


@dataclass(frozen=True)
class AnyKBenchConfig:
    """Knobs of one any-k benchmark run (fixed seed => fixed workload)."""

    num_tuples: int = 20_000
    num_queries: int = 40
    cardinality: int = 6
    num_selection_dims: int = 3
    num_ranking_dims: int = 2
    k: int = 10
    enum_depth: int = 100
    block_size: int = 100
    buffer_capacity: int = 8192
    reverse_targets: int = 8
    reverse_k: int = 10
    simplex_steps: int = 6
    seed: int = 23

    @classmethod
    def smoke(cls) -> "AnyKBenchConfig":
        """Fast fixed-seed configuration for CI (a few seconds)."""
        return cls(
            num_tuples=4_000,
            num_queries=12,
            enum_depth=40,
            block_size=50,
            reverse_targets=4,
            simplex_steps=4,
        )


def _build_environment(config: AnyKBenchConfig):
    dataset = generate(
        SyntheticSpec(
            num_selection_dims=config.num_selection_dims,
            num_ranking_dims=config.num_ranking_dims,
            num_tuples=config.num_tuples,
            cardinality=config.cardinality,
            seed=config.seed,
        )
    )
    db = Database(buffer_capacity=config.buffer_capacity)
    table = dataset.load_into(db)
    cube = RankingCube.build(table, block_size=config.block_size)
    return dataset, db, table, cube


def build_query_stream(config: AnyKBenchConfig, schema) -> list:
    """Fixed-seed forward queries whose cursors the enum scenarios drain."""
    return QueryGenerator(
        schema,
        QuerySpec(k=config.k, num_selections=1, seed=config.seed),
    ).batch(config.num_queries)


def build_reverse_queries(config: AnyKBenchConfig, dataset) -> list:
    """Seeded target tuples against the simplex weight-vector family."""
    import random

    rng = random.Random(config.seed + 7)
    schema = dataset.schema
    family = simplex_grid_family(["n1", "n2"], config.simplex_steps)
    sel_name = schema.selection_names[0]
    queries = []
    for _ in range(config.reverse_targets):
        tid = rng.randrange(len(dataset.rows))
        # scope the competition to the target's own selection value so
        # the target always matches and every function gets counted
        selections = {sel_name: dataset.rows[tid][schema.position(sel_name)]}
        queries.append(
            ReverseTopKQuery(tid, config.reverse_k, selections, family)
        )
    return queries


@dataclass
class EnumScenarioReport:
    """One executor's aggregate numbers over the enumeration stream."""

    queries: int
    wall_s: float
    throughput_qps: float
    rows_per_query: float
    blocks_per_query: float
    candidates_per_query: float
    tuples_per_query: float


@dataclass
class ReverseScenarioReport:
    """One executor's aggregate numbers over the reverse-target stream."""

    targets: int
    functions: int
    wall_s: float
    throughput_qps: float
    qualifying_total: int
    blocks_per_query: float
    candidates_per_query: float
    tuples_per_query: float
    pruning_ratio: float


def run_enum_scenario(config: AnyKBenchConfig, dataset, stream, use_vector: bool):
    """Serial cold-cache cursor replay; returns (report, signature)."""
    _dataset, db, table, cube = _build_environment(config)
    executor = RankingCubeExecutor(cube, table, use_vector=use_vector)
    signature = []
    total_rows = total_blocks = total_candidates = total_tuples = 0
    started = time.perf_counter()
    for query in stream:
        db.cold_cache()
        cursor = executor.open_search(query)
        rows = []
        while len(rows) < config.enum_depth and not cursor.exhausted:
            rows.extend(cursor.next_batch(config.enum_depth - len(rows)))
        live = cursor.search.result
        total_rows += len(rows)
        total_blocks += live.blocks_accessed
        total_candidates += live.candidates_examined
        total_tuples += live.tuples_examined
        signature.append([(row.tid, row.score) for row in rows])
    wall = time.perf_counter() - started
    count = max(1, len(stream))
    report = EnumScenarioReport(
        queries=len(stream),
        wall_s=wall,
        throughput_qps=len(stream) / wall if wall > 0 else 0.0,
        rows_per_query=total_rows / count,
        blocks_per_query=total_blocks / count,
        candidates_per_query=total_candidates / count,
        tuples_per_query=total_tuples / count,
    )
    return report, signature


def run_reverse_scenario(config: AnyKBenchConfig, dataset, queries, use_vector: bool):
    """Serial cold-cache reverse replay; returns (report, signature)."""
    _dataset, db, table, cube = _build_environment(config)
    executor = RankingCubeExecutor(cube, table, use_vector=use_vector)
    signature = []
    total_blocks = total_candidates = total_tuples = qualifying = 0
    functions_counted = 0
    started = time.perf_counter()
    for query in queries:
        db.cold_cache()
        result = reverse_topk(executor, query)
        total_blocks += result.blocks_accessed
        total_candidates += result.candidates_examined
        total_tuples += result.tuples_examined
        qualifying += len(result.qualifying)
        if result.target_matches:
            functions_counted += len(query.functions)
        signature.append((list(result.qualifying), list(result.target_scores)))
    wall = time.perf_counter() - started
    count = max(1, len(queries))
    # exhaustive = every counted function pops every block of the grid
    exhaustive = max(1, functions_counted * cube.grid.num_blocks)
    report = ReverseScenarioReport(
        targets=len(queries),
        functions=len(queries[0].functions) if queries else 0,
        wall_s=wall,
        throughput_qps=len(queries) / wall if wall > 0 else 0.0,
        qualifying_total=qualifying,
        blocks_per_query=total_blocks / count,
        candidates_per_query=total_candidates / count,
        tuples_per_query=total_tuples / count,
        pruning_ratio=total_candidates / exhaustive,
    )
    return report, signature


def run_anyk_bench(config: AnyKBenchConfig) -> dict:
    """Run both scenario families on both executors; return the payload."""
    dataset, _db, table, cube = _build_environment(config)
    stream = build_query_stream(config, table.schema)
    reverse_queries = build_reverse_queries(config, dataset)

    scenarios = {}
    scenarios["anyk_row"], enum_row = run_enum_scenario(
        config, dataset, stream, use_vector=False
    )
    scenarios["anyk_vector"], enum_vec = run_enum_scenario(
        config, dataset, stream, use_vector=True
    )
    scenarios["reverse_row"], rev_row = run_reverse_scenario(
        config, dataset, reverse_queries, use_vector=False
    )
    scenarios["reverse_vector"], rev_vec = run_reverse_scenario(
        config, dataset, reverse_queries, use_vector=True
    )

    # gate 1: every streamed prefix equals the brute-force ranked oracle
    schema, rows = dataset.schema, dataset.rows
    enumeration_matches = all(
        sig
        == [
            (r.tid, r.score)
            for r in brute_force_ranked(schema, rows, query)[: config.enum_depth]
        ]
        for sig, query in zip(enum_row, stream)
    )
    # gate 2: every qualifying set equals the brute-force reverse oracle
    reverse_matches = all(
        sig[0] == brute_force_reverse_topk(schema, rows, query)
        for sig, query in zip(rev_row, reverse_queries)
    )
    # gate 3: row and vector paths agree bitwise on both scenario families
    equivalent = enum_row == enum_vec and rev_row == rev_vec
    # gate 4: the frontier actually prunes (on the row path's counters)
    pruning_ratio = scenarios["reverse_row"].pruning_ratio
    pruning_effective = pruning_ratio <= PRUNING_TARGET

    return {
        "benchmark": "anyk",
        "config": asdict(config),
        "grid_blocks": cube.grid.num_blocks,
        "scenarios": {name: asdict(report) for name, report in scenarios.items()},
        "enumeration_matches_oracle": enumeration_matches,
        "reverse_matches_oracle": reverse_matches,
        "pruning_effective": pruning_effective,
        "equivalent_answers": bool(
            equivalent and enumeration_matches and reverse_matches
        ),
    }


def format_anyk_table(payload: dict) -> str:
    """Fixed-width human-readable view of the JSON payload."""
    headers = ("scenario", "qps", "blk/q", "cand/q", "tup/q")
    lines = [
        "anyk: ranked enumeration + reverse top-k vs the brute-force oracle",
        "".join(h.rjust(14) for h in headers),
        "-" * (14 * len(headers)),
    ]
    for name, s in payload["scenarios"].items():
        lines.append(
            name.rjust(14)
            + f"{s['throughput_qps']:14.1f}"
            + f"{s['blocks_per_query']:14.2f}"
            + f"{s['candidates_per_query']:14.1f}"
            + f"{s['tuples_per_query']:14.1f}"
        )
    reverse = payload["scenarios"]["reverse_row"]
    lines.append(
        f"enumeration matches oracle: {payload['enumeration_matches_oracle']}; "
        f"reverse matches oracle: {payload['reverse_matches_oracle']}"
    )
    lines.append(
        f"reverse pruning ratio: {reverse['pruning_ratio']:.3f} "
        f"({'meets' if payload['pruning_effective'] else 'MISSES'} "
        f"<= {PRUNING_TARGET:g} target); "
        f"row/vector identical: {payload['equivalent_answers']}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench anyk",
        description=(
            "Gate any-k enumeration and reverse top-k against the "
            "brute-force oracle."
        ),
    )
    parser.add_argument("--smoke", action="store_true", help="fast fixed-seed CI mode")
    parser.add_argument("--tuples", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--out",
        default=None,
        help="JSON output path (default: BENCH_anyk.json, _smoke with --smoke)",
    )
    args = parser.parse_args(argv)

    config = AnyKBenchConfig.smoke() if args.smoke else AnyKBenchConfig()
    overrides = {}
    if args.tuples is not None:
        overrides["num_tuples"] = args.tuples
    if args.queries is not None:
        overrides["num_queries"] = args.queries
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        config = AnyKBenchConfig(**{**asdict(config), **overrides})

    out = args.out or ("BENCH_anyk_smoke.json" if args.smoke else "BENCH_anyk.json")
    payload = run_anyk_bench(config)
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(format_anyk_table(payload))
    print(f"wrote {out}")
    gates = (
        "enumeration_matches_oracle",
        "reverse_matches_oracle",
        "pruning_effective",
        "equivalent_answers",
    )
    return 0 if all(payload[g] for g in gates) else 1
