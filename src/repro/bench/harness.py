"""Experiment harness.

Runs a batch of queries through each configured method with a cold buffer
pool per query, and aggregates three cost views:

* **wall-clock** (what the paper plots; in our Python substrate it is the
  least meaningful — noted in EXPERIMENTS.md),
* **page I/O** (reads, split random/sequential — the quantity the paper's
  structures actually optimize; our primary metric), and
* **logical work** (blocks accessed, tuples examined).

Every method executes against the *same* shared device, so the I/O
comparisons are apples to apples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..baselines.rank_mapping import RankMappingExecutor
from ..baselines.scan import BaselineExecutor
from ..core.cube import RankingCube
from ..core.executor import RankingCubeExecutor
from ..core.fragments import FragmentedRankingCube
from ..relational.database import Database
from ..relational.query import TopKQuery
from ..relational.table import Table
from ..workloads.synthetic import SyntheticDataset

#: Canonical display order/names of methods across all experiments.
METHOD_BASELINE = "baseline"
METHOD_RANK_MAPPING = "rank_mapping"
METHOD_RANKING_CUBE = "ranking_cube"
METHOD_RANKING_FRAGMENTS = "ranking_fragments"


@dataclass
class MethodMetrics:
    """Averaged per-query costs for one method at one x-value."""

    wall_ms: float = 0.0
    pages_read: float = 0.0
    random_reads: float = 0.0
    sequential_reads: float = 0.0
    io_cost: float = 0.0
    blocks_accessed: float = 0.0
    tuples_examined: float = 0.0
    space_bytes: float = 0.0
    queries: int = 0

    def metric(self, name: str) -> float:
        value = getattr(self, name)
        if not isinstance(value, (int, float)):
            raise AttributeError(f"{name} is not a numeric metric")
        return float(value)


@dataclass
class SeriesPoint:
    """One x-axis point of an experiment: x value -> per-method metrics."""

    x: object
    metrics: dict[str, MethodMetrics] = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """A full experiment: the data behind one paper figure."""

    experiment_id: str
    title: str
    x_label: str
    points: list[SeriesPoint] = field(default_factory=list)
    notes: str = ""

    @property
    def methods(self) -> list[str]:
        names: list[str] = []
        for point in self.points:
            for name in point.metrics:
                if name not in names:
                    names.append(name)
        return names

    def series(self, method: str, metric: str = "io_cost") -> list[float]:
        """One method's metric across the x axis."""
        return [point.metrics[method].metric(metric) for point in self.points]

    def xs(self) -> list[object]:
        return [point.x for point in self.points]

    def format_table(self, metric: str = "io_cost") -> str:
        """Fixed-width table of one metric, a row per x value."""
        methods = self.methods
        header = [self.x_label.ljust(16)] + [m.rjust(18) for m in methods]
        lines = [
            f"{self.experiment_id}: {self.title}  [{metric}]",
            "".join(header),
            "-" * (16 + 18 * len(methods)),
        ]
        for point in self.points:
            cells = [str(point.x).ljust(16)]
            for method in methods:
                metrics = point.metrics.get(method)
                if metrics is None:
                    cells.append("-".rjust(18))
                else:
                    cells.append(f"{metrics.metric(metric):18.2f}")
            lines.append("".join(cells))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def summary(self) -> str:
        """All three cost views, concatenated."""
        parts = [self.format_table(m) for m in ("io_cost", "pages_read", "wall_ms")]
        return "\n\n".join(parts)


class Environment:
    """One dataset loaded with every access structure the methods need."""

    def __init__(
        self,
        db: Database,
        table: Table,
        executors: dict[str, object],
        cube: RankingCube | None = None,
    ):
        self.db = db
        self.table = table
        self.executors = executors
        self.cube = cube

    def run(
        self,
        method: str,
        queries: Sequence[TopKQuery],
        cold_cache: bool = True,
    ) -> MethodMetrics:
        """Execute queries through one method, averaging the costs."""
        executor = self.executors[method]
        totals = MethodMetrics()
        for query in queries:
            if cold_cache:
                self.db.cold_cache()
            self.db.device.reset_stats()
            started = time.perf_counter()
            result = executor.execute(query)  # type: ignore[attr-defined]
            elapsed = time.perf_counter() - started
            stats = self.db.device.stats
            totals.wall_ms += elapsed * 1000.0
            totals.pages_read += stats.reads
            totals.random_reads += stats.random_reads
            totals.sequential_reads += stats.sequential_reads
            totals.io_cost += stats.cost()
            totals.blocks_accessed += result.blocks_accessed
            totals.tuples_examined += result.tuples_examined
            totals.queries += 1
        count = max(1, totals.queries)
        totals.wall_ms /= count
        totals.pages_read /= count
        totals.random_reads /= count
        totals.sequential_reads /= count
        totals.io_cost /= count
        totals.blocks_accessed /= count
        totals.tuples_examined /= count
        return totals


def build_environment(
    dataset: SyntheticDataset,
    methods: Sequence[str],
    block_size: int = 30,
    fragment_size: int = 2,
    buffer_capacity: int = 4096,
    page_size: int = 4096,
    partitioner=None,
) -> Environment:
    """Load a dataset and build the structures each method requires.

    * baseline          -> non-clustered index per selection dimension,
    * rank_mapping      -> composite index per fragment (or one covering
      index when the dimension count is small),
    * ranking_cube      -> full ranking cube,
    * ranking_fragments -> fragment family of cuboids.
    """
    db = Database(page_size=page_size, buffer_capacity=buffer_capacity)
    table = dataset.load_into(db)
    schema = dataset.schema
    executors: dict[str, object] = {}
    cube: RankingCube | None = None

    if METHOD_BASELINE in methods:
        for name in schema.selection_names:
            table.create_secondary_index(name)
        executors[METHOD_BASELINE] = BaselineExecutor(table)

    if METHOD_RANK_MAPPING in methods:
        sel = list(schema.selection_names)
        rank = list(schema.ranking_names)
        if len(sel) <= 4:
            if sel:
                table.create_composite_index(sel, rank)
            else:
                table.create_composite_index([], rank)
        else:
            # one partial multi-dimensional index per fragment (Sec. 5.1.2)
            for start in range(0, len(sel), fragment_size):
                table.create_composite_index(sel[start:start + fragment_size], rank)
        executors[METHOD_RANK_MAPPING] = RankMappingExecutor(table)

    if METHOD_RANKING_CUBE in methods:
        cube = RankingCube.build(
            table, block_size=block_size, partitioner=partitioner
        )
        executors[METHOD_RANKING_CUBE] = RankingCubeExecutor(cube, table)

    if METHOD_RANKING_FRAGMENTS in methods:
        cube = FragmentedRankingCube.build_fragments(
            table,
            fragment_size=fragment_size,
            block_size=block_size,
            partitioner=partitioner,
        )
        executors[METHOD_RANKING_FRAGMENTS] = RankingCubeExecutor(cube, table)

    return Environment(db, table, executors, cube=cube)


def sweep(
    experiment_id: str,
    title: str,
    x_label: str,
    x_values: Sequence[object],
    point_builder: Callable[[object], dict[str, MethodMetrics]],
    notes: str = "",
) -> ExperimentResult:
    """Drive an experiment: one ``point_builder`` call per x value."""
    result = ExperimentResult(experiment_id, title, x_label, notes=notes)
    for x in x_values:
        result.points.append(SeriesPoint(x=x, metrics=point_builder(x)))
    return result
