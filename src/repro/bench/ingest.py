"""Durable-ingestion benchmark: ``python -m repro.bench ingest``.

Measures the WAL-backed streaming append pipeline end to end and proves
its two durability contracts under load:

* **ingest_throughput** — streams ``num_tuples`` rows through a
  :class:`~repro.ingest.StreamIngestor` (write-ahead log fsync, delta
  refresh, tiered runs, threshold compaction), then recovers the whole
  workspace from the snapshot plus WAL replay and checks every probe
  query against brute force over the full row set.  A checkpoint at the
  end must truncate the WAL so a second recovery replays zero rows —
  recovery work is bounded by the checkpoint, not by ingest history.
* **ingest_kill_*** — the seeded crash schedules of
  :func:`repro.bench.faultmatrix.run_ingest_schedule` at every ingest
  fault point: each cell kills the ingestor mid-append and requires
  recovery to equal the synchronous oracle over the durable prefix.
* **failover_thread / failover_process** — the primary-kill schedules of
  :func:`repro.bench.faultmatrix.run_failover_schedule`: a replicated
  shard's primary dies at every kill point and the answers served across
  the failover must stay byte-identical to the unsharded oracle.

Three gates land in the payload (exact in ``bench check``):
``recovery_replay_correct`` (WAL replay reconstructs the oracle state,
crash or no crash), ``failover_zero_wrong_answers`` (every kill heals
through exactly one warm promotion, no cold respawns, no divergent
rows), and ``recovery_time_bounded`` (every recovery finishes inside
``recovery_budget_s``).  Results land in ``BENCH_ingest.json``.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from .faultmatrix import (
    FAILOVER_KILL_POINTS,
    HarnessError,
    _queries,
    _rows,
    _schema,
    _scores_match,
    brute_force_scores,
    run_failover_schedule,
    run_ingest_schedule,
)


@dataclass(frozen=True)
class IngestBenchConfig:
    """Knobs of one durable-ingestion benchmark run (fixed seed).

    ``fault_points`` / ``*_kill_points`` are comma-joined strings (not
    tuples) so the config survives a JSON round-trip byte-identically —
    ``bench check`` compares the embedded config exactly.  The smoke
    config shrinks the stream and the schedule sweeps; the gates stay
    armed everywhere (``recovery_budget_s`` is generous enough that only
    a real replay pathology can trip it, even on one CI core).
    """

    num_tuples: int = 20_000
    num_base: int = 2_000
    batch_rows: int = 500
    num_queries: int = 4
    compact_threshold: int = 4_000
    kill_seeds: int = 12
    fault_points: str = "wal-append,wal-fsync,delta-tier-flush,compaction-swap"
    thread_kill_points: str = "scatter,merge_round,enum_next,reverse_count,promote"
    thread_seeds: str = "0,1,2,3"
    process_kill_points: str = "scatter,merge_round,enum_next,reverse_count,promote"
    # process-mode schedules need queries deep enough to outlive the
    # opening scatter batch, or mid-merge kill points never fire; these
    # seeds are the ones the failover test suite vetted for that
    process_seeds: str = "5,29"
    recovery_budget_s: float = 30.0
    block_size: int = 8
    buffer_capacity: int = 4096
    seed: int = 23

    @classmethod
    def smoke(cls) -> "IngestBenchConfig":
        """Fast fixed-seed configuration for CI (a few seconds)."""
        return cls(
            num_tuples=2_000,
            num_base=400,
            batch_rows=100,
            compact_threshold=500,
            kill_seeds=3,
            thread_seeds="0,1",
            process_kill_points="scatter,promote",
            process_seeds="5",
        )

    def fault_point_list(self) -> list[str]:
        return [p.strip() for p in self.fault_points.split(",") if p.strip()]

    def kill_point_list(self, mode: str) -> list[str]:
        raw = self.thread_kill_points if mode == "thread" else self.process_kill_points
        points = [p.strip() for p in raw.split(",") if p.strip()]
        for point in points:
            if point not in FAILOVER_KILL_POINTS:
                raise ValueError(f"unknown kill point {point!r}")
        return points

    def seed_list(self, mode: str) -> list[int]:
        raw = self.thread_seeds if mode == "thread" else self.process_seeds
        return [int(s) for s in raw.split(",") if s.strip()]


@dataclass
class IngestThroughputReport:
    """The no-crash pipeline: append, recover, verify, checkpoint."""

    rows_appended: int
    batches: int
    compactions: int
    wal_bytes: int
    wall_s: float
    tuples_per_s: float
    replayed_rows: int             #: full recovery replays every appended row
    repaired_tail_bytes: int       #: clean shutdown leaves no torn tail
    recovery_wall_s: float
    replayed_after_checkpoint: int  #: checkpoint bounds replay work to 0
    queries_ok: int
    silent_wrong: int


@dataclass
class IngestKillReport:
    """Aggregate of one fault point's seeded crash schedules."""

    fault_point: str
    schedules: int
    killed: int
    batches_durable: int
    replayed_rows: int
    rows_lost: int
    torn_tail_schedules: int
    queries_ok: int
    silent_wrong: int
    state_mismatch: int
    schedule_errors: int
    semantics_ok: bool             #: rows lost iff the point pre-dates fsync
    max_recovery_wall_s: float


@dataclass
class FailoverReport:
    """Aggregate of one serving mode's primary-kill schedules.

    ``query_layer_failovers`` is the summed ``shard.replica.failovers``
    in thread mode; process mode records ``-1`` because a SIGKILLed
    worker may heal below the query layer (the pool warm-promotes on
    handle acquisition) and the per-layer split is scheduling-dependent.
    """

    mode: str
    schedules: int
    kills: int
    promote_kills_surfaced: int
    promotions: int
    cold_respawns: int
    query_layer_failovers: int
    queries_ok: int
    rows_compared: int
    silent_wrong: int
    schedule_errors: int
    wall_s: float


def run_throughput(config: IngestBenchConfig, directory) -> IngestThroughputReport:
    """Stream the full dataset through the WAL pipeline, then recover."""
    from ..core.cube import RankingCube
    from ..core.executor import RankingCubeExecutor
    from ..ingest import StreamIngestor
    from ..obs.metrics import MetricsRegistry
    from ..persist import Workspace
    from ..relational.database import Database

    rng = random.Random(config.seed)
    schema = _schema()
    base = _rows(rng, config.num_base)
    stream = _rows(rng, config.num_tuples)
    queries = _queries(rng, config.num_queries)

    directory = Path(directory)
    snapshot_path = directory / "ingest-bench.snapshot"
    wal_path = directory / "ingest-bench.wal"

    db = Database(buffer_capacity=config.buffer_capacity)
    table = db.load_table("R", schema, base)
    cube = RankingCube.build(table, block_size=config.block_size)
    workspace = Workspace(db=db, cubes={"R": cube})
    workspace.save(snapshot_path)

    registry = MetricsRegistry()
    ingestor = StreamIngestor(
        workspace,
        "R",
        wal_path,
        compact_threshold=config.compact_threshold,
        registry=registry,
    )
    ingestor.snapshot_path = snapshot_path
    batches = [
        stream[i : i + config.batch_rows]
        for i in range(0, len(stream), config.batch_rows)
    ]
    started = time.perf_counter()
    for batch in batches:
        ingestor.append(batch)
    wall = time.perf_counter() - started
    ingestor.close()
    wal_bytes = wal_path.stat().st_size

    # the crash-shaped restart: nothing survives but the snapshot + WAL
    recovered = StreamIngestor.recover(snapshot_path, "R", wal_path)
    full_rows = base + stream
    executor = RankingCubeExecutor(recovered.cube, recovered.table)
    queries_ok = silent_wrong = 0
    for query in queries:
        expected = brute_force_scores(schema, full_rows, query)
        recovered.workspace.db.cold_cache()
        if _scores_match(executor.execute(query).rows, expected):
            queries_ok += 1
        else:
            silent_wrong += 1
    if recovered.table.num_rows != len(full_rows):
        silent_wrong += 1

    # checkpoint, then prove replay work is bounded by it
    recovered.checkpoint(snapshot_path)
    recovered.close()
    second = StreamIngestor.recover(snapshot_path, "R", wal_path)
    replayed_after_checkpoint = second.recovered_rows
    second.close()

    return IngestThroughputReport(
        rows_appended=len(stream),
        batches=len(batches),
        compactions=int(registry.value("ingest.compactions")),
        wal_bytes=wal_bytes,
        wall_s=wall,
        tuples_per_s=len(stream) / wall if wall > 0 else 0.0,
        replayed_rows=recovered.recovered_rows,
        repaired_tail_bytes=recovered.repaired_tail_bytes,
        recovery_wall_s=recovered.recovery_wall_s,
        replayed_after_checkpoint=replayed_after_checkpoint,
        queries_ok=queries_ok,
        silent_wrong=silent_wrong,
    )


def run_kill_matrix(config: IngestBenchConfig, fault_point: str) -> IngestKillReport:
    """Sweep ``kill_seeds`` crash schedules at one ingest fault point."""
    report = IngestKillReport(
        fault_point=fault_point,
        schedules=config.kill_seeds,
        killed=0,
        batches_durable=0,
        replayed_rows=0,
        rows_lost=0,
        torn_tail_schedules=0,
        queries_ok=0,
        silent_wrong=0,
        state_mismatch=0,
        schedule_errors=0,
        semantics_ok=True,
        max_recovery_wall_s=0.0,
    )
    for seed in range(config.kill_seeds):
        try:
            outcome = run_ingest_schedule(seed, fault_point=fault_point)
        except HarnessError:
            report.schedule_errors += 1
            continue
        report.killed += int(outcome.killed)
        report.batches_durable += outcome.batches_durable
        report.replayed_rows += outcome.replayed_rows
        report.rows_lost += outcome.rows_lost
        report.torn_tail_schedules += int(outcome.torn_tail_bytes > 0)
        report.queries_ok += outcome.queries_ok
        report.silent_wrong += outcome.silent_wrong
        report.state_mismatch += outcome.state_mismatch
        report.max_recovery_wall_s = max(
            report.max_recovery_wall_s, outcome.recovery_wall_s
        )
        # write-ahead ordering: a pre-fsync kill must lose the batch, a
        # post-fsync kill must not
        durable_point = fault_point != "wal-append"
        if durable_point and outcome.rows_lost != 0:
            report.semantics_ok = False
        if not durable_point and outcome.rows_lost == 0:
            report.semantics_ok = False
    return report


def run_failover(config: IngestBenchConfig, mode: str) -> FailoverReport:
    """Sweep the primary-kill schedules for one serving mode."""
    points = config.kill_point_list(mode)
    seeds = config.seed_list(mode)
    report = FailoverReport(
        mode=mode,
        schedules=len(points) * len(seeds),
        kills=0,
        promote_kills_surfaced=0,
        promotions=0,
        cold_respawns=0,
        query_layer_failovers=0,
        queries_ok=0,
        rows_compared=0,
        silent_wrong=0,
        schedule_errors=0,
        wall_s=0.0,
    )
    started = time.perf_counter()
    for point in points:
        for seed in seeds:
            try:
                outcome = run_failover_schedule(seed, kill_point=point, mode=mode)
            except HarnessError as exc:
                report.schedule_errors += 1
                print(f"ingest bench: failover schedule failed: {exc}")
                continue
            report.kills += int(outcome.killed)
            report.promote_kills_surfaced += int(outcome.kill_surfaced)
            report.promotions += outcome.promotions
            report.cold_respawns += outcome.cold_respawns
            report.query_layer_failovers += outcome.failovers
            report.queries_ok += outcome.queries_ok
            report.rows_compared += outcome.rows_compared
            report.silent_wrong += outcome.silent_wrong
    report.wall_s = time.perf_counter() - started
    if mode == "process":
        # a kill can heal at the query layer or below it depending on
        # when the dead pipe is noticed — the split is not deterministic
        report.query_layer_failovers = -1
    return report


def run_ingest_bench(config: IngestBenchConfig) -> dict:
    """Run every scenario; return the JSON payload with its gates."""
    import tempfile

    scenarios: dict[str, object] = {}
    with tempfile.TemporaryDirectory(prefix="repro-ingest-bench-") as tmp:
        throughput = run_throughput(config, tmp)
    scenarios["ingest_throughput"] = throughput

    kill_reports = []
    for point in config.fault_point_list():
        kill = run_kill_matrix(config, point)
        scenarios[f"ingest_kill_{point.replace('-', '_')}"] = kill
        kill_reports.append(kill)

    failover_reports = []
    for mode in ("thread", "process"):
        failover = run_failover(config, mode)
        scenarios[f"failover_{mode}"] = failover
        failover_reports.append(failover)

    recovery_replay_correct = (
        throughput.silent_wrong == 0
        and throughput.replayed_rows == throughput.rows_appended
        and throughput.repaired_tail_bytes == 0
        and throughput.replayed_after_checkpoint == 0
        and all(
            k.schedule_errors == 0
            and k.killed == k.schedules
            and k.silent_wrong == 0
            and k.state_mismatch == 0
            and k.semantics_ok
            for k in kill_reports
        )
    )
    failover_zero_wrong_answers = all(
        f.schedule_errors == 0
        and f.kills == f.schedules
        and f.silent_wrong == 0
        and f.promotions == f.schedules
        and f.cold_respawns == 0
        for f in failover_reports
    )
    recovery_time_bounded = (
        throughput.recovery_wall_s <= config.recovery_budget_s
        and all(
            k.max_recovery_wall_s <= config.recovery_budget_s
            for k in kill_reports
        )
    )

    return {
        "benchmark": "ingest",
        "config": asdict(config),
        "scenarios": {name: asdict(r) for name, r in scenarios.items()},
        "recovery_replay_correct": recovery_replay_correct,
        "failover_zero_wrong_answers": failover_zero_wrong_answers,
        "recovery_time_bounded": recovery_time_bounded,
        "equivalent_answers": recovery_replay_correct
        and failover_zero_wrong_answers,
    }


def format_ingest_table(payload: dict) -> str:
    """Fixed-width human-readable view of the JSON payload."""
    lines = ["ingest: WAL-backed streaming ingestion and shard failover"]
    t = payload["scenarios"]["ingest_throughput"]
    lines.append(
        f"  throughput: {t['rows_appended']} rows in {t['batches']} batches, "
        f"{t['tuples_per_s']:.0f} rows/s, {t['compactions']} compaction(s), "
        f"WAL {t['wal_bytes']} B"
    )
    lines.append(
        f"  recovery:   {t['replayed_rows']} rows replayed in "
        f"{t['recovery_wall_s'] * 1000.0:.1f} ms; after checkpoint "
        f"{t['replayed_after_checkpoint']} rows"
    )
    headers = ("kill point", "runs", "killed", "replayed", "lost", "torn", "wrong")
    lines.append("".join(h.rjust(12) for h in headers))
    lines.append("-" * (12 * len(headers)))
    for name, s in payload["scenarios"].items():
        if not name.startswith("ingest_kill_"):
            continue
        lines.append(
            s["fault_point"].rjust(12)
            + f"{s['schedules']:12d}"
            + f"{s['killed']:12d}"
            + f"{s['replayed_rows']:12d}"
            + f"{s['rows_lost']:12d}"
            + f"{s['torn_tail_schedules']:12d}"
            + f"{s['silent_wrong'] + s['state_mismatch']:12d}"
        )
    for mode in ("thread", "process"):
        s = payload["scenarios"][f"failover_{mode}"]
        lines.append(
            f"  failover ({mode}): {s['kills']}/{s['schedules']} kills healed, "
            f"{s['promotions']} promotion(s), {s['cold_respawns']} cold respawn(s), "
            f"{s['rows_compared']} rows compared, {s['silent_wrong']} wrong"
        )
    lines.append(
        f"recovery replay correct: {payload['recovery_replay_correct']}; "
        f"failover zero wrong answers: {payload['failover_zero_wrong_answers']}; "
        f"recovery time bounded: {payload['recovery_time_bounded']}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench ingest",
        description="Benchmark durable WAL ingestion, crash recovery and failover.",
    )
    parser.add_argument("--smoke", action="store_true", help="fast fixed-seed CI mode")
    parser.add_argument("--tuples", type=int, default=None)
    parser.add_argument("--kill-seeds", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--out", default="BENCH_ingest.json", help="JSON output path")
    args = parser.parse_args(argv)

    config = IngestBenchConfig.smoke() if args.smoke else IngestBenchConfig()
    overrides = {}
    if args.tuples is not None:
        overrides["num_tuples"] = args.tuples
    if args.kill_seeds is not None:
        overrides["kill_seeds"] = args.kill_seeds
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        config = IngestBenchConfig(**{**asdict(config), **overrides})

    payload = run_ingest_bench(config)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(format_ingest_table(payload))
    print(f"wrote {args.out}")
    gates = (
        payload["recovery_replay_correct"],
        payload["failover_zero_wrong_answers"],
        payload["recovery_time_bounded"],
    )
    return 0 if all(gates) else 1
