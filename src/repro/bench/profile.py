"""Span-tree profiling CLI: ``python -m repro.bench profile``.

Builds a small synthetic cube, replays a fixed-seed query workload with
per-query tracing enabled, and prints:

* one fully rendered span tree per *distinct query shape* (so repeated
  selections don't flood the terminal),
* a per-span-name aggregate (count, total time, mean/total of every
  counter folded into spans of that name),
* the registry snapshot (every ``storage.*`` / ``serve.*`` series the
  run produced), optionally as JSON or line protocol.

This is the human face of :mod:`repro.obs`: where ``python -m
repro.bench serve`` answers *how fast*, ``profile`` answers *where the
I/O and candidate work went* — per phase (plan → cuboid selection →
block frontier → delta merge) and per attribution class (cold fetch vs
query-buffer hit vs shared-cache hit).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import OrderedDict

from ..core.cube import RankingCube
from ..core.executor import ExecutorTrace, RankingCubeExecutor
from ..obs.export import (
    registry_to_dict,
    render_span_tree,
    span_to_dict,
    to_line_protocol,
)
from ..obs.tracing import Tracer
from ..relational.database import Database
from ..workloads.queries import QueryGenerator, QuerySpec
from ..workloads.synthetic import SyntheticSpec, generate


def run_profile(
    num_tuples: int = 5_000,
    num_queries: int = 12,
    k: int = 10,
    num_selections: int = 2,
    seed: int = 17,
    block_size: int = 30,
    cold: bool = True,
):
    """Execute a traced workload; return ``(tracer, registry, results)``.

    One :class:`~repro.obs.tracing.Tracer` carries every query so the
    report can aggregate across the stream; each query is still its own
    root span.  ``cold`` drops the buffer pool before each query so the
    retrieve spans show real device traffic instead of all-hits.
    """
    dataset = generate(
        SyntheticSpec(
            num_selection_dims=3,
            num_ranking_dims=2,
            num_tuples=num_tuples,
            cardinality=8,
            selection_distribution="zipf",
            seed=seed,
        )
    )
    db = Database()
    table = dataset.load_into(db)
    cube = RankingCube.build(table, block_size=block_size)
    executor = RankingCubeExecutor(cube, table)
    queries = QueryGenerator(
        table.schema, QuerySpec(k=k, num_selections=num_selections, seed=seed)
    ).batch(num_queries)

    tracer = Tracer(db.pool.registry)
    results = []
    for query in queries:
        if cold:
            db.cold_cache()
        trace = ExecutorTrace()
        results.append(executor.execute(query, trace=trace, tracer=tracer))
    return tracer, db.pool.registry, results


def _span_signature(span) -> tuple:
    """Shape of a query span (selection dims + k), for dedup in the report."""
    attrs = span.attributes
    selections = attrs.get("selections")
    sel_dims = tuple(sorted(selections)) if isinstance(selections, dict) else ()
    return (sel_dims, attrs.get("k"), attrs.get("ranking"))


def aggregate_spans(roots) -> "OrderedDict[str, dict]":
    """Per-span-name totals across every span tree.

    Returns ``{name: {count, total_s, counters: {name: total}}}`` in
    first-seen (i.e. execution) order.
    """
    agg: OrderedDict[str, dict] = OrderedDict()
    for root in roots:
        for span in root.walk():
            bucket = agg.setdefault(
                span.name, {"count": 0, "total_s": 0.0, "counters": {}}
            )
            bucket["count"] += 1
            bucket["total_s"] += span.duration_s or 0.0
            for counter, value in span.counters.items():
                bucket["counters"][counter] = (
                    bucket["counters"].get(counter, 0) + value
                )
    return agg


def format_aggregate(agg: "OrderedDict[str, dict]") -> str:
    lines = [
        "per-span aggregate over the stream",
        f"{'span':>16}{'count':>8}{'total_ms':>12}  counters (totals)",
        "-" * 72,
    ]
    for name, bucket in agg.items():
        counters = "  ".join(
            f"{key}={value}"
            for key, value in sorted(bucket["counters"].items())
            if value
        )
        lines.append(
            f"{name:>16}{bucket['count']:>8}"
            f"{bucket['total_s'] * 1000.0:>12.2f}  {counters}"
        )
    return "\n".join(lines)


def format_profile_report(tracer: Tracer, registry, max_trees: int = 3) -> str:
    """The full human-readable report (distinct trees + aggregate + registry)."""
    sections = []
    seen: set[tuple] = set()
    shown = 0
    for root in tracer.roots:
        signature = _span_signature(root)
        if signature in seen:
            continue
        seen.add(signature)
        if shown < max_trees:
            sections.append(render_span_tree(root))
            shown += 1
    remaining = len(seen) - shown
    if remaining > 0:
        sections.append(f"... {remaining} more distinct query shape(s) elided")
    sections.append(format_aggregate(aggregate_spans(tracer.roots)))
    snapshot = registry_to_dict(registry)
    lines = ["registry counters"]
    for series, value in sorted(snapshot["counters"].items()):
        lines.append(f"  {series} = {value}")
    sections.append("\n".join(lines))
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench profile",
        description="Trace a fixed-seed workload and print where the work went.",
    )
    parser.add_argument("--tuples", type=int, default=5_000)
    parser.add_argument("--queries", type=int, default=12)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--selections", type=int, default=2)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--warm", action="store_true", help="keep the buffer pool warm between queries"
    )
    parser.add_argument(
        "--trees", type=int, default=3, help="max distinct span trees to render"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "lines"),
        default="text",
        help="text report, JSON (spans + registry), or line protocol (registry)",
    )
    args = parser.parse_args(argv)

    tracer, registry, _results = run_profile(
        num_tuples=args.tuples,
        num_queries=args.queries,
        k=args.k,
        num_selections=args.selections,
        seed=args.seed,
        cold=not args.warm,
    )
    if args.format == "json":
        payload = {
            "spans": [span_to_dict(root) for root in tracer.roots],
            "registry": registry_to_dict(registry),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "lines":
        print(to_line_protocol(registry))
    else:
        print(format_profile_report(tracer, registry, max_trees=args.trees))
    return 0


if __name__ == "__main__":
    sys.exit(main())
