"""Sharded-serving benchmark: ``python -m repro.bench shard``.

Replays one skewed query stream against an unsharded baseline and
against 1/2/4/8-way sharded deployments (same rows, same global tids),
measuring what horizontal sharding buys under the scatter-gather merge:

* **blocks/query** — logical block fetches summed over consulted shards;
* **device reads/query** — physical page reads, total and on the *hot*
  shard (the per-query maximum over shards: the number that bounds
  per-machine I/O pressure in a real deployment);
* **merge work** — rounds and shard steps of the global frontier loop,
  plus the candidates a naive gather (full local top-k per shard, no
  early stop) would have examined — the gap is the early-stop saving.

Each shard count runs in both serving modes (``modes`` config field /
``--mode`` flag): ``shards_N`` scenarios step shards on threads inside
one interpreter, ``proc_N`` scenarios run the process-per-shard tier
(each shard's stack in its own worker process, length-prefixed pickle
protocol).  Identity gates are unconditional — every scenario, either
mode, must return byte-identical answers (``shard_identical`` /
``process_identical``, exact gates in ``bench check``).  The wall-clock
gates ``process_faster_than_thread`` and ``sharded_beats_unsharded``
bind only on hosts with at least two usable cores (mirroring
``BENCH_build``'s ``parallel_faster``): on one core a process per shard
cannot beat anything, so single-core runs record the measured numbers
but force the gates to pass.

Every scenario replays serially with cold caches before each query (the
paper's measurement regime).  Results land in ``BENCH_shard.json``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass

from ..core.cube import RankingCube
from ..core.executor import RankingCubeExecutor
from ..relational.database import Database
from ..serve import ShardedQueryService
from ..shard import build_sharded
from .serve import ServeBenchConfig, _percentile, build_query_stream
from ..workloads.synthetic import SyntheticSpec, generate


@dataclass(frozen=True)
class ShardBenchConfig:
    """Knobs of one sharded-serving benchmark run (fixed seed).

    ``shard_counts`` and ``modes`` are comma-joined strings (not
    tuples/lists) so the config survives a JSON round-trip
    byte-identically — ``bench check`` compares the embedded config
    exactly.  ``enforce_speedup`` arms the wall-clock gates
    (``process_faster_than_thread`` / ``sharded_beats_unsharded``); even
    armed they bind only on hosts with two or more usable cores, and the
    smoke config disarms them because worker-process overheads dominate
    at toy sizes.  The identity gates bind always, everywhere.
    """

    num_tuples: int = 20_000
    num_queries: int = 200
    distinct_queries: int = 30
    popularity_skew: float = 1.1
    workers: int = 4
    shard_counts: str = "1,2,4,8"
    modes: str = "thread,process"
    enforce_speedup: bool = True
    cardinality: int = 8
    num_selection_dims: int = 3
    num_ranking_dims: int = 2
    k: int = 10
    block_size: int = 30
    buffer_capacity: int = 4096
    seed: int = 23

    @classmethod
    def smoke(cls) -> "ShardBenchConfig":
        """Fast fixed-seed configuration for CI (a few seconds)."""
        return cls(
            num_tuples=2_000,
            num_queries=40,
            distinct_queries=8,
            workers=2,
            shard_counts="1,2,4",
            enforce_speedup=False,
        )

    def counts(self) -> list[int]:
        return [int(c) for c in self.shard_counts.split(",") if c]

    def mode_list(self) -> list[str]:
        modes = [m.strip() for m in self.modes.split(",") if m.strip()]
        for mode in modes:
            if mode not in ("thread", "process"):
                raise ValueError(f"unknown serving mode {mode!r}")
        return modes


def _usable_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


@dataclass
class ShardScenarioReport:
    """One deployment's aggregate numbers over the replayed stream."""

    num_shards: int
    mode: str
    queries: int
    wall_s: float
    throughput_qps: float
    p50_ms: float
    p95_ms: float
    blocks_per_query: float
    device_reads_per_query: float
    hot_shard_reads_per_query: float
    candidates_per_query: float
    naive_candidates_per_query: float
    merge_rounds_per_query: float
    shard_steps_per_query: float


def _dataset(config: ShardBenchConfig):
    return generate(
        SyntheticSpec(
            num_selection_dims=config.num_selection_dims,
            num_ranking_dims=config.num_ranking_dims,
            num_tuples=config.num_tuples,
            cardinality=config.cardinality,
            selection_distribution="zipf",
            seed=config.seed,
        )
    )


def _stream(config: ShardBenchConfig, schema):
    serve_config = ServeBenchConfig(
        num_queries=config.num_queries,
        distinct_queries=config.distinct_queries,
        popularity_skew=config.popularity_skew,
        k=config.k,
        seed=config.seed,
    )
    return build_query_stream(serve_config, schema)


def _signature(results) -> list[list[tuple[int, float]]]:
    return [[(row.tid, round(row.score, 9)) for row in r.rows] for r in results]


def run_unsharded(config: ShardBenchConfig, dataset, stream):
    """Serial cold-cache baseline on one device (the paper's regime)."""
    db = Database(buffer_capacity=config.buffer_capacity)
    table = dataset.load_into(db)
    cube = RankingCube.build(table, block_size=config.block_size)
    executor = RankingCubeExecutor(cube, table)
    latencies, results = [], []
    blocks = candidates = 0
    db.cold_cache()
    db.device.reset_stats()
    started = time.perf_counter()
    for query in stream:
        db.cold_cache()
        t0 = time.perf_counter()
        result = executor.execute(query)
        latencies.append(time.perf_counter() - t0)
        blocks += result.blocks_accessed
        candidates += result.candidates_examined
        results.append(result)
    wall = time.perf_counter() - started
    count = max(1, len(stream))
    reads = db.device.stats.reads
    report = ShardScenarioReport(
        num_shards=1,
        mode="serial",
        queries=len(stream),
        wall_s=wall,
        throughput_qps=len(stream) / wall if wall > 0 else 0.0,
        p50_ms=_percentile(latencies, 0.50) * 1000.0,
        p95_ms=_percentile(latencies, 0.95) * 1000.0,
        blocks_per_query=blocks / count,
        device_reads_per_query=reads / count,
        hot_shard_reads_per_query=reads / count,
        candidates_per_query=candidates / count,
        naive_candidates_per_query=candidates / count,
        merge_rounds_per_query=0.0,
        shard_steps_per_query=0.0,
    )
    return report, _signature(results)


def _naive_candidates(config: ShardBenchConfig, cube, stream) -> int:
    """What a naive gather would cost: every consulted shard computes its
    full local top-k (untimed — reporting only).  Depends only on the
    deployment layout, not on the serving mode."""
    naive = 0
    for query in stream:
        for shard_id in cube.shard_map.shards_for_query(query.selections):
            shard = cube.shards[shard_id]
            if shard.cube is None:
                continue
            local = RankingCubeExecutor(shard.cube, shard.table).execute(query)
            naive += local.candidates_examined
    return naive


def run_sharded(
    config: ShardBenchConfig,
    dataset,
    stream,
    num_shards: int,
    mode: str = "thread",
    naive: int | None = None,
):
    """Serial cold-cache replay through the scatter-gather service.

    ``mode="process"`` serves the same deployment through the
    process-per-shard tier; cold-cache eviction then goes through the
    service (the workers' buffer pools are not reachable from here).
    Returns ``(report, signatures, naive)`` so callers benchmarking both
    modes can reuse the (mode-independent) naive-gather pass.
    """
    cube = build_sharded(
        dataset.schema,
        dataset.rows,
        num_shards,
        block_size=config.block_size,
        buffer_capacity=config.buffer_capacity,
    )
    latencies, results = [], []
    hot_reads = 0
    with ShardedQueryService(
        cube, workers=config.workers, share_caches=False, mode=mode
    ) as service:
        started = time.perf_counter()
        for query in stream:
            service.cold_cache()
            t0 = time.perf_counter()
            result = service.submit(query).result()
            latencies.append(time.perf_counter() - t0)
            hot_reads += max(
                (io.device_reads for io in (result.shard_io or {}).values()),
                default=0,
            )
            results.append(result)
        wall = time.perf_counter() - started
        stats = service.stats
    if naive is None:
        naive = _naive_candidates(config, cube, stream)
    count = max(1, len(stream))
    report = ShardScenarioReport(
        num_shards=num_shards,
        mode=mode,
        queries=len(stream),
        wall_s=wall,
        throughput_qps=len(stream) / wall if wall > 0 else 0.0,
        p50_ms=_percentile(latencies, 0.50) * 1000.0,
        p95_ms=_percentile(latencies, 0.95) * 1000.0,
        blocks_per_query=stats.total("blocks_accessed") / count,
        device_reads_per_query=(
            sum(
                io.device_reads
                for r in results
                for io in (r.shard_io or {}).values()
            )
            / count
        ),
        hot_shard_reads_per_query=hot_reads / count,
        candidates_per_query=stats.total("candidates_examined") / count,
        naive_candidates_per_query=naive / count,
        merge_rounds_per_query=stats.total("merge_rounds") / count,
        shard_steps_per_query=stats.total("shard_steps") / count,
    )
    return report, _signature(results), naive


def run_shard_bench(config: ShardBenchConfig) -> dict:
    """Run every deployment over one shared stream; return JSON payload."""
    dataset = _dataset(config)
    stream = _stream(config, dataset.schema)
    modes = config.mode_list()

    scenarios: dict[str, ShardScenarioReport] = {}
    signatures: dict[str, list] = {}
    scenarios["unsharded"], signatures["unsharded"] = run_unsharded(
        config, dataset, stream
    )
    for num_shards in config.counts():
        naive = None
        if "thread" in modes:
            name = f"shards_{num_shards}"
            scenarios[name], signatures[name], naive = run_sharded(
                config, dataset, stream, num_shards, mode="thread"
            )
        if "process" in modes:
            name = f"proc_{num_shards}"
            scenarios[name], signatures[name], naive = run_sharded(
                config, dataset, stream, num_shards, mode="process", naive=naive
            )

    reference = signatures["unsharded"]
    shard_identical = all(sig == reference for sig in signatures.values())
    process_identical = all(
        signatures[name] == reference
        for name in signatures
        if name.startswith("proc_")
    )
    baseline = scenarios["unsharded"]
    thread_multi = [
        r
        for name, r in scenarios.items()
        if name.startswith("shards_") and r.num_shards > 1
    ]
    proc_multi = [
        r
        for name, r in scenarios.items()
        if name.startswith("proc_") and r.num_shards > 1
    ]
    hot_shard_below_baseline = bool(thread_multi) and all(
        r.hot_shard_reads_per_query < baseline.device_reads_per_query
        for r in thread_multi
    )
    early_stop_engaged = bool(thread_multi) and all(
        r.candidates_per_query < r.naive_candidates_per_query
        for r in thread_multi
    )

    # Wall-clock gates: meaningful only with real parallel hardware and
    # both modes measured — otherwise recorded but forced to pass, like
    # BENCH_build's parallel_faster.
    cores = _usable_cores()
    enforced = config.enforce_speedup and cores >= 2 and bool(proc_multi)
    thread_by_shards = {r.num_shards: r for r in thread_multi}
    process_faster_than_thread = (
        all(
            r.throughput_qps > thread_by_shards[r.num_shards].throughput_qps
            for r in proc_multi
            if r.num_shards in thread_by_shards
        )
        if enforced
        else True
    )
    sharded_beats_unsharded = (
        any(r.throughput_qps > baseline.throughput_qps for r in proc_multi)
        if enforced
        else True
    )

    return {
        "benchmark": "shard",
        "config": asdict(config),
        "scenarios": {name: asdict(r) for name, r in scenarios.items()},
        "cpu_cores": cores,
        "speedup_enforced": enforced,
        "shard_identical": shard_identical,
        "process_identical": process_identical,
        "equivalent_answers": shard_identical,
        "hot_shard_below_baseline": hot_shard_below_baseline,
        "early_stop_engaged": early_stop_engaged,
        "process_faster_than_thread": process_faster_than_thread,
        "sharded_beats_unsharded": sharded_beats_unsharded,
    }


def format_shard_table(payload: dict) -> str:
    """Fixed-width human-readable view of the JSON payload."""
    headers = (
        "scenario", "qps", "p50_ms", "blk/q", "reads/q", "hot/q", "steps/q",
    )
    lines = [
        "shard: scatter-gather serving vs the unsharded baseline",
        "".join(h.rjust(12) for h in headers),
        "-" * (12 * len(headers)),
    ]
    for name, s in payload["scenarios"].items():
        lines.append(
            name.rjust(12)
            + f"{s['throughput_qps']:12.1f}"
            + f"{s['p50_ms']:12.3f}"
            + f"{s['blocks_per_query']:12.2f}"
            + f"{s['device_reads_per_query']:12.2f}"
            + f"{s['hot_shard_reads_per_query']:12.2f}"
            + f"{s['shard_steps_per_query']:12.2f}"
        )
    lines.append(
        f"identical answers: {payload['shard_identical']}; "
        f"hot shard below unsharded baseline: "
        f"{payload['hot_shard_below_baseline']}; "
        f"early-stop merge engaged: {payload['early_stop_engaged']}"
    )
    lines.append(
        f"process identical: {payload['process_identical']}; "
        f"process beats thread: {payload['process_faster_than_thread']}; "
        f"sharded beats unsharded: {payload['sharded_beats_unsharded']} "
        f"(wall-clock gates "
        f"{'armed' if payload['speedup_enforced'] else 'off'} on "
        f"{payload['cpu_cores']} core(s))"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench shard",
        description="Compare sharded scatter-gather serving against one device.",
    )
    parser.add_argument("--smoke", action="store_true", help="fast fixed-seed CI mode")
    parser.add_argument("--tuples", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--shards", default=None, help="comma list, e.g. 1,2,4,8")
    parser.add_argument(
        "--mode",
        choices=("thread", "process", "both"),
        default=None,
        help="serving mode(s) to benchmark (default: both)",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--out", default="BENCH_shard.json", help="JSON output path")
    args = parser.parse_args(argv)

    config = ShardBenchConfig.smoke() if args.smoke else ShardBenchConfig()
    overrides = {}
    if args.tuples is not None:
        overrides["num_tuples"] = args.tuples
    if args.queries is not None:
        overrides["num_queries"] = args.queries
    if args.shards is not None:
        overrides["shard_counts"] = args.shards
    if args.mode is not None:
        overrides["modes"] = (
            "thread,process" if args.mode == "both" else args.mode
        )
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        config = ShardBenchConfig(**{**asdict(config), **overrides})

    payload = run_shard_bench(config)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(format_shard_table(payload))
    print(f"wrote {args.out}")
    if not payload["shard_identical"] or not payload["process_identical"]:
        return 1
    if not payload["process_faster_than_thread"]:
        return 1
    if not payload["sharded_beats_unsharded"]:
        return 1
    return 0
