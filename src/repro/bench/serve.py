"""Multi-tenant serving benchmark: ``python -m repro.bench serve``.

Replays a synthetic query stream with *skewed selection popularity* (a
few popular tenant selections dominate, a long tail follows — the usual
shape of production traffic) through three configurations:

* ``serial_cold``   — the paper's measurement regime: one query at a
  time, buffer pool dropped before each query, no cross-query state.
* ``serial_warm``   — one query at a time, buffer pool kept warm, still
  no cross-query caches (isolates what page caching alone buys).
* ``serve_unshared``— the :class:`~repro.serve.QueryService` worker pool
  with shared caches disabled (isolates concurrency from caching).
* ``serve_shared``  — the full serving layer: worker pool + shared
  pseudo-block cache + bound memo.

Every configuration replays the *same* stream against a freshly built
cube on a fresh device, and the benchmark asserts that all of them return
identical answers before reporting.  Results land in ``BENCH_serve.json``
with throughput, p50/p95 latency, block I/O per query, and per-layer
cache hit rates, so later PRs have a perf trajectory to compare against.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import asdict, dataclass

from ..core.cube import RankingCube
from ..core.executor import RankingCubeExecutor
from ..relational.database import Database
from ..serve import QueryService
from ..workloads.queries import QueryGenerator, QuerySpec
from ..workloads.synthetic import SyntheticSpec, generate


@dataclass(frozen=True)
class ServeBenchConfig:
    """Knobs of one serving-benchmark run (fixed seed => fixed stream)."""

    num_tuples: int = 20_000
    num_queries: int = 300
    distinct_queries: int = 30
    popularity_skew: float = 1.1
    workers: int = 4
    cardinality: int = 8
    num_selection_dims: int = 3
    num_ranking_dims: int = 2
    k: int = 10
    block_size: int = 30
    buffer_capacity: int = 4096
    seed: int = 17

    @classmethod
    def smoke(cls) -> "ServeBenchConfig":
        """Fast fixed-seed configuration for CI (a few seconds)."""
        return cls(num_tuples=2_000, num_queries=60, distinct_queries=8, workers=2)


def build_query_stream(config: ServeBenchConfig, schema) -> list:
    """A stream of ``num_queries`` drawn from a zipf-popular query pool.

    Tenants reuse a finite set of (selection, ranking-function) templates;
    the zipf draw over the pool is what gives the shared caches something
    to amortize — exactly the skewed selection popularity of multi-tenant
    traffic.
    """
    pool = QueryGenerator(
        schema,
        QuerySpec(k=config.k, num_selections=2, seed=config.seed),
    ).batch(config.distinct_queries)
    ranks = range(1, len(pool) + 1)
    weights = [r ** (-config.popularity_skew) for r in ranks]
    rng = random.Random(config.seed + 1)
    return rng.choices(pool, weights=weights, k=config.num_queries)


def _build_environment(config: ServeBenchConfig):
    """Fresh device + table + cube (per scenario, for apples-to-apples)."""
    dataset = generate(
        SyntheticSpec(
            num_selection_dims=config.num_selection_dims,
            num_ranking_dims=config.num_ranking_dims,
            num_tuples=config.num_tuples,
            cardinality=config.cardinality,
            selection_distribution="zipf",
            seed=config.seed,
        )
    )
    db = Database(buffer_capacity=config.buffer_capacity)
    table = dataset.load_into(db)
    cube = RankingCube.build(table, block_size=config.block_size)
    return db, table, cube


@dataclass
class ScenarioReport:
    """One configuration's aggregate numbers over the replayed stream."""

    queries: int
    wall_s: float
    throughput_qps: float
    p50_ms: float
    p95_ms: float
    blocks_per_query: float
    device_reads_per_query: float
    pseudo_cache_hit_rate: float
    bound_memo_hit_rate: float
    shared_cache_hits_per_query: float
    query_buffer_hits_per_query: float
    cold_fetches_per_query: float


def _percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


def _report(
    queries: int,
    wall_s: float,
    latencies_s: list[float],
    total_blocks: int,
    device_reads: int,
    *,
    pseudo_hit_rate: float = 0.0,
    memo_hit_rate: float = 0.0,
    shared_hits: int = 0,
    buffer_hits: int = 0,
    cold_fetches: int = 0,
) -> ScenarioReport:
    count = max(1, queries)
    return ScenarioReport(
        queries=queries,
        wall_s=wall_s,
        throughput_qps=queries / wall_s if wall_s > 0 else 0.0,
        p50_ms=_percentile(latencies_s, 0.50) * 1000.0,
        p95_ms=_percentile(latencies_s, 0.95) * 1000.0,
        blocks_per_query=total_blocks / count,
        device_reads_per_query=device_reads / count,
        pseudo_cache_hit_rate=pseudo_hit_rate,
        bound_memo_hit_rate=memo_hit_rate,
        shared_cache_hits_per_query=shared_hits / count,
        query_buffer_hits_per_query=buffer_hits / count,
        cold_fetches_per_query=cold_fetches / count,
    )


def _answers_signature(results) -> list[list[tuple[int, float]]]:
    return [[(row.tid, round(row.score, 9)) for row in r.rows] for r in results]


def run_serial(config: ServeBenchConfig, stream, cold: bool):
    """Serial executor; ``cold`` drops the buffer pool before each query."""
    db, table, cube = _build_environment(config)
    executor = RankingCubeExecutor(cube, table)
    latencies: list[float] = []
    results = []
    total_blocks = 0
    db.cold_cache()
    db.device.reset_stats()
    started = time.perf_counter()
    for query in stream:
        if cold:
            db.cold_cache()
        t0 = time.perf_counter()
        result = executor.execute(query)
        latencies.append(time.perf_counter() - t0)
        total_blocks += result.blocks_accessed
        results.append(result)
    wall = time.perf_counter() - started
    report = _report(
        len(stream), wall, latencies, total_blocks, db.device.stats.reads
    )
    return report, _answers_signature(results)


def run_service(config: ServeBenchConfig, stream, share_caches: bool):
    """The concurrent serving layer, with or without the shared caches."""
    db, table, cube = _build_environment(config)
    db.cold_cache()
    db.device.reset_stats()
    with QueryService(
        cube, table, workers=config.workers, share_caches=share_caches
    ) as service:
        started = time.perf_counter()
        results = service.run_batch(stream)
        wall = time.perf_counter() - started
        stats = service.stats
        report = _report(
            stats.queries,
            wall,
            [r.latency_s for r in stats.records],
            stats.total("blocks_accessed"),
            db.device.stats.reads,
            pseudo_hit_rate=service.cache_hit_rate(),
            memo_hit_rate=(
                service.bound_memo.stats.hit_rate if service.bound_memo else 0.0
            ),
            shared_hits=stats.total("shared_cache_hits"),
            buffer_hits=stats.total("query_buffer_hits"),
            cold_fetches=stats.total("cold_fetches"),
        )
    return report, _answers_signature(results)


def run_serve_bench(config: ServeBenchConfig) -> dict:
    """Run every scenario over one shared stream; return the JSON payload."""
    _db, _table, cube = _build_environment(config)
    schema = _table.schema
    stream = build_query_stream(config, schema)

    scenarios = {}
    signatures = {}
    scenarios["serial_cold"], signatures["serial_cold"] = run_serial(
        config, stream, cold=True
    )
    scenarios["serial_warm"], signatures["serial_warm"] = run_serial(
        config, stream, cold=False
    )
    scenarios["serve_unshared"], signatures["serve_unshared"] = run_service(
        config, stream, share_caches=False
    )
    scenarios["serve_shared"], signatures["serve_shared"] = run_service(
        config, stream, share_caches=True
    )

    reference = signatures["serial_cold"]
    equivalent = all(sig == reference for sig in signatures.values())

    # "block reads" is the physical I/O the paper's structures optimize:
    # device page reads per query.  The logical fetch counter (pseudo +
    # base block requests the executor actually issued) is reported too,
    # so cache-layer savings stay attributable even when the buffer pool
    # absorbs all physical reads.
    cold_reads = scenarios["serial_cold"].device_reads_per_query
    warm_reads = scenarios["serve_shared"].device_reads_per_query
    reduction = cold_reads / warm_reads if warm_reads > 0 else float("inf")
    cold_blocks = scenarios["serial_cold"].blocks_per_query
    warm_blocks = scenarios["serve_shared"].blocks_per_query
    logical_reduction = cold_blocks / warm_blocks if warm_blocks > 0 else float("inf")

    return {
        "benchmark": "serve",
        "config": asdict(config),
        "grid_blocks": cube.grid.num_blocks,
        "scenarios": {name: asdict(report) for name, report in scenarios.items()},
        "block_read_reduction_vs_serial_cold": reduction,
        "logical_block_reduction_vs_serial_cold": logical_reduction,
        "meets_2x_target": reduction >= 2.0,
        "equivalent_answers": equivalent,
    }


def format_serve_table(payload: dict) -> str:
    """Fixed-width human-readable view of the JSON payload."""
    headers = (
        "scenario", "qps", "p50_ms", "p95_ms", "blk/q", "reads/q", "hit%",
    )
    lines = [
        "serve: concurrent query serving with cross-query caching",
        "".join(h.rjust(14) for h in headers),
        "-" * (14 * len(headers)),
    ]
    for name, s in payload["scenarios"].items():
        lines.append(
            name.rjust(14)
            + f"{s['throughput_qps']:14.1f}"
            + f"{s['p50_ms']:14.3f}"
            + f"{s['p95_ms']:14.3f}"
            + f"{s['blocks_per_query']:14.2f}"
            + f"{s['device_reads_per_query']:14.2f}"
            + f"{100.0 * s['pseudo_cache_hit_rate']:14.1f}"
        )
    reduction = payload["block_read_reduction_vs_serial_cold"]
    reduction_str = "inf" if reduction == float("inf") else f"{reduction:.2f}x"
    lines.append(
        f"device block-read reduction vs serial_cold: {reduction_str} "
        f"({'meets' if payload['meets_2x_target'] else 'MISSES'} 2x target); "
        f"logical fetch reduction: "
        f"{payload['logical_block_reduction_vs_serial_cold']:.2f}x; "
        f"answers equivalent: {payload['equivalent_answers']}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench serve",
        description="Replay a skewed multi-tenant stream through the serving layer.",
    )
    parser.add_argument("--smoke", action="store_true", help="fast fixed-seed CI mode")
    parser.add_argument("--tuples", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--out", default="BENCH_serve.json", help="JSON output path")
    args = parser.parse_args(argv)

    config = ServeBenchConfig.smoke() if args.smoke else ServeBenchConfig()
    overrides = {}
    if args.tuples is not None:
        overrides["num_tuples"] = args.tuples
    if args.queries is not None:
        overrides["num_queries"] = args.queries
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        config = ServeBenchConfig(**{**asdict(config), **overrides})

    payload = run_serve_bench(config)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(format_serve_table(payload))
    print(f"wrote {args.out}")
    if not payload["equivalent_answers"]:
        return 1
    return 0
