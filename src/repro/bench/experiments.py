"""One experiment per figure of the paper's Section 5.

Each ``figNN_*`` function regenerates the series behind that figure:
the same x axis, the same competing methods, averaged over a batch of
random queries per point.  Absolute values differ from the paper (our
substrate is a simulated device under Python, not SQL Server on a 2005
Pentium), but the *shapes* — who wins, rough factors, where crossovers
fall — are the reproduction targets, recorded in EXPERIMENTS.md.

Sizes are scaled down from the paper's 3M tuples (see DESIGN.md §5);
every function takes ``num_tuples`` so full-scale runs remain possible.
"""

from __future__ import annotations

from typing import Sequence

from ..core.cube import RankingCube
from ..core.executor import RankingCubeExecutor
from ..core.fragments import FragmentedRankingCube, evenly_partition
from ..core.partition import EquiDepthPartitioner, EquiWidthPartitioner
from ..relational.database import Database
from ..workloads.covertype import CoverTypeSpec, generate_covertype
from ..workloads.queries import QueryGenerator, QuerySpec
from ..workloads.synthetic import SyntheticSpec, generate
from .harness import (
    METHOD_BASELINE,
    METHOD_RANKING_CUBE,
    METHOD_RANKING_FRAGMENTS,
    METHOD_RANK_MAPPING,
    Environment,
    ExperimentResult,
    MethodMetrics,
    SeriesPoint,
    build_environment,
)

DEFAULT_T = 60_000
CUBE_METHODS = (METHOD_BASELINE, METHOD_RANK_MAPPING, METHOD_RANKING_CUBE)
FRAGMENT_METHODS = (METHOD_BASELINE, METHOD_RANK_MAPPING, METHOD_RANKING_FRAGMENTS)


def _run_point(
    env: Environment, methods: Sequence[str], queries
) -> dict[str, MethodMetrics]:
    return {method: env.run(method, queries) for method in methods}


# ----------------------------------------------------------------------
# Ranking cube experiments (Section 5.2)
# ----------------------------------------------------------------------
def fig04_topk(
    num_tuples: int = DEFAULT_T, queries_per_point: int = 8, seed: int = 29
) -> ExperimentResult:
    """Figure 4: execution cost vs. k (number of results requested)."""
    dataset = generate(SyntheticSpec(num_tuples=num_tuples, seed=seed))
    env = build_environment(dataset, CUBE_METHODS)
    result = ExperimentResult(
        "fig04", "query cost vs. top-k", "k",
        notes="paper: RC ~40x faster than BL, ~10x than RM at k=100; BL flat",
    )
    for k in (10, 20, 50, 100):
        gen = QueryGenerator(dataset.schema, QuerySpec(k=k, seed=seed + k))
        queries = gen.batch(queries_per_point)
        result.points.append(
            SeriesPoint(x=k, metrics=_run_point(env, CUBE_METHODS, queries))
        )
    return result


def fig05_skew(
    num_tuples: int = DEFAULT_T, queries_per_point: int = 8, seed: int = 31
) -> ExperimentResult:
    """Figure 5: execution cost vs. query skewness u = min|w|/max|w|."""
    dataset = generate(SyntheticSpec(num_tuples=num_tuples, seed=seed))
    env = build_environment(dataset, CUBE_METHODS)
    result = ExperimentResult(
        "fig05", "query cost vs. skewness", "u",
        notes="paper: RC rises slightly as u drops, stays far below BL/RM",
    )
    for u in (1.0, 0.5, 0.25, 0.1):
        gen = QueryGenerator(
            dataset.schema, QuerySpec(skewness=u, seed=seed + int(u * 100))
        )
        queries = gen.batch(queries_per_point)
        result.points.append(
            SeriesPoint(x=u, metrics=_run_point(env, CUBE_METHODS, queries))
        )
    return result


def fig06_ranking_dims(
    num_tuples: int = DEFAULT_T, queries_per_point: int = 6, seed: int = 37
) -> ExperimentResult:
    """Figure 6: cost vs. r, the dimensions in the ranking function (R=4)."""
    dataset = generate(
        SyntheticSpec(num_ranking_dims=4, num_tuples=num_tuples, seed=seed)
    )
    env = build_environment(dataset, CUBE_METHODS, block_size=60)
    result = ExperimentResult(
        "fig06", "query cost vs. ranking dimensions used", "r",
        notes="paper: RC slightly cheaper as r grows toward R (less projection)",
    )
    for r in (1, 2, 3, 4):
        gen = QueryGenerator(
            dataset.schema, QuerySpec(num_ranking_dims=r, seed=seed + r)
        )
        queries = gen.batch(queries_per_point)
        result.points.append(
            SeriesPoint(x=r, metrics=_run_point(env, CUBE_METHODS, queries))
        )
    return result


def fig07_dbsize(
    sizes: Sequence[int] = (20_000, 60_000, 120_000),
    queries_per_point: int = 6,
    seed: int = 41,
) -> ExperimentResult:
    """Figure 7: cost vs. database size T (paper: 1M..10M, scaled)."""
    result = ExperimentResult(
        "fig07", "query cost vs. database size", "T",
        notes="paper: BL/RM grow with T; RC roughly flat",
    )
    for num_tuples in sizes:
        dataset = generate(SyntheticSpec(num_tuples=num_tuples, seed=seed))
        env = build_environment(dataset, CUBE_METHODS)
        gen = QueryGenerator(dataset.schema, QuerySpec(seed=seed + num_tuples))
        queries = gen.batch(queries_per_point)
        result.points.append(
            SeriesPoint(x=num_tuples, metrics=_run_point(env, CUBE_METHODS, queries))
        )
    return result


def fig08_cardinality(
    num_tuples: int = DEFAULT_T,
    cardinalities: Sequence[int] = (5, 10, 20, 50, 100),
    queries_per_point: int = 6,
    seed: int = 43,
) -> ExperimentResult:
    """Figure 8: cost vs. selection-dimension cardinality C.

    The paper sweeps C in 10..1000 at T=3M; we keep the qualifying-set
    sizes (~T/C^2 at s=2) comparable at the scaled T instead of copying
    the raw C values.
    """
    result = ExperimentResult(
        "fig08", "query cost vs. cardinality", "C",
        notes="paper: BL improves with C; RC bumps then recovers (empty-cell skip)",
    )
    for cardinality in cardinalities:
        dataset = generate(
            SyntheticSpec(cardinality=cardinality, num_tuples=num_tuples, seed=seed)
        )
        env = build_environment(dataset, CUBE_METHODS)
        gen = QueryGenerator(dataset.schema, QuerySpec(seed=seed + cardinality))
        queries = gen.batch(queries_per_point)
        result.points.append(
            SeriesPoint(x=cardinality, metrics=_run_point(env, CUBE_METHODS, queries))
        )
    return result


def fig09_selections(
    num_tuples: int = DEFAULT_T, queries_per_point: int = 6, seed: int = 47
) -> ExperimentResult:
    """Figure 9: cost vs. s, the number of selection conditions (S=4)."""
    dataset = generate(
        SyntheticSpec(num_selection_dims=4, num_tuples=num_tuples, seed=seed)
    )
    env = build_environment(dataset, CUBE_METHODS)
    result = ExperimentResult(
        "fig09", "query cost vs. selection conditions", "s",
        notes="paper: BL/RM improve with s; RC mildly increases; all converge",
    )
    for s in (1, 2, 3, 4):
        gen = QueryGenerator(
            dataset.schema, QuerySpec(num_selections=s, seed=seed + s)
        )
        queries = gen.batch(queries_per_point)
        result.points.append(
            SeriesPoint(x=s, metrics=_run_point(env, CUBE_METHODS, queries))
        )
    return result


def fig10_block_size(
    num_tuples: int = DEFAULT_T,
    block_sizes: Sequence[int] = (10, 30, 100, 300, 1000),
    queries_per_point: int = 6,
    seed: int = 53,
) -> ExperimentResult:
    """Figure 10: ranking-cube cost vs. base block size B."""
    dataset = generate(SyntheticSpec(num_tuples=num_tuples, seed=seed))
    result = ExperimentResult(
        "fig10", "ranking cube cost vs. block size", "B",
        notes="paper: within ~20% across B in 10..1000",
    )
    gen = QueryGenerator(dataset.schema, QuerySpec(seed=seed))
    queries = gen.batch(queries_per_point)
    for block_size in block_sizes:
        env = build_environment(
            dataset, (METHOD_RANKING_CUBE,), block_size=block_size
        )
        result.points.append(
            SeriesPoint(
                x=block_size,
                metrics=_run_point(env, (METHOD_RANKING_CUBE,), queries),
            )
        )
    return result


# ----------------------------------------------------------------------
# Ranking fragment experiments (Section 5.3)
# ----------------------------------------------------------------------
def fig11_space(
    num_tuples: int = 20_000,
    dim_counts: Sequence[int] = (3, 6, 9, 12),
    fragment_size: int = 2,
    seed: int = 59,
) -> ExperimentResult:
    """Figure 11: storage bytes (data + indexes) vs. selection dims S."""
    result = ExperimentResult(
        "fig11", "space usage vs. selection dimensions", "S",
        notes="paper: all grow linearly with S; RF ~1-2.5x of BL/RM",
    )
    for s_dims in dim_counts:
        dataset = generate(
            SyntheticSpec(num_selection_dims=s_dims, num_tuples=num_tuples, seed=seed)
        )
        env = build_environment(
            dataset, FRAGMENT_METHODS, fragment_size=fragment_size
        )
        table = env.table
        assert env.cube is not None
        data = table.data_size_in_bytes
        secondary = sum(
            ix.size_in_bytes for ix in table.secondary_indexes.values()
        )
        composite = sum(
            ix.size_in_bytes for ix in table.composite_indexes.values()
        )
        metrics = {
            METHOD_BASELINE: MethodMetrics(space_bytes=float(data + secondary)),
            METHOD_RANK_MAPPING: MethodMetrics(space_bytes=float(data + composite)),
            METHOD_RANKING_FRAGMENTS: MethodMetrics(
                space_bytes=float(data + env.cube.size_in_bytes)
            ),
        }
        result.points.append(SeriesPoint(x=s_dims, metrics=metrics))
    return result


def fig12_covering_fragments(
    num_tuples: int = 40_000, queries_per_point: int = 6, seed: int = 61
) -> ExperimentResult:
    """Figure 12: fragment cost vs. number of covering fragments (1..3).

    Queries have three selection conditions, intentionally placed inside
    one, two, or three distinct fragments (F=2, S=12).
    """
    dataset = generate(
        SyntheticSpec(num_selection_dims=12, num_tuples=num_tuples, seed=seed)
    )
    env = build_environment(
        dataset, (METHOD_RANKING_FRAGMENTS,), fragment_size=2
    )
    cube = env.cube
    assert isinstance(cube, FragmentedRankingCube)
    fragments = cube.fragments
    gen = QueryGenerator(dataset.schema, QuerySpec(num_selections=3, seed=seed))
    # Three conditions cannot sit inside one fragment at F=2, so the
    # "1 covering fragment" point uses s=2 inside one fragment, matching
    # the spirit of the paper's construction at its F=2 default.
    result = ExperimentResult(
        "fig12", "fragment cost vs. covering fragments", "covering",
        notes="paper: 2 frags ~1.4x, 3 frags ~2x of the 1-fragment cost",
    )
    plans = {
        1: list(fragments[0]),                                   # s=2, 1 fragment
        2: list(fragments[0]) + [fragments[1][0]],               # s=3, 2 fragments
        3: [fragments[0][0], fragments[1][0], fragments[2][0]],  # s=3, 3 fragments
    }
    for covering, dims in plans.items():
        queries = [
            gen.constrained(dims, seed_offset=covering * 100 + i)
            for i in range(queries_per_point)
        ]
        for query in queries:
            assert cube.covering_fragment_count(query.selection_names) == covering
        result.points.append(
            SeriesPoint(
                x=covering,
                metrics=_run_point(env, (METHOD_RANKING_FRAGMENTS,), queries),
            )
        )
    return result


def fig13_fragment_size(
    num_tuples: int = 40_000,
    fragment_sizes: Sequence[int] = (1, 2, 3),
    queries_per_point: int = 6,
    seed: int = 67,
) -> ExperimentResult:
    """Figure 13: fragment cost vs. fragment size F (queries with s=3)."""
    dataset = generate(
        SyntheticSpec(num_selection_dims=12, num_tuples=num_tuples, seed=seed)
    )
    result = ExperimentResult(
        "fig13", "fragment cost vs. fragment size", "F",
        notes="paper: larger F -> faster queries (better coverage)",
    )
    gen = QueryGenerator(dataset.schema, QuerySpec(num_selections=3, seed=seed))
    queries = gen.batch(queries_per_point)
    for fragment_size in fragment_sizes:
        env = build_environment(
            dataset, (METHOD_RANKING_FRAGMENTS,), fragment_size=fragment_size
        )
        result.points.append(
            SeriesPoint(
                x=fragment_size,
                metrics=_run_point(env, (METHOD_RANKING_FRAGMENTS,), queries),
            )
        )
    return result


def fig14_num_dims(
    num_tuples: int = 40_000,
    dim_counts: Sequence[int] = (3, 6, 9, 12),
    queries_per_point: int = 6,
    seed: int = 71,
) -> ExperimentResult:
    """Figure 14: cost vs. S for BL, RM (fragment indexes) and RF (s=3)."""
    result = ExperimentResult(
        "fig14", "query cost vs. selection dimensions", "S",
        notes="paper: RM degrades with S; BL flat; RF flat-ish and best",
    )
    for s_dims in dim_counts:
        dataset = generate(
            SyntheticSpec(num_selection_dims=s_dims, num_tuples=num_tuples, seed=seed)
        )
        env = build_environment(dataset, FRAGMENT_METHODS, fragment_size=2)
        gen = QueryGenerator(
            dataset.schema,
            QuerySpec(num_selections=min(3, s_dims), seed=seed + s_dims),
        )
        queries = gen.batch(queries_per_point)
        result.points.append(
            SeriesPoint(
                x=s_dims, metrics=_run_point(env, FRAGMENT_METHODS, queries)
            )
        )
    return result


def fig15_covertype(
    num_tuples: int = 30_000, queries_per_point: int = 6, seed: int = 73
) -> ExperimentResult:
    """Figure 15: cost vs. k on the CoverType-like real-data stand-in.

    Fragment size 3 (the paper's 4 groups of 3 dims); queries use 3
    selection conditions and rank on all 3 ranking dimensions.
    """
    dataset = generate_covertype(CoverTypeSpec(num_tuples=num_tuples, seed=seed))
    env = build_environment(dataset, FRAGMENT_METHODS, fragment_size=3)
    result = ExperimentResult(
        "fig15", "CoverType cost vs. top-k", "k",
        notes="paper: on this low-cardinality data BL beats RM; RF best",
    )
    for k in (10, 20, 50, 100):
        gen = QueryGenerator(
            dataset.schema,
            QuerySpec(k=k, num_selections=3, num_ranking_dims=3, seed=seed + k),
        )
        queries = gen.batch(queries_per_point)
        result.points.append(
            SeriesPoint(x=k, metrics=_run_point(env, FRAGMENT_METHODS, queries))
        )
    return result


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md §6)
# ----------------------------------------------------------------------
def ablation_partitioner(
    num_tuples: int = 30_000, queries_per_point: int = 6, seed: int = 79
) -> ExperimentResult:
    """Equi-depth vs. equi-width partitioning on skewed (gaussian) data."""
    dataset = generate(
        SyntheticSpec(
            num_tuples=num_tuples, ranking_distribution="gaussian", seed=seed
        )
    )
    result = ExperimentResult(
        "ablation_partitioner", "partitioning strategy on skewed data",
        "partitioner",
        notes="equi-depth adapts bin widths to density; equi-width does not",
    )
    gen = QueryGenerator(dataset.schema, QuerySpec(seed=seed))
    queries = gen.batch(queries_per_point)
    for name, partitioner in (
        ("equi-depth", EquiDepthPartitioner()),
        ("equi-width", EquiWidthPartitioner()),
    ):
        env = build_environment(
            dataset, (METHOD_RANKING_CUBE,), partitioner=partitioner
        )
        result.points.append(
            SeriesPoint(
                x=name, metrics=_run_point(env, (METHOD_RANKING_CUBE,), queries)
            )
        )
    return result


def ablation_buffering(
    num_tuples: int = 30_000, queries_per_point: int = 6, seed: int = 83
) -> ExperimentResult:
    """Pseudo-block buffering on vs. off (Section 3.2.2's retrieve step)."""
    dataset = generate(SyntheticSpec(num_tuples=num_tuples, seed=seed))
    db = Database()
    table = dataset.load_into(db)
    cube = RankingCube.build(table)
    gen = QueryGenerator(dataset.schema, QuerySpec(seed=seed))
    queries = gen.batch(queries_per_point)
    result = ExperimentResult(
        "ablation_buffering", "pseudo-block buffering", "buffering",
        notes="buffering makes repeat bids of one pseudo block free",
    )
    for name, buffering in (("on", True), ("off", False)):
        env = Environment(
            db,
            table,
            {
                METHOD_RANKING_CUBE: RankingCubeExecutor(
                    cube, table, buffer_pseudo_blocks=buffering
                )
            },
            cube=cube,
        )
        result.points.append(
            SeriesPoint(
                x=name, metrics=_run_point(env, (METHOD_RANKING_CUBE,), queries)
            )
        )
    return result


def ablation_pseudo_blocking(
    num_tuples: int = 30_000, queries_per_point: int = 6, seed: int = 89
) -> ExperimentResult:
    """Pseudo blocking on vs. off (scale factor forced to 1).

    Without pseudo blocking each cuboid cell corresponds to one *base*
    block, so cells hold only a handful of entries and the retrieve step
    probes the directory for every single bid instead of amortizing one
    fetch across a whole pseudo block (Section 3.1.3's motivation).
    """
    dataset = generate(SyntheticSpec(num_tuples=num_tuples, seed=seed))
    gen = QueryGenerator(dataset.schema, QuerySpec(seed=seed))
    queries = gen.batch(queries_per_point)
    result = ExperimentResult(
        "ablation_pseudo_blocking", "pseudo blocking", "pseudo",
        notes="sf=1 disables the block merge; more directory probes per query",
    )
    for name, override in (("on", None), ("off (sf=1)", 1)):
        db = Database()
        table = dataset.load_into(db)
        cube = RankingCube.build(table, pseudo_scale_override=override)
        env = Environment(
            db,
            table,
            {METHOD_RANKING_CUBE: RankingCubeExecutor(cube, table)},
            cube=cube,
        )
        result.points.append(
            SeriesPoint(
                x=name, metrics=_run_point(env, (METHOD_RANKING_CUBE,), queries)
            )
        )
    return result


def ablation_compression(
    num_tuples: int = 30_000, queries_per_point: int = 6, seed: int = 97
) -> ExperimentResult:
    """Tid-list compression on vs. off (Section 6's compression note).

    Compares cuboid storage bytes (reported via ``space_bytes``) and query
    cost: gap+varint coding shrinks the cuboids substantially and, because
    cells span fewer pages, usually reads slightly less per query too.
    """
    dataset = generate(SyntheticSpec(num_tuples=num_tuples, seed=seed))
    gen = QueryGenerator(dataset.schema, QuerySpec(seed=seed))
    queries = gen.batch(queries_per_point)
    result = ExperimentResult(
        "ablation_compression", "tid-list compression", "compression",
        notes="space_bytes = cuboid storage; io_cost = per-query cost",
    )
    for name, compress in (("off", False), ("on", True)):
        db = Database()
        table = dataset.load_into(db)
        cube = RankingCube.build(table, compress=compress)
        env = Environment(
            db,
            table,
            {METHOD_RANKING_CUBE: RankingCubeExecutor(cube, table)},
            cube=cube,
        )
        metrics = env.run(METHOD_RANKING_CUBE, queries)
        metrics.space_bytes = float(
            sum(c.size_in_bytes for c in cube.cuboids.values())
        )
        result.points.append(
            SeriesPoint(x=name, metrics={METHOD_RANKING_CUBE: metrics})
        )
    return result


def extra_prior_art(
    num_tuples: int = 30_000, queries_per_point: int = 6, seed: int = 103
) -> ExperimentResult:
    """Onion and PREFER vs. the ranking cube, as selections are added.

    Not a paper figure — the paper dismisses Onion [8] and PREFER [6]
    qualitatively as selection-unaware (Section 1).  This experiment
    quantifies that motivation: with s=0 the prior art is competitive
    (PREFER especially, near its reference function); each added equality
    condition multiplies the tuples they must fetch-and-filter, while the
    ranking cube's cost barely moves.
    """
    from ..baselines.onion import OnionIndex
    from ..baselines.prefer import PreferView

    dataset = generate(SyntheticSpec(num_tuples=num_tuples, seed=seed))
    db = Database()
    table = dataset.load_into(db)
    onion = OnionIndex(table)
    prefer = PreferView(table)
    cube = RankingCube.build(table)
    env = Environment(
        db,
        table,
        {
            "onion": onion,
            "prefer": prefer,
            METHOD_RANKING_CUBE: RankingCubeExecutor(cube, table),
        },
        cube=cube,
    )
    methods = ("onion", "prefer", METHOD_RANKING_CUBE)
    result = ExperimentResult(
        "extra_prior_art", "prior art vs. selections", "s",
        notes="positive-weight linear queries (PREFER's requirement)",
    )
    for s in (0, 1, 2):
        gen = QueryGenerator(
            dataset.schema,
            QuerySpec(num_selections=s, skewness=0.5, seed=seed + s),
        )
        queries = gen.batch(queries_per_point)
        result.points.append(
            SeriesPoint(x=s, metrics=_run_point(env, methods, queries))
        )
    return result


def extra_hybrid_routing(
    num_tuples: int = 30_000, queries_per_point: int = 6, seed: int = 109
) -> ExperimentResult:
    """Hybrid cost-based routing vs. always-cube and always-baseline.

    Sweeps the number of selection conditions on an S=4 dataset (the
    Figure 9 setting): at low s the cube wins, at s=4 almost nothing
    qualifies and fetch-and-sort wins ("ranking is even not necessary",
    the paper notes).  The hybrid executor should track whichever is
    cheaper at every point.
    """
    from ..core.hybrid import HybridExecutor

    dataset = generate(
        SyntheticSpec(num_selection_dims=4, num_tuples=num_tuples, seed=seed)
    )
    db = Database()
    table = dataset.load_into(db)
    for name in dataset.schema.selection_names:
        table.create_secondary_index(name)
    cube = RankingCube.build(table)
    from ..baselines.scan import BaselineExecutor

    env = Environment(
        db,
        table,
        {
            METHOD_BASELINE: BaselineExecutor(table),
            METHOD_RANKING_CUBE: RankingCubeExecutor(cube, table),
            "hybrid": HybridExecutor(cube, table),
        },
        cube=cube,
    )
    methods = (METHOD_BASELINE, METHOD_RANKING_CUBE, "hybrid")
    result = ExperimentResult(
        "extra_hybrid_routing", "hybrid routing vs. fixed paths", "s",
        notes="hybrid should track min(baseline, cube) at every s",
    )
    for s in (1, 2, 3, 4):
        gen = QueryGenerator(
            dataset.schema, QuerySpec(num_selections=s, seed=seed + s)
        )
        queries = gen.batch(queries_per_point)
        result.points.append(
            SeriesPoint(x=s, metrics=_run_point(env, methods, queries))
        )
    return result


#: Experiment registry: id -> callable, for the CLI runner and the benches.
ALL_EXPERIMENTS = {
    "fig04": fig04_topk,
    "fig05": fig05_skew,
    "fig06": fig06_ranking_dims,
    "fig07": fig07_dbsize,
    "fig08": fig08_cardinality,
    "fig09": fig09_selections,
    "fig10": fig10_block_size,
    "fig11": fig11_space,
    "fig12": fig12_covering_fragments,
    "fig13": fig13_fragment_size,
    "fig14": fig14_num_dims,
    "fig15": fig15_covertype,
    "ablation_partitioner": ablation_partitioner,
    "ablation_buffering": ablation_buffering,
    "ablation_pseudo_blocking": ablation_pseudo_blocking,
    "ablation_compression": ablation_compression,
    "extra_prior_art": extra_prior_art,
    "extra_hybrid_routing": extra_hybrid_routing,
}
