"""CLI experiment runner: ``python -m repro.bench [fig04 fig05 ... | all]``.

Runs the requested experiments at their default (scaled-down) sizes and
prints the paper-figure tables.  ``--tuples N`` overrides dataset sizes
where the experiment accepts one.
"""

from __future__ import annotations

import argparse
import inspect
import sys

from .experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "serve":
        # the serving benchmark has its own flags (see repro.bench.serve)
        from .serve import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "build":
        # parallel cube-construction benchmark (see repro.bench.build)
        from .build import main as build_main

        return build_main(argv[1:])
    if argv and argv[0] == "shard":
        # sharded scatter-gather serving benchmark (see repro.bench.shard)
        from .shard import main as shard_main

        return shard_main(argv[1:])
    if argv and argv[0] == "vector":
        # columnar batched-execution benchmark (see repro.bench.vector)
        from .vector import main as vector_main

        return vector_main(argv[1:])
    if argv and argv[0] == "anyk":
        # any-k enumeration / reverse top-k benchmark (see repro.bench.anyk)
        from .anyk import main as anyk_main

        return anyk_main(argv[1:])
    if argv and argv[0] == "adaptive":
        # adaptive routing / advisor / drift benchmark (see repro.bench.adaptive)
        from .adaptive import main as adaptive_main

        return adaptive_main(argv[1:])
    if argv and argv[0] == "ingest":
        # durable WAL ingestion / failover benchmark (see repro.bench.ingest)
        from .ingest import main as ingest_main

        return ingest_main(argv[1:])
    if argv and argv[0] == "profile":
        # span-tree profiling report (see repro.bench.profile)
        from .profile import main as profile_main

        return profile_main(argv[1:])
    if argv and argv[0] == "check":
        # baseline regression gate (see repro.bench.check)
        from .check import main as check_main

        return check_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help=(
            "experiment ids (fig04..fig15, ablation_*), 'fault-matrix', "
            "'serve'/'build'/'shard'/'vector'/'anyk'/'ingest'/'adaptive'/"
            "'profile'/'check' (own flags; see --help after each), or 'all'"
        ),
    )
    parser.add_argument(
        "--tuples", type=int, default=None, help="override dataset size"
    )
    parser.add_argument(
        "--queries", type=int, default=None, help="override queries per point"
    )
    parser.add_argument(
        "--metric",
        default="io_cost",
        help="metric to tabulate (io_cost, pages_read, wall_ms, ...)",
    )
    args = parser.parse_args(argv)

    wanted = list(ALL_EXPERIMENTS) if args.experiments == ["all"] or args.experiments == [] else args.experiments
    run_faults = "fault-matrix" in wanted
    wanted = [name for name in wanted if name != "fault-matrix"]
    unknown = [name for name in wanted if name not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiments: {unknown}; "
            f"known: {sorted(ALL_EXPERIMENTS)} + ['fault-matrix']"
        )

    if run_faults:
        # deterministic fixed-seed fault matrix (see repro.bench.faultmatrix)
        from .faultmatrix import run_fault_matrix

        result = run_fault_matrix()
        print(result.format_table())
        print()
        if not result.consistent:
            return 1

    for name in wanted:
        fn = ALL_EXPERIMENTS[name]
        kwargs = {}
        signature = inspect.signature(fn)
        if args.tuples is not None and "num_tuples" in signature.parameters:
            kwargs["num_tuples"] = args.tuples
        if args.queries is not None and "queries_per_point" in signature.parameters:
            kwargs["queries_per_point"] = args.queries
        result = fn(**kwargs)
        metric = args.metric if name != "fig11" else "space_bytes"
        print(result.format_table(metric))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
