"""Interactive top-k shell.

``python -m repro`` drops into a small REPL over a ranking cube: load a
saved workspace or generate a synthetic relation, then type the paper's
SQL dialect and get ranked answers with per-query I/O costs.

Dot-commands:

* ``.help``              — command summary
* ``.schema``            — the relation's attributes
* ``.describe``          — the cube's materialization inventory
* ``.explain <sql>``     — query plan without executing
* ``.stats``             — cumulative device I/O counters
* ``.save <path>``       — snapshot the workspace
* ``.quit``              — leave

Everything is also usable programmatically through :class:`Shell`, which
the tests drive line by line.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from .core.cube import RankingCube
from .core.executor import RankingCubeExecutor
from .core.fragments import FragmentedRankingCube
from .persist import PersistError, Workspace
from .relational.database import Database
from .relational.table import Table
from .sqlmini.lexer import SqlError
from .sqlmini.parser import compile_topk
from .workloads.synthetic import SyntheticSpec, generate

#: Build fragments instead of a full cube above this many selection dims.
FULL_CUBE_DIM_LIMIT = 6


class Shell:
    """A stateful SQL shell over one table and its ranking cube."""

    def __init__(self, db: Database, table: Table, cube: RankingCube):
        self.db = db
        self.table = table
        self.cube = cube
        self.executor = RankingCubeExecutor(cube, table)
        self._queries_run = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_synthetic(
        cls,
        num_tuples: int = 20_000,
        num_selection_dims: int = 3,
        num_ranking_dims: int = 2,
        cardinality: int = 10,
        seed: int = 7,
    ) -> "Shell":
        dataset = generate(
            SyntheticSpec(
                num_selection_dims=num_selection_dims,
                num_ranking_dims=num_ranking_dims,
                num_tuples=num_tuples,
                cardinality=cardinality,
                seed=seed,
            )
        )
        db = Database()
        table = dataset.load_into(db)
        if num_selection_dims > FULL_CUBE_DIM_LIMIT:
            cube: RankingCube = FragmentedRankingCube.build_fragments(table)
        else:
            cube = RankingCube.build(table)
        return cls(db, table, cube)

    @classmethod
    def from_workspace(cls, path: str) -> "Shell":
        workspace = Workspace.load(path)
        names = workspace.db.table_names()
        if len(names) != 1 or len(workspace.cubes) != 1:
            raise PersistError(
                "the shell expects a workspace with exactly one table and one cube"
            )
        table = workspace.db.table(names[0])
        cube = next(iter(workspace.cubes.values()))
        return cls(workspace.db, table, cube)

    # ------------------------------------------------------------------
    # the REPL
    # ------------------------------------------------------------------
    def run(
        self,
        lines: Iterable[str] | None = None,
        write: Callable[[str], None] = print,
    ) -> None:
        """Process lines until exhaustion or ``.quit``.

        ``lines=None`` reads interactively from stdin.
        """
        write(self.banner())
        source = lines if lines is not None else _stdin_lines()
        for line in source:
            output, keep_going = self.execute_line(line)
            if output:
                write(output)
            if not keep_going:
                break

    def execute_line(self, line: str) -> tuple[str, bool]:
        """Handle one input line; returns (output, keep_going)."""
        line = line.strip()
        if not line:
            return "", True
        if line.startswith("."):
            return self._dot_command(line)
        try:
            return self._run_query(line), True
        except SqlError as exc:
            return f"syntax error: {exc}", True
        except Exception as exc:  # surface executor errors without dying
            return f"error: {exc}", True

    def banner(self) -> str:
        schema = self.table.schema
        return (
            f"ranking-cube shell — {self.table.num_rows} tuples, "
            f"selections {', '.join(schema.selection_names)}; "
            f"rankings {', '.join(schema.ranking_names)}\n"
            "type SQL (SELECT TOP k ... ORDER BY ...) or .help"
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _dot_command(self, line: str) -> tuple[str, bool]:
        command, _, argument = line.partition(" ")
        command = command.lower()
        if command == ".quit" or command == ".exit":
            return "bye", False
        if command == ".help":
            return (
                ".help .schema .describe .explain <sql> .stats .save <path> .quit\n"
                "or any SQL: SELECT TOP k FROM t WHERE a = 1 ORDER BY n1 + n2"
            ), True
        if command == ".schema":
            schema = self.table.schema
            rows = [
                f"  {attr.name:16s} {attr.kind.value:9s} "
                + (f"cardinality {attr.cardinality}" if attr.is_selection else "")
                for attr in schema.attributes
            ]
            return "\n".join(rows), True
        if command == ".describe":
            return self.cube.describe(), True
        if command == ".stats":
            stats = self.db.device.stats
            return (
                f"device: {stats.reads} reads "
                f"({stats.random_reads} random, {stats.sequential_reads} "
                f"sequential), {stats.writes} writes; "
                f"{self._queries_run} queries run"
            ), True
        if command == ".explain":
            if not argument.strip():
                return "usage: .explain SELECT TOP k ...", True
            try:
                query = compile_topk(argument, self.table.schema)
                return self.executor.explain(query).describe(), True
            except SqlError as exc:
                return f"syntax error: {exc}", True
        if command == ".save":
            if not argument.strip():
                return "usage: .save <path>", True
            workspace = Workspace(db=self.db)
            workspace.add_cube(self.table.name, self.cube)
            written = workspace.save(argument.strip())
            return f"saved {written} bytes to {argument.strip()}", True
        return f"unknown command {command!r} (try .help)", True

    def _run_query(self, sql: str) -> str:
        query = compile_topk(sql, self.table.schema)
        self.db.cold_cache()
        before = self.db.io_snapshot()
        started = time.perf_counter()
        result = self.executor.execute(query)
        elapsed = (time.perf_counter() - started) * 1000
        io = self.db.io_since(before)
        self._queries_run += 1

        lines = [f"{'tid':>8s}  {'score':>12s}"]
        for row in result:
            lines.append(f"{row.tid:8d}  {row.score:12.6f}")
        if not result.rows:
            lines.append("(no qualifying tuples)")
        lines.append(
            f"-- {len(result.rows)} row(s) in {elapsed:.2f} ms; "
            f"{io.reads} pages ({io.random_reads} random); "
            f"{result.tuples_examined} tuples examined"
        )
        return "\n".join(lines)


def _stdin_lines():
    while True:
        try:
            yield input("topk> ")
        except EOFError:
            return
