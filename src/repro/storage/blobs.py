"""Packed variable-length blob storage with a B+-tree directory.

The variable-length counterpart of :class:`~repro.core.chains.ChainStore`:
keyed byte blobs packed back to back into pages, located by
``(page_index, offset, length)`` packed into a single directory value.
A blob that does not fit in the current page's free space starts on a
fresh page; blobs larger than a page span consecutive pages.  Used by the
compressed cuboid store.
"""

from __future__ import annotations

from typing import Iterable

from ..index.bptree import BPlusTree
from .buffer import BufferPool
from .device import PageCorruptionError, StorageError
from .pages import BytesPage


class BlobStore:
    """Build-once keyed blob storage over paged memory."""

    def __init__(self, pool: BufferPool, fanout: int = 32):
        self.pool = pool
        self.page_size = pool.device.page_size
        self.directory = BPlusTree(pool, fanout=fanout)
        self._page_ids: list[int] = []
        self._payload_capacity = BytesPage(self.page_size).max_payload
        self._built = False
        self._num_blobs = 0

    # ------------------------------------------------------------------
    def build(self, blobs: Iterable[tuple[tuple, bytes]]) -> None:
        """Bulk build from ``(key, blob)`` pairs (keys must be unique)."""
        if self._built:
            raise StorageError("BlobStore.build may only be called once")
        self._built = True
        capacity = self._payload_capacity
        ordered = sorted(
            ((tuple(key), bytes(blob)) for key, blob in blobs),
            key=lambda pair: pair[0],
        )
        pages: list[bytearray] = [bytearray()]
        directory_pairs = []
        for key, blob in ordered:
            if not blob:
                continue
            free = capacity - len(pages[-1])
            if len(blob) > free and len(blob) <= capacity:
                pages.append(bytearray())
            page_index = len(pages) - 1
            offset = len(pages[-1])
            directory_pairs.append(
                (key, _pack_locator(page_index, offset, len(blob)))
            )
            remaining = memoryview(blob)
            while remaining:
                free = capacity - len(pages[-1])
                if free == 0:
                    pages.append(bytearray())
                    free = capacity
                pages[-1].extend(remaining[:free])
                remaining = remaining[free:]
            self._num_blobs += 1

        if pages == [bytearray()]:
            pages = []
        self._page_ids = self.pool.device.allocate_many(len(pages))
        for page_id, payload in zip(self._page_ids, pages):
            self.pool.put(
                page_id, BytesPage(self.page_size, bytes(payload)).to_bytes()
            )
        self.directory.bulk_load(directory_pairs)

    def get(self, key: tuple) -> bytes | None:
        """The blob under ``key``, or ``None`` if absent."""
        locator = self.directory.get(tuple(key))
        if locator is None:
            return None
        page_index, offset, length = _unpack_locator(locator)
        chunks = []
        while length > 0:
            payload = self._load_payload(page_index)
            take = payload[offset:offset + length]
            if not take:
                raise PageCorruptionError(
                    f"blob {key!r} expects {length} more byte(s) at page "
                    f"index {page_index} offset {offset}, but the page "
                    "payload ends early (damaged page or directory)",
                    page_id=self._page_ids[page_index],
                )
            chunks.append(take)
            length -= len(take)
            page_index += 1
            offset = 0
        return b"".join(chunks)

    def _load_payload(self, page_index: int) -> bytes:
        if not 0 <= page_index < len(self._page_ids):
            raise StorageError(f"blob store has no page index {page_index}")
        page_id = self._page_ids[page_index]
        try:
            return BytesPage.from_bytes(
                self.pool.get(page_id), self.page_size, page_id
            ).payload
        except PageCorruptionError:
            # quarantine-and-refetch, same contract as HeapFile._load_page
            self.pool.invalidate(page_id)
            return BytesPage.from_bytes(
                self.pool.get(page_id), self.page_size, page_id
            ).payload

    def __contains__(self, key: tuple) -> bool:
        return self.directory.get(tuple(key)) is not None

    # ------------------------------------------------------------------
    @property
    def num_blobs(self) -> int:
        return self._num_blobs

    @property
    def num_pages(self) -> int:
        return len(self._page_ids)

    @property
    def size_in_bytes(self) -> int:
        return len(self._page_ids) * self.page_size + self.directory.size_in_bytes


_OFFSET_BITS = 13   # offsets within a page (page sizes up to 8 KiB)
_LENGTH_BITS = 27   # blob lengths up to 128 MiB


def _pack_locator(page_index: int, offset: int, length: int) -> int:
    if offset >= (1 << _OFFSET_BITS) or length >= (1 << _LENGTH_BITS):
        raise StorageError(f"locator out of range: offset={offset} length={length}")
    return (
        (page_index << (_OFFSET_BITS + _LENGTH_BITS))
        | (offset << _LENGTH_BITS)
        | length
    )


def _unpack_locator(locator: int) -> tuple[int, int, int]:
    length = locator & ((1 << _LENGTH_BITS) - 1)
    offset = (locator >> _LENGTH_BITS) & ((1 << _OFFSET_BITS) - 1)
    page_index = locator >> (_OFFSET_BITS + _LENGTH_BITS)
    return page_index, offset, length
