"""Simulated block-level storage engine.

This package stands in for the disk + storage manager under Microsoft SQL
Server 2005 in the paper's experiments.  It provides a metered page device
(:class:`BlockDevice`), byte-level page layouts, an LRU :class:`BufferPool`,
and :class:`HeapFile` table storage.  Every access method in the repository
— baselines and ranking cube alike — performs its I/O through these
primitives so block-access comparisons are apples to apples.
"""

from .blobs import BlobStore
from .buffer import BufferPool, BufferStats
from .device import (
    DEFAULT_PAGE_SIZE,
    BlockDevice,
    IOStats,
    PageCorruptionError,
    PageNotAllocatedError,
    StorageError,
)
from .faults import (
    BIT_FLIP,
    FAULT_KINDS,
    LATENCY,
    READ_ERROR,
    TORN_WRITE,
    WRITE_ERROR,
    FaultInjector,
    FaultRule,
    FaultStats,
    FaultyBlockDevice,
    RetryExhaustedError,
    RetryPolicy,
    ScrubReport,
    TornWriteError,
    TransientReadError,
    TransientStorageFault,
    TransientWriteError,
    transient_fault_plan,
)
from .heap import HeapFile, Rid
from .pages import BytesPage, PageFormatError, RecordCodec, RecordPage
from .varint import (
    VarintError,
    decode_uvarint,
    delta_decode_sorted,
    delta_encode_sorted,
    encode_uvarint,
    zigzag_decode,
    zigzag_encode,
)

__all__ = [
    "BIT_FLIP",
    "DEFAULT_PAGE_SIZE",
    "FAULT_KINDS",
    "LATENCY",
    "READ_ERROR",
    "TORN_WRITE",
    "WRITE_ERROR",
    "BlobStore",
    "BlockDevice",
    "BufferPool",
    "BufferStats",
    "BytesPage",
    "FaultInjector",
    "FaultRule",
    "FaultStats",
    "FaultyBlockDevice",
    "HeapFile",
    "IOStats",
    "PageCorruptionError",
    "PageFormatError",
    "PageNotAllocatedError",
    "RecordCodec",
    "RecordPage",
    "RetryExhaustedError",
    "RetryPolicy",
    "Rid",
    "ScrubReport",
    "StorageError",
    "TornWriteError",
    "TransientReadError",
    "TransientStorageFault",
    "TransientWriteError",
    "VarintError",
    "transient_fault_plan",
    "decode_uvarint",
    "delta_decode_sorted",
    "delta_encode_sorted",
    "encode_uvarint",
    "zigzag_decode",
    "zigzag_encode",
]
