"""Simulated block device with I/O accounting.

The paper's experiments run against disks under Microsoft SQL Server; the
quantity its data structures optimize is *block-level I/O*.  This module
provides a page-addressed device that stores raw page images in memory and
counts every access, distinguishing random from sequential reads the way a
spinning disk (or a cost model) would: a read is sequential when it targets
the page immediately following the previously read page, random otherwise.

All storage structures in this repository (heap files, B+-trees, ranking
cuboids, base block tables) allocate their pages from a :class:`BlockDevice`
so that every competing access method pays for its I/O through the same
meter.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field

from ..obs.metrics import MetricsRegistry, RegistryStatsView


DEFAULT_PAGE_SIZE = 4096

#: Cost weights used by :meth:`IOStats.cost`.  A random read is modelled as
#: an order of magnitude more expensive than a sequential one, the classic
#: rule of thumb for magnetic disks that the paper's design implicitly
#: targets (block-level access, clustered indexes).
RANDOM_READ_WEIGHT = 10.0
SEQ_READ_WEIGHT = 1.0
WRITE_WEIGHT = 10.0


class StorageError(Exception):
    """Base class for storage-layer failures."""


class PageNotAllocatedError(StorageError):
    """Raised when accessing a page id that was never allocated."""


class PageCorruptionError(StorageError):
    """Raised when a page image fails an integrity check on read.

    Carries enough context for callers to quarantine and report the damage:
    the device page id (``None`` when the raiser only sees a raw image) and
    the expected/actual CRC-32 values when a checksum comparison failed.
    Structural corruption detected while decoding (impossible record counts,
    out-of-range payload lengths) raises this too, with the checksums left
    ``None``.
    """

    def __init__(
        self,
        message: str,
        *,
        page_id: int | None = None,
        expected_checksum: int | None = None,
        actual_checksum: int | None = None,
    ):
        super().__init__(message)
        self.page_id = page_id
        self.expected_checksum = expected_checksum
        self.actual_checksum = actual_checksum


@dataclass
class IOStats:
    """Mutable access counters for a :class:`BlockDevice`.

    Attributes
    ----------
    reads:
        Total page reads served by the device (buffer-pool misses only if a
        pool sits in front of the device).
    writes:
        Total page writes.
    random_reads / sequential_reads:
        Partition of ``reads`` by access pattern.
    random_writes / sequential_writes:
        The same partition for ``writes`` — a write is sequential when it
        targets the page immediately following the previously written
        page.  Bulk loaders (heap :meth:`bulk_load`, chain-store builds
        over contiguous extents) show up here as sequential streams;
        scattered directory updates as random writes.
    retried_reads / retried_writes:
        Failed attempts (injected faults, checksum mismatches) that a caller
        is expected to retry.  ``reads`` and ``writes`` count one per
        *successful* delivery, so benchmark I/O numbers stay comparable
        whether or not faults were injected; the retry traffic is visible
        here instead.
    """

    reads: int = 0
    writes: int = 0
    random_reads: int = 0
    sequential_reads: int = 0
    random_writes: int = 0
    sequential_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    retried_reads: int = 0
    retried_writes: int = 0

    _FIELDS = (
        "reads",
        "writes",
        "random_reads",
        "sequential_reads",
        "random_writes",
        "sequential_writes",
        "bytes_read",
        "bytes_written",
        "retried_reads",
        "retried_writes",
    )

    def cost(self) -> float:
        """Weighted I/O cost (random reads dominate)."""
        return (
            RANDOM_READ_WEIGHT * self.random_reads
            + SEQ_READ_WEIGHT * self.sequential_reads
            + WRITE_WEIGHT * self.writes
        )

    def snapshot(self) -> "IOStats":
        """Return an immutable-by-convention copy of the current counters."""
        return IOStats(**{f: getattr(self, f) for f in self._FIELDS})

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return IOStats(
            **{f: getattr(self, f) - getattr(earlier, f) for f in self._FIELDS}
        )

    def reset(self) -> None:
        for f in self._FIELDS:
            setattr(self, f, 0)

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            **{f: getattr(self, f) + getattr(other, f) for f in self._FIELDS}
        )


class DeviceIOStats(RegistryStatsView):
    """Live device counters, backed by the shared metrics registry.

    This is the :class:`IOStats` *view*: same field names, same helper
    methods, but every field is a registry counter
    (``storage.device.<field>``), so the device, the buffer pool, the
    serving caches and the tracer all read one spine instead of keeping
    parallel books.  :meth:`snapshot` and :meth:`delta` still hand out
    plain :class:`IOStats` value objects, so measurement code is
    unchanged.

    Increments on the device's hot path go through :meth:`inc` /
    :meth:`inc_many` (atomic under the registry mutex) — plain ``+=`` on
    a view field is get-then-set and must only be used single-threaded.
    """

    _PREFIX = "storage.device."
    _FIELDS = IOStats._FIELDS

    def cost(self) -> float:
        """Weighted I/O cost (random reads dominate)."""
        return (
            RANDOM_READ_WEIGHT * self.random_reads
            + SEQ_READ_WEIGHT * self.sequential_reads
            + WRITE_WEIGHT * self.writes
        )

    def snapshot(self) -> IOStats:
        """A plain value copy of the current counters."""
        return IOStats(**self.as_dict())

    def delta(self, earlier: IOStats) -> IOStats:
        """Counters accumulated since ``earlier`` was snapshotted."""
        return self.snapshot().delta(earlier)


@dataclass
class _StoredPage:
    data: bytes
    checksum: int = field(default=0)


class BlockDevice:
    """A page-addressed in-memory device with checksums and I/O metering.

    Parameters
    ----------
    page_size:
        Size of every page in bytes.  Writes larger than this raise
        :class:`StorageError`; shorter images are zero-padded on write so a
        read always returns exactly ``page_size`` bytes.
    verify_checksums:
        When true (default), every read verifies the CRC recorded at write
        time and raises :class:`PageCorruptionError` on mismatch.  Tests use
        :meth:`corrupt` to exercise this path.
    registry:
        The metrics spine this device publishes to.  Defaults to a fresh
        :class:`~repro.obs.metrics.MetricsRegistry`; the buffer pool, the
        serving caches and the query service above the device all attach
        their counters to the same registry, so cross-layer accounting
        invariants are checkable (see ``tests/obs/test_invariants.py``).
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        verify_checksums: bool = True,
        registry: MetricsRegistry | None = None,
    ):
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.verify_checksums = verify_checksums
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = DeviceIOStats(self.registry)
        self._pages: list[_StoredPage | None] = []
        self._last_read_page_id: int | None = None
        self._last_written_page_id: int | None = None
        # One device mutex serializes page access and stats updates so the
        # concurrent serving layer (repro.serve) meters I/O exactly; the
        # in-memory "transfer" is so cheap that striping buys nothing here.
        self._lock = threading.Lock()

    # Locks are process-local: strip on pickle (persist snapshots), rebuild
    # on unpickle.
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Allocate a fresh zeroed page and return its page id."""
        with self._lock:
            page_id = len(self._pages)
            data = bytes(self.page_size)
            self._pages.append(_StoredPage(data=data, checksum=zlib.crc32(data)))
            return page_id

    def allocate_many(self, count: int) -> list[int]:
        """Allocate ``count`` consecutive pages (a contiguous extent)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.allocate() for _ in range(count)]

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    @property
    def size_in_bytes(self) -> int:
        """Total allocated capacity of the device."""
        return len(self._pages) * self.page_size

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def read(self, page_id: int) -> bytes:
        """Read one page, metering the access as random or sequential.

        Only a *successful* delivery counts toward ``stats.reads``; a
        checksum failure counts toward ``stats.retried_reads`` (the caller
        is expected to retry or escalate) and leaves the read head where it
        was, so retries don't skew the random/sequential split.
        """
        with self._lock:
            page = self._page(page_id)
            if self.verify_checksums:
                actual = zlib.crc32(page.data)
                if actual != page.checksum:
                    self.stats.inc("retried_reads")
                    raise PageCorruptionError(
                        f"checksum mismatch on page {page_id} "
                        f"(expected {page.checksum:#010x}, found {actual:#010x})",
                        page_id=page_id,
                        expected_checksum=page.checksum,
                        actual_checksum=actual,
                    )
            sequential = (
                self._last_read_page_id is not None
                and page_id == self._last_read_page_id + 1
            )
            self.stats.inc_many(
                reads=1,
                bytes_read=self.page_size,
                sequential_reads=1 if sequential else 0,
                random_reads=0 if sequential else 1,
            )
            self._last_read_page_id = page_id
            return page.data

    def write(self, page_id: int, data: bytes) -> None:
        """Write one page image (padded to the page size).

        Metered as sequential when it targets the page after the previous
        write (mirroring the read-side classification), so bulk loads over
        contiguous extents are visible as sequential streams in
        ``stats.sequential_writes``.
        """
        if len(data) > self.page_size:
            raise StorageError(
                f"page image of {len(data)} bytes exceeds page size {self.page_size}"
            )
        with self._lock:
            page = self._page(page_id)
            if len(data) < self.page_size:
                data = data + bytes(self.page_size - len(data))
            page.data = data
            page.checksum = zlib.crc32(data)
            sequential = (
                self._last_written_page_id is not None
                and page_id == self._last_written_page_id + 1
            )
            self.stats.inc_many(
                writes=1,
                bytes_written=self.page_size,
                sequential_writes=1 if sequential else 0,
                random_writes=0 if sequential else 1,
            )
            self._last_written_page_id = page_id

    def corrupt(self, page_id: int, offset: int = 0) -> None:
        """Flip a byte in the stored image without updating the checksum.

        Exists purely for failure-injection tests.
        """
        page = self._page(page_id)
        data = bytearray(page.data)
        data[offset] ^= 0xFF
        page.data = bytes(data)

    def patch(
        self, page_id: int, data: bytes, *, update_checksum: bool = False
    ) -> None:
        """Overwrite a prefix of the stored image, bypassing I/O metering.

        With ``update_checksum=False`` (the default) the recorded CRC stays
        whatever the last full :meth:`write` left — the storage-level model
        of a *torn write*: bytes changed on the platter with no matching
        checksum update, so the next read detects the damage.  Fault
        injection only; normal traffic must use :meth:`write`.
        """
        if len(data) > self.page_size:
            raise StorageError(
                f"patch of {len(data)} bytes exceeds page size {self.page_size}"
            )
        page = self._page(page_id)
        image = bytearray(page.data)
        image[: len(data)] = data
        page.data = bytes(image)
        if update_checksum:
            page.checksum = zlib.crc32(page.data)

    def reset_stats(self) -> None:
        """Zero the counters and forget read/write head positions."""
        self.stats.reset()
        self._last_read_page_id = None
        self._last_written_page_id = None

    def fingerprint(self) -> str:
        """SHA-256 over every page image, in page-id order (unmetered).

        A content hash of the whole device: two devices holding
        byte-identical images produce equal fingerprints.  The
        build-equivalence battery uses this to prove parallel builds
        reproduce the serial layout bit-for-bit.
        """
        import hashlib

        digest = hashlib.sha256()
        with self._lock:
            for page in self._pages:
                digest.update(page.data if page is not None else b"")
        return digest.hexdigest()

    def _page(self, page_id: int) -> _StoredPage:
        if not 0 <= page_id < len(self._pages):
            raise PageNotAllocatedError(f"page {page_id} was never allocated")
        page = self._pages[page_id]
        assert page is not None
        return page

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockDevice(pages={self.num_pages}, page_size={self.page_size}, "
            f"reads={self.stats.reads}, writes={self.stats.writes})"
        )
