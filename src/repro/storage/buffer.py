"""LRU buffer pool.

Sits between storage structures and the :class:`~repro.storage.device.BlockDevice`.
A hit serves the cached image for free; a miss reads through to the device
(which is where I/O is metered) and may evict the least-recently-used frame,
writing it back if dirty.

Query executors snapshot device stats around a query, so the pool's size is
part of the experimental configuration: the paper's query-time comparisons
assume a cold-ish cache for the base data, and our benches call
:meth:`BufferPool.clear` between queries to match.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .device import BlockDevice, StorageError


@dataclass
class BufferStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0


class _Frame:
    __slots__ = ("data", "dirty", "pins")

    def __init__(self, data: bytes):
        self.data = data
        self.dirty = False
        self.pins = 0


class BufferPool:
    """A fixed-capacity LRU cache of page images.

    Parameters
    ----------
    device:
        Backing block device.
    capacity:
        Maximum number of resident frames.  Must be at least 1.
    """

    def __init__(self, device: BlockDevice, capacity: int = 256):
        if capacity < 1:
            raise ValueError("buffer pool capacity must be >= 1")
        self.device = device
        self.capacity = capacity
        self.stats = BufferStats()
        self._frames: OrderedDict[int, _Frame] = OrderedDict()

    # ------------------------------------------------------------------
    def get(self, page_id: int) -> bytes:
        """Return the page image, reading through on a miss."""
        frame = self._frames.get(page_id)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(page_id)
            return frame.data
        self.stats.misses += 1
        data = self.device.read(page_id)
        self._admit(page_id, _Frame(data))
        return data

    def put(self, page_id: int, data: bytes) -> None:
        """Install a new image for ``page_id`` and mark it dirty."""
        frame = self._frames.get(page_id)
        if frame is None:
            frame = _Frame(data)
            frame.dirty = True
            self._admit(page_id, frame)
        else:
            frame.data = data
            frame.dirty = True
            self._frames.move_to_end(page_id)

    def pin(self, page_id: int) -> bytes:
        """Get a page and protect it from eviction until unpinned."""
        data = self.get(page_id)
        self._frames[page_id].pins += 1
        return data

    def unpin(self, page_id: int) -> None:
        frame = self._frames.get(page_id)
        if frame is None or frame.pins == 0:
            raise StorageError(f"page {page_id} is not pinned")
        frame.pins -= 1

    def flush(self) -> None:
        """Write back every dirty frame (frames stay resident)."""
        for page_id, frame in self._frames.items():
            if frame.dirty:
                self.device.write(page_id, frame.data)
                frame.dirty = False
                self.stats.writebacks += 1

    def clear(self) -> None:
        """Flush and drop all frames — simulates a cold cache."""
        self.flush()
        pinned = [pid for pid, frame in self._frames.items() if frame.pins]
        if pinned:
            raise StorageError(f"cannot clear pool with pinned pages: {pinned}")
        self._frames.clear()

    @property
    def resident(self) -> int:
        return len(self._frames)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames

    # ------------------------------------------------------------------
    def _admit(self, page_id: int, frame: _Frame) -> None:
        while len(self._frames) >= self.capacity:
            victim_id = self._find_victim()
            victim = self._frames.pop(victim_id)
            if victim.dirty:
                self.device.write(victim_id, victim.data)
                self.stats.writebacks += 1
            self.stats.evictions += 1
        self._frames[page_id] = frame

    def _find_victim(self) -> int:
        for page_id, frame in self._frames.items():
            if frame.pins == 0:
                return page_id
        raise StorageError("all buffer frames are pinned; cannot evict")
