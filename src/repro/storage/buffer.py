"""LRU buffer pool.

Sits between storage structures and the :class:`~repro.storage.device.BlockDevice`.
A hit serves the cached image for free; a miss reads through to the device
(which is where I/O is metered) and may evict the least-recently-used frame,
writing it back if dirty.

The pool is also where the storage stack's fault tolerance lives: every
device read and write goes through a retry-with-backoff loop (see
:class:`~repro.storage.faults.RetryPolicy`) that absorbs transient injected
faults and checksum mismatches.  A dirty frame whose write-back keeps
failing is *never* dropped — it stays resident with its dirty bit set, so
no acknowledged write is lost to a fault.

Query executors snapshot device stats around a query, so the pool's size is
part of the experimental configuration: the paper's query-time comparisons
assume a cold-ish cache for the base data, and our benches call
:meth:`BufferPool.clear` between queries to match.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..obs.metrics import RegistryStatsView
from .device import BlockDevice, PageCorruptionError, StorageError
from .faults import RetryExhaustedError, RetryPolicy, TransientStorageFault

#: Default number of lock stripes for page latches (see BufferPool).
DEFAULT_LATCH_STRIPES = 16


class BufferStats(RegistryStatsView):
    """Pool counters, backed by the same registry as the device's.

    ``storage.buffer.misses`` and ``storage.device.reads`` living in one
    registry is what lets the invariant suite assert *device reads ==
    buffer misses* instead of trusting two independent books.  Logical
    metrics count once per pool-level event (a miss that needed three
    attempts is one miss); the per-attempt traffic is the device view's
    ``retried_reads`` / ``retried_writes``, mirrored here as
    ``read_retries`` / ``write_retries`` for the retry loop's own
    bookkeeping.
    """

    _PREFIX = "storage.buffer."
    _FIELDS = (
        "hits",
        "misses",
        "evictions",
        "writebacks",
        "read_retries",
        "write_retries",
        "backoff_s",
    )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Frame:
    __slots__ = ("data", "dirty", "pins")

    def __init__(self, data: bytes):
        self.data = data
        self.dirty = False
        self.pins = 0


class BufferPool:
    """A fixed-capacity LRU cache of page images.

    Parameters
    ----------
    device:
        Backing block device (possibly a
        :class:`~repro.storage.faults.FaultyBlockDevice`).
    capacity:
        Maximum number of resident frames.  Must be at least 1.
    retry_policy:
        Retry-with-backoff contract for transient device faults.  The
        default policy retries a few times with simulated backoff; on a
        pristine device it never engages.
    """

    def __init__(
        self,
        device: BlockDevice,
        capacity: int = 256,
        retry_policy: RetryPolicy | None = None,
        latch_stripes: int = DEFAULT_LATCH_STRIPES,
    ):
        if capacity < 1:
            raise ValueError("buffer pool capacity must be >= 1")
        if latch_stripes < 1:
            raise ValueError("latch_stripes must be >= 1")
        self.device = device
        self.capacity = capacity
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        # The pool joins the device's metrics registry (one spine per
        # storage tree); devices without one get a private registry.
        self.registry = getattr(device, "registry", None)
        self.stats = BufferStats(self.registry)
        if self.registry is None:
            self.registry = self.stats.registry
        self._frames: OrderedDict[int, _Frame] = OrderedDict()
        # Concurrency protocol (the serving layer's read path):
        #   * ``_lock`` — the pool mutex — guards the frame map, the LRU
        #     order, pin counts, dirty bits, and stats.  Critical sections
        #     are pure in-memory bookkeeping, never device I/O (with one
        #     deliberate exception: eviction write-back, which stays under
        #     the mutex so a dirty victim can't be read half-written).
        #   * ``_latches`` — lock-striped page latches — serialize the
        #     *miss* path per page stripe, so concurrent readers missing
        #     on the same page issue one device read, not N.  Latch order
        #     is always latch-then-mutex; no code path acquires a latch
        #     while holding the mutex, which rules out deadlock.
        self.latch_stripes = latch_stripes
        self._lock = threading.RLock()
        self._latches = tuple(threading.Lock() for _ in range(latch_stripes))

    def _latch(self, page_id: int) -> threading.Lock:
        return self._latches[page_id % len(self._latches)]

    # Locks are process-local: strip on pickle (persist snapshots), rebuild
    # on unpickle.
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        del state["_latches"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()
        self._latches = tuple(threading.Lock() for _ in range(self.latch_stripes))

    # ------------------------------------------------------------------
    def get(self, page_id: int) -> bytes:
        """Return the page image, reading through on a miss."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.stats.inc("hits")
                self._frames.move_to_end(page_id)
                return frame.data
        with self._latch(page_id):
            # recheck: another thread may have admitted it while we waited
            with self._lock:
                frame = self._frames.get(page_id)
                if frame is not None:
                    self.stats.inc("hits")
                    self._frames.move_to_end(page_id)
                    return frame.data
                self.stats.inc("misses")
            data = self._read_with_retry(page_id)
            with self._lock:
                self._admit(page_id, _Frame(data))
            return data

    def put(self, page_id: int, data: bytes) -> None:
        """Install a new image for ``page_id`` and mark it dirty."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                frame = _Frame(data)
                frame.dirty = True
                self._admit(page_id, frame)
            else:
                frame.data = data
                frame.dirty = True
                self._frames.move_to_end(page_id)

    def pin(self, page_id: int) -> bytes:
        """Get a page and protect it from eviction until unpinned."""
        with self._latch(page_id):
            with self._lock:
                frame = self._frames.get(page_id)
                if frame is not None:
                    self.stats.inc("hits")
                    self._frames.move_to_end(page_id)
                    frame.pins += 1
                    return frame.data
                self.stats.inc("misses")
            data = self._read_with_retry(page_id)
            with self._lock:
                frame = _Frame(data)
                frame.pins = 1
                self._admit(page_id, frame)
            return data

    def unpin(self, page_id: int) -> None:
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None or frame.pins == 0:
                raise StorageError(f"page {page_id} is not pinned")
            frame.pins -= 1

    def invalidate(self, page_id: int) -> None:
        """Drop a clean cached frame so the next access refetches from disk.

        The quarantine step of corruption handling: when a caller decodes a
        cached image and finds it damaged, it invalidates the frame and
        re-reads.  Dirty or pinned frames hold unacknowledged state and are
        refused.
        """
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                return
            if frame.dirty:
                raise StorageError(f"refusing to invalidate dirty page {page_id}")
            if frame.pins:
                raise StorageError(f"refusing to invalidate pinned page {page_id}")
            del self._frames[page_id]

    def flush(self) -> None:
        """Write back every dirty frame (frames stay resident).

        A frame whose write-back fails even after retries keeps its dirty
        bit — the error escalates, but nothing is lost; a later flush can
        still succeed once the fault clears.
        """
        with self._lock:
            for page_id, frame in self._frames.items():
                if frame.dirty:
                    self._write_with_retry(page_id, frame.data)
                    frame.dirty = False
                    self.stats.inc("writebacks")

    def clear(self) -> None:
        """Flush and drop all frames — simulates a cold cache."""
        with self._lock:
            self.flush()
            pinned = [pid for pid, frame in self._frames.items() if frame.pins]
            if pinned:
                raise StorageError(f"cannot clear pool with pinned pages: {pinned}")
            self._frames.clear()

    def crash(self) -> None:
        """Discard every frame *without* flushing — simulates process death.

        Dirty pages that were never written back are simply gone, exactly
        as a crash would lose them; the device keeps whatever images the
        last successful writes left.  Pins are irrelevant to a dead
        process, so they are discarded too.
        """
        with self._lock:
            self._frames.clear()

    @property
    def resident(self) -> int:
        with self._lock:
            return len(self._frames)

    @property
    def dirty_pages(self) -> list[int]:
        """Page ids of resident dirty frames (unflushed state)."""
        with self._lock:
            return [pid for pid, frame in self._frames.items() if frame.dirty]

    def is_dirty(self, page_id: int) -> bool:
        with self._lock:
            frame = self._frames.get(page_id)
            return frame is not None and frame.dirty

    def __contains__(self, page_id: int) -> bool:
        with self._lock:
            return page_id in self._frames

    # ------------------------------------------------------------------
    # retrying device I/O
    # ------------------------------------------------------------------
    def _read_with_retry(self, page_id: int) -> bytes:
        """Device read with transient-fault retries and corruption refetch.

        :class:`PageCorruptionError` is retried like a transient fault:
        nothing is cached yet, so the refetch *is* the quarantine — a
        damaged transfer is re-read from the stored image, and persistent
        on-disk damage escalates after the policy's attempts run out.
        """
        policy = self.retry_policy
        delays = policy.delays()
        attempt = 0
        while True:
            attempt += 1
            try:
                return self.device.read(page_id)
            except (TransientStorageFault, PageCorruptionError) as exc:
                delay = next(delays, None)
                if delay is None:
                    if isinstance(exc, PageCorruptionError):
                        # persistent on-disk damage: the structured
                        # corruption error is the meaningful one
                        raise
                    raise RetryExhaustedError(
                        f"read of page {page_id} failed after {attempt} "
                        f"attempt(s): {exc}",
                        page_id=page_id,
                        attempts=attempt,
                    ) from exc
                with self._lock:
                    self.stats.inc_many(read_retries=1, backoff_s=delay)
                policy.backoff(delay)

    def _write_with_retry(self, page_id: int, data: bytes) -> None:
        policy = self.retry_policy
        delays = policy.delays()
        attempt = 0
        while True:
            attempt += 1
            try:
                self.device.write(page_id, data)
                return
            except TransientStorageFault as exc:
                delay = next(delays, None)
                if delay is None:
                    raise RetryExhaustedError(
                        f"write of page {page_id} failed after {attempt} "
                        f"attempt(s): {exc}",
                        page_id=page_id,
                        attempts=attempt,
                    ) from exc
                with self._lock:
                    self.stats.inc_many(write_retries=1, backoff_s=delay)
                policy.backoff(delay)

    # ------------------------------------------------------------------
    def _admit(self, page_id: int, frame: _Frame) -> None:
        while len(self._frames) >= self.capacity:
            victim_id = self._find_victim()
            victim = self._frames.pop(victim_id)
            if victim.dirty:
                try:
                    self._write_with_retry(victim_id, victim.data)
                except StorageError:
                    # Write-back failed even after retries: the victim must
                    # not be evicted and must keep its dirty bit, or its
                    # unflushed state would be silently lost.  Reinsert at
                    # the cold end so it stays the preferred victim once
                    # the fault clears, then escalate.
                    self._frames[victim_id] = victim
                    self._frames.move_to_end(victim_id, last=False)
                    raise
                self.stats.inc("writebacks")
            self.stats.inc("evictions")
        self._frames[page_id] = frame

    def _find_victim(self) -> int:
        for page_id, frame in self._frames.items():
            if frame.pins == 0:
                return page_id
        raise StorageError("all buffer frames are pinned; cannot evict")
