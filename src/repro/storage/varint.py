"""Variable-length integer coding (LEB128-style) with zigzag for signed.

The compression layer for cuboid tid lists (Section 6 of the paper points
out that "a large portion of the space is used to store the cell
identifiers" and promises compression opportunities).  Unsigned varints
store 7 bits per byte with a continuation bit; zigzag maps signed deltas to
unsigned so small negative gaps stay short.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .device import StorageError


class VarintError(StorageError):
    """Raised on malformed varint streams."""


def encode_uvarint(value: int, out: bytearray) -> None:
    """Append the unsigned varint encoding of ``value`` to ``out``."""
    if value < 0:
        raise VarintError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode one unsigned varint at ``offset``; return (value, new offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise VarintError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise VarintError("varint too long")


def zigzag_encode(value: int) -> int:
    """Map signed to unsigned: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def zigzag_decode(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def encode_uvarint_sequence(values: Iterable[int]) -> bytes:
    """Encode a sequence of unsigned ints back to back."""
    out = bytearray()
    for value in values:
        encode_uvarint(value, out)
    return bytes(out)


def decode_uvarint_sequence(data: bytes, count: int, offset: int = 0) -> tuple[list[int], int]:
    """Decode ``count`` unsigned varints; return (values, new offset)."""
    values = []
    for _ in range(count):
        value, offset = decode_uvarint(data, offset)
        values.append(value)
    return values, offset


def delta_encode_sorted(values: Sequence[int]) -> bytes:
    """Gap-encode a non-decreasing unsigned sequence (count-prefixed)."""
    out = bytearray()
    encode_uvarint(len(values), out)
    previous = 0
    for value in values:
        gap = value - previous
        if gap < 0:
            raise VarintError("delta_encode_sorted requires a sorted sequence")
        encode_uvarint(gap, out)
        previous = value
    return bytes(out)


def delta_decode_sorted(data: bytes, offset: int = 0) -> tuple[list[int], int]:
    """Inverse of :func:`delta_encode_sorted`."""
    count, offset = decode_uvarint(data, offset)
    values = []
    current = 0
    for _ in range(count):
        gap, offset = decode_uvarint(data, offset)
        current += gap
        values.append(current)
    return values, offset
