"""Heap files: unordered fixed-length-record table storage.

A heap file is a chain of :class:`~repro.storage.pages.RecordPage` images.
Records are addressed by *rid* ``(page_index, slot)`` where ``page_index``
is the position in the chain (not the raw device page id); this keeps rids
stable and compact.  The heap supports the two access paths the paper's
baselines need: full sequential scan and random fetch by rid.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .buffer import BufferPool
from .device import PageCorruptionError, StorageError
from .pages import RecordCodec, RecordPage

Rid = tuple[int, int]


class HeapFile:
    """An append-only heap of fixed-length records.

    Parameters
    ----------
    pool:
        Buffer pool through which all page I/O flows.
    codec:
        Record codec describing the record layout.
    """

    def __init__(self, pool: BufferPool, codec: RecordCodec):
        self.pool = pool
        self.codec = codec
        self.page_size = pool.device.page_size
        self._page_ids: list[int] = []
        self._num_records = 0
        self._tail: RecordPage | None = None  # write buffer for the last page

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def append(self, record: tuple) -> Rid:
        """Append one record and return its rid."""
        tail = self._writable_tail()
        slot = tail.append(record)
        self._num_records += 1
        self._flush_tail()
        return (len(self._page_ids) - 1, slot)

    def extend(self, records: Iterable[tuple]) -> list[Rid]:
        """Bulk append; far fewer page writes than repeated :meth:`append`."""
        rids: list[Rid] = []
        tail = self._writable_tail()
        for record in records:
            if tail.is_full:
                self._flush_tail()
                tail = self._new_tail()
            slot = tail.append(record)
            rids.append((len(self._page_ids) - 1, slot))
            self._num_records += 1
        self._flush_tail()
        return rids

    def bulk_load(self, records: Iterable[tuple]) -> list[Rid]:
        """Sequentially load an *empty* heap in one pass, then seal it.

        Allocates the full extent up front (consecutive page ids) and
        writes each fully-packed page image exactly once, in page-id
        order — so the device meters the load as one sequential write
        stream (see ``IOStats.sequential_writes``) instead of the
        write-rewrite pattern :meth:`extend` produces while linking tail
        pages.  The resulting pages (records, chain links, padding) are
        byte-identical to an ``extend`` + ``seal`` of the same records.

        On a non-empty heap this degrades to :meth:`extend` + :meth:`seal`
        (the packing invariant — all pages full except the last — only
        holds when we own the whole chain).
        """
        records = list(records)
        if self._page_ids or self._tail is not None:
            rids = self.extend(records)
            self.seal()
            return rids
        if not records:
            return []
        capacity = self.codec.capacity(self.page_size)
        num_pages = -(-len(records) // capacity)
        page_ids = self.pool.device.allocate_many(num_pages)
        rids: list[Rid] = []
        for index, page_id in enumerate(page_ids):
            page = RecordPage(self.codec, self.page_size)
            chunk = records[index * capacity:(index + 1) * capacity]
            for slot, record in enumerate(chunk):
                page.append(record)
                rids.append((index, slot))
            if index + 1 < len(page_ids):
                page.next_page_id = page_ids[index + 1]
            self.pool.put(page_id, page.to_bytes())
        self._page_ids = page_ids
        self._num_records = len(records)
        self._tail = None  # already sealed: every image is final
        return rids

    def seal(self) -> None:
        """Drop the in-memory tail write buffer.

        After bulk loading, call this so every subsequent read — including
        reads of the last page — flows through the buffer pool and is
        metered like any other access.  Appending after ``seal`` reloads the
        tail transparently.
        """
        self._flush_tail()
        self._tail = None

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def fetch(self, rid: Rid) -> tuple:
        """Random access: fetch one record by rid."""
        page_index, slot = rid
        page = self._load_page(page_index)
        if slot >= len(page.records):
            raise StorageError(f"rid {rid} has no record (page holds {len(page.records)})")
        return page.records[slot]

    def fetch_page(self, page_index: int) -> list[tuple]:
        """Fetch every record on one page (block-level access)."""
        return list(self._load_page(page_index).records)

    def scan(self) -> Iterator[tuple[Rid, tuple]]:
        """Sequential scan over all records in storage order."""
        for page_index in range(len(self._page_ids)):
            for slot, record in enumerate(self._load_page(page_index).records):
                yield (page_index, slot), record

    def scan_records(self) -> Iterator[tuple]:
        """Sequential scan yielding bare records."""
        for _rid, record in self.scan():
            yield record

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_records

    @property
    def num_pages(self) -> int:
        return len(self._page_ids)

    @property
    def size_in_bytes(self) -> int:
        return self.num_pages * self.page_size

    @property
    def records_per_page(self) -> int:
        return self.codec.capacity(self.page_size)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _writable_tail(self) -> RecordPage:
        if self._tail is None and self._page_ids:
            # reload the last page after a seal()
            data = self.pool.get(self._page_ids[-1])
            self._tail = RecordPage.from_bytes(data, self.codec, self.page_size)
        if self._tail is None or self._tail.is_full:
            return self._new_tail()
        return self._tail

    def _new_tail(self) -> RecordPage:
        page_id = self.pool.device.allocate()
        if self._page_ids:
            # link previous tail to the new page
            prev = self._load_page(len(self._page_ids) - 1)
            prev.next_page_id = page_id
            self.pool.put(self._page_ids[-1], prev.to_bytes())
        self._page_ids.append(page_id)
        self._tail = RecordPage(self.codec, self.page_size)
        return self._tail

    def _flush_tail(self) -> None:
        if self._tail is not None and self._page_ids:
            self.pool.put(self._page_ids[-1], self._tail.to_bytes())

    def _load_page(self, page_index: int) -> RecordPage:
        if not 0 <= page_index < len(self._page_ids):
            raise StorageError(f"heap has no page {page_index}")
        if self._tail is not None and page_index == len(self._page_ids) - 1:
            return self._tail
        page_id = self._page_ids[page_index]
        data = self.pool.get(page_id)
        try:
            return RecordPage.from_bytes(data, self.codec, self.page_size, page_id)
        except PageCorruptionError:
            # Quarantine-and-refetch: the cached image decoded as damaged;
            # drop the frame and re-read the stored image once.  Persistent
            # on-disk damage raises again, typed, from the refetch/decode.
            self.pool.invalidate(page_id)
            data = self.pool.get(page_id)
            return RecordPage.from_bytes(data, self.codec, self.page_size, page_id)
