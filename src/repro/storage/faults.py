"""Deterministic fault injection for the storage substrate.

The paper's experiments assume a disk that never fails; a production system
cannot.  This module makes the simulated device *misbehave on purpose* so
every layer above it — buffer pool, heap files, blob store, cuboids, the
query executor — can prove it either recovers or fails with a typed error,
never a silent wrong answer.

Three pieces:

* :class:`FaultRule` / :class:`FaultInjector` — a declarative, seedable
  fault plan.  Rules select accesses by operation, page id (explicit set or
  predicate), trigger mode (probability or exact nth matching access), and
  a trigger budget, so schedules are reproducible from a single seed.
* :class:`FaultyBlockDevice` — composes over any
  :class:`~repro.storage.device.BlockDevice` and injects read errors, write
  errors, torn (partial) writes, silent bit-flips, and latency spikes.  It
  keeps its own shadow checksums for every page written through it, so an
  in-transit bit-flip — silent at injection time — is detected on delivery
  and surfaces as a :class:`~repro.storage.device.PageCorruptionError`.
* :class:`RetryPolicy` — the retry-with-backoff contract threaded through
  :class:`~repro.storage.buffer.BufferPool`: transient faults are retried
  up to ``max_attempts`` times with exponential (simulated) backoff, then
  the final typed error escalates to the caller.
"""

from __future__ import annotations

import random
import threading
import zlib
from dataclasses import dataclass, field
from typing import Callable, Collection, Iterable, Iterator, Sequence

from .device import BlockDevice, IOStats, PageCorruptionError, StorageError

#: Fault kinds understood by :class:`FaultInjector`.
READ_ERROR = "read_error"
WRITE_ERROR = "write_error"
TORN_WRITE = "torn_write"
BIT_FLIP = "bit_flip"
LATENCY = "latency"

FAULT_KINDS = (READ_ERROR, WRITE_ERROR, TORN_WRITE, BIT_FLIP, LATENCY)

#: Which device operation each fault kind applies to.
_FAULT_OPS = {
    READ_ERROR: "read",
    WRITE_ERROR: "write",
    TORN_WRITE: "write",
    BIT_FLIP: "read",
    LATENCY: None,  # either
}


class TransientStorageFault(StorageError):
    """Marker base for injected faults that a retry may clear.

    The buffer pool's retry loop catches exactly this (plus
    :class:`~repro.storage.device.PageCorruptionError`, whose
    quarantine-and-refetch handling is equivalent); anything else —
    unallocated pages, format violations — escalates immediately.
    """

    def __init__(self, message: str, *, page_id: int | None = None):
        super().__init__(message)
        self.page_id = page_id


class TransientReadError(TransientStorageFault):
    """An injected read failure (the stored image is intact)."""


class TransientWriteError(TransientStorageFault):
    """An injected write failure (nothing reached the stored image)."""


class TornWriteError(TransientWriteError):
    """A write that only partially reached the stored image.

    The damaged page carries a stale checksum, so until a retry rewrites it
    in full, reads of it raise
    :class:`~repro.storage.device.PageCorruptionError`.
    """


class RetryExhaustedError(StorageError):
    """All retry attempts failed; carries the final underlying error."""

    def __init__(self, message: str, *, page_id: int | None = None, attempts: int = 0):
        super().__init__(message)
        self.page_id = page_id
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry contract for transient storage faults.

    Backoff is *simulated*: delays are accounted (so schedules stay
    deterministic and tests stay fast) and only actually slept when a
    ``sleep`` callable is supplied.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.001
    multiplier: float = 2.0
    max_delay_s: float = 0.1
    sleep: Callable[[float], None] | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delays(self) -> Iterator[float]:
        """Backoff delay before each retry (``max_attempts - 1`` values)."""
        delay = self.base_delay_s
        for _ in range(self.max_attempts - 1):
            yield min(delay, self.max_delay_s)
            delay *= self.multiplier

    def backoff(self, delay_s: float) -> None:
        if self.sleep is not None and delay_s > 0:
            self.sleep(delay_s)


@dataclass
class FaultRule:
    """One declarative fault: *what* to inject and *when* it triggers.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    probability:
        Chance of triggering on each matching access (ignored when ``nth``
        is given).  Drawn from the injector's seeded RNG.
    nth:
        Trigger deterministically on the nth matching access (1-based).
        Implies ``max_triggers=1`` unless overridden.
    page_ids / predicate:
        Restrict matching to an explicit page-id set and/or an arbitrary
        ``page_id -> bool`` predicate.  Both default to "any page".
    max_triggers:
        Stop injecting after this many triggers (``None`` = unlimited).
        Transient schedules use small budgets so retries eventually win.
    latency_s:
        Simulated delay for :data:`LATENCY` rules (accounted, not slept).
    """

    kind: str
    probability: float = 1.0
    nth: int | None = None
    page_ids: Collection[int] | None = None
    predicate: Callable[[int], bool] | None = None
    max_triggers: int | None = None
    latency_s: float = 0.005
    # mutable bookkeeping, managed by the injector
    matches: int = field(default=0, repr=False)
    triggers: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.nth is not None and self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if self.nth is not None and self.max_triggers is None:
            self.max_triggers = 1
        if self.page_ids is not None:
            self.page_ids = frozenset(self.page_ids)

    def applies_to(self, op: str) -> bool:
        fault_op = _FAULT_OPS[self.kind]
        return fault_op is None or fault_op == op

    def matches_page(self, page_id: int) -> bool:
        if self.page_ids is not None and page_id not in self.page_ids:
            return False
        if self.predicate is not None and not self.predicate(page_id):
            return False
        return True


@dataclass
class FaultStats:
    """Counts of injected faults, by kind, plus accounted latency."""

    injected: dict[str, int] = field(default_factory=dict)
    simulated_latency_s: float = 0.0

    def count(self, kind: str) -> int:
        return self.injected.get(kind, 0)

    @property
    def total(self) -> int:
        return sum(self.injected.values())

    def record(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def reset(self) -> None:
        self.injected.clear()
        self.simulated_latency_s = 0.0


class FaultInjector:
    """Seeded, declarative decision-maker for a :class:`FaultyBlockDevice`.

    The same seed and rule list always produce the same fault schedule for
    the same access sequence, which is what makes the crash-consistency
    harness and the fault-matrix benchmark reproducible.
    """

    def __init__(self, seed: int = 0, rules: Iterable[FaultRule] = ()):
        self.seed = seed
        self.rng = random.Random(seed)
        self.rules: list[FaultRule] = list(rules)
        self.stats = FaultStats()
        self.enabled = True

    # ------------------------------------------------------------------
    def add_rule(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    def arm(self) -> None:
        self.enabled = True

    def disarm(self) -> None:
        """Stop injecting (rule bookkeeping freezes too)."""
        self.enabled = False

    # ------------------------------------------------------------------
    def decide(self, op: str, page_id: int) -> list[FaultRule]:
        """Rules triggering on this access, in declaration order.

        At most one *erroring* rule is returned (the first to trigger);
        :data:`LATENCY` rules stack freely in front of it, since a slow
        access can also fail.
        """
        if not self.enabled:
            return []
        triggered: list[FaultRule] = []
        for rule in self.rules:
            if not rule.applies_to(op) or not rule.matches_page(page_id):
                continue
            if rule.max_triggers is not None and rule.triggers >= rule.max_triggers:
                continue
            rule.matches += 1
            if rule.nth is not None:
                fire = rule.matches == rule.nth
            else:
                fire = self.rng.random() < rule.probability
            if not fire:
                continue
            rule.triggers += 1
            self.stats.record(rule.kind)
            if rule.kind == LATENCY:
                self.stats.simulated_latency_s += rule.latency_s
                triggered.append(rule)
                continue
            triggered.append(rule)
            break  # one error per access is enough
        return triggered


class FaultyBlockDevice:
    """A :class:`BlockDevice` wrapper that injects faults on the way through.

    Composes over *any* object with the block-device interface; all metering
    flows to the inner device's :class:`~repro.storage.device.IOStats`
    (shared via :attr:`stats`), with failed attempts reclassified as
    ``retried_reads`` / ``retried_writes`` so successful-delivery counts
    stay comparable to a pristine run.

    The wrapper records a shadow CRC-32 for every page allocated or written
    through it.  Reads are verified against the shadow checksum *after*
    fault injection, which is how silent in-transit bit-flips become
    detectable :class:`~repro.storage.device.PageCorruptionError`\\ s — and a
    retry, which re-reads the intact stored image, clears them.
    """

    def __init__(
        self,
        inner: BlockDevice,
        injector: FaultInjector | None = None,
        verify_checksums: bool = True,
    ):
        self.inner = inner
        self.injector = injector if injector is not None else FaultInjector()
        self.verify_checksums = verify_checksums
        self._checksums: dict[int, int] = {}
        for page_id in range(inner.num_pages):
            self._checksums[page_id] = zlib.crc32(inner.read(page_id))
        inner.reset_stats()
        # Serializes fault decisions (seeded RNG + rule bookkeeping) and
        # shadow-checksum updates under the concurrent serving layer; the
        # injected schedule stays deterministic *per access sequence*, and
        # the lock is what keeps that sequence well-defined.
        self._lock = threading.RLock()

    # Locks are process-local: strip on pickle (persist snapshots), rebuild
    # on unpickle.
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # passthrough surface
    # ------------------------------------------------------------------
    @property
    def page_size(self) -> int:
        return self.inner.page_size

    @property
    def stats(self) -> IOStats:
        return self.inner.stats

    @property
    def registry(self):
        """The inner device's metrics registry (one spine per tree)."""
        return self.inner.registry

    @property
    def fault_stats(self) -> FaultStats:
        return self.injector.stats

    @property
    def num_pages(self) -> int:
        return self.inner.num_pages

    @property
    def size_in_bytes(self) -> int:
        return self.inner.size_in_bytes

    def allocate(self) -> int:
        with self._lock:
            page_id = self.inner.allocate()
            self._checksums[page_id] = zlib.crc32(bytes(self.page_size))
            return page_id

    def allocate_many(self, count: int) -> list[int]:
        return [self.allocate() for _ in range(count)]

    def corrupt(self, page_id: int, offset: int = 0) -> None:
        self.inner.corrupt(page_id, offset)

    def patch(self, page_id: int, data: bytes, *, update_checksum: bool = False) -> None:
        self.inner.patch(page_id, data, update_checksum=update_checksum)

    def reset_stats(self) -> None:
        self.inner.reset_stats()

    def fingerprint(self) -> str:
        return self.inner.fingerprint()

    # ------------------------------------------------------------------
    # faulty I/O
    # ------------------------------------------------------------------
    def read(self, page_id: int) -> bytes:
        with self._lock:
            return self._read_locked(page_id)

    def _read_locked(self, page_id: int) -> bytes:
        rules = self.injector.decide("read", page_id)
        error_rule = next((r for r in rules if r.kind != LATENCY), None)
        if error_rule is not None and error_rule.kind == READ_ERROR:
            # The wrapper mutates the *inner* device's counters from
            # outside the inner device's lock, so every adjustment here
            # must go through the stats view's atomic path (one mutex —
            # the registry's) rather than plain ``+=``.
            self.stats.inc("retried_reads")
            raise TransientReadError(
                f"injected read error on page {page_id}", page_id=page_id
            )

        seq_before = self.stats.sequential_reads
        data = self.inner.read(page_id)  # meters one successful read

        if error_rule is not None and error_rule.kind == BIT_FLIP:
            flipped = bytearray(data)
            offset = self.injector.rng.randrange(len(flipped))
            flipped[offset] ^= 1 << self.injector.rng.randrange(8)
            data = bytes(flipped)

        if self.verify_checksums:
            expected = self._checksums.get(page_id)
            actual = zlib.crc32(data)
            if expected is not None and actual != expected:
                # the metered read delivered garbage: reclassify as a
                # retry — one atomic multi-field adjustment, so no reader
                # ever observes the counters mid-reclassification
                was_sequential = self.stats.sequential_reads > seq_before
                self.stats.inc_many(
                    reads=-1,
                    bytes_read=-self.page_size,
                    sequential_reads=-1 if was_sequential else 0,
                    random_reads=0 if was_sequential else -1,
                    retried_reads=1,
                )
                raise PageCorruptionError(
                    f"checksum mismatch on page {page_id} after transfer "
                    f"(expected {expected:#010x}, found {actual:#010x})",
                    page_id=page_id,
                    expected_checksum=expected,
                    actual_checksum=actual,
                )
        return data

    def write(self, page_id: int, data: bytes) -> None:
        with self._lock:
            self._write_locked(page_id, data)

    def _write_locked(self, page_id: int, data: bytes) -> None:
        rules = self.injector.decide("write", page_id)
        error_rule = next((r for r in rules if r.kind != LATENCY), None)
        if error_rule is not None and error_rule.kind == WRITE_ERROR:
            self.stats.inc("retried_writes")
            raise TransientWriteError(
                f"injected write error on page {page_id}", page_id=page_id
            )
        if error_rule is not None and error_rule.kind == TORN_WRITE:
            padded = bytes(data) + bytes(max(0, self.page_size - len(data)))
            torn_len = max(1, self.injector.rng.randrange(1, self.page_size))
            self.inner.patch(page_id, padded[:torn_len], update_checksum=False)
            self.stats.inc("retried_writes")
            raise TornWriteError(
                f"injected torn write on page {page_id} "
                f"({torn_len} of {self.page_size} bytes reached storage)",
                page_id=page_id,
            )
        self.inner.write(page_id, data)
        if len(data) < self.page_size:
            data = bytes(data) + bytes(self.page_size - len(data))
        self._checksums[page_id] = zlib.crc32(data)

    # ------------------------------------------------------------------
    def scrub(self) -> "ScrubReport":
        """Read every stored page image and report detectable damage.

        Scrubbing inspects the *stored* state (injection bypassed), so it
        answers the crash-consistency question: after a crash, is every
        page either readable or detectably invalid?
        """
        corrupt: list[int] = []
        unreadable: list[int] = []
        for page_id in range(self.inner.num_pages):
            try:
                data = self.inner.read(page_id)
            except PageCorruptionError:
                corrupt.append(page_id)
                continue
            except StorageError:
                unreadable.append(page_id)
                continue
            expected = self._checksums.get(page_id)
            if expected is not None and zlib.crc32(data) != expected:
                corrupt.append(page_id)
        return ScrubReport(
            total_pages=self.inner.num_pages,
            corrupt_page_ids=tuple(corrupt),
            unreadable_page_ids=tuple(unreadable),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultyBlockDevice(pages={self.num_pages}, "
            f"faults={self.fault_stats.total}, rules={len(self.injector.rules)})"
        )


@dataclass(frozen=True)
class ScrubReport:
    """Outcome of :meth:`FaultyBlockDevice.scrub`."""

    total_pages: int
    corrupt_page_ids: tuple[int, ...]
    unreadable_page_ids: tuple[int, ...]

    @property
    def clean(self) -> bool:
        return not self.corrupt_page_ids and not self.unreadable_page_ids


def transient_fault_plan(
    seed: int,
    *,
    read_error_p: float = 0.05,
    write_error_p: float = 0.03,
    bit_flip_p: float = 0.02,
    torn_write_p: float = 0.01,
    latency_p: float = 0.02,
    max_triggers_per_rule: int | None = 64,
) -> FaultInjector:
    """A ready-made all-transient fault plan.

    Every fault it injects is cleared by a retry (read errors and bit-flips
    re-read the intact image; write errors and torn writes are healed by
    the retried full write), so any storage structure driven through a
    pool with a :class:`RetryPolicy` must produce *identical* results to a
    pristine device — the invariant
    ``tests/properties/test_fault_equivalence.py`` checks.
    """
    rules = [
        FaultRule(READ_ERROR, probability=read_error_p, max_triggers=max_triggers_per_rule),
        FaultRule(WRITE_ERROR, probability=write_error_p, max_triggers=max_triggers_per_rule),
        FaultRule(BIT_FLIP, probability=bit_flip_p, max_triggers=max_triggers_per_rule),
        FaultRule(TORN_WRITE, probability=torn_write_p, max_triggers=max_triggers_per_rule),
        FaultRule(LATENCY, probability=latency_p, max_triggers=max_triggers_per_rule),
    ]
    return FaultInjector(seed=seed, rules=rules)
