"""Byte-level page layouts.

Two layouts are provided:

* :class:`RecordPage` — fixed-length records packed with :mod:`struct`.
  Used by heap files, the base block table, and cuboid cell storage, where
  every record of a given table has the same shape.
* :class:`BytesPage` — a length-prefixed blob page used by the B+-tree,
  whose node images are variable length.

Both layouts begin with a small fixed header so a raw page image is
self-describing enough for integrity checks.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

from .device import PageCorruptionError, StorageError

#: Page-type tags written into the header byte.
PAGE_TYPE_RECORD = 1
PAGE_TYPE_BYTES = 2

_KNOWN_PAGE_TYPES = (PAGE_TYPE_RECORD, PAGE_TYPE_BYTES)

_HEADER = struct.Struct("<BxHI")  # type, pad, record_count/blob flag, next_page_id+1


NO_NEXT_PAGE = 0xFFFFFFFF


class PageFormatError(StorageError):
    """Raised when a page image does not match the expected layout.

    Distinct from :class:`~repro.storage.device.PageCorruptionError`: a
    format error means the caller decoded a *valid* page with the wrong
    codec or layout (a bug), while corruption means the image itself is
    structurally impossible (bit rot, torn write) — decoders raise the
    latter so damaged pages are detectably invalid, never silently wrong.
    """


class RecordCodec:
    """Packs/unpacks homogeneous records using a struct format string.

    The format uses :mod:`struct` notation without the byte-order prefix,
    e.g. ``"qdd"`` for ``(tid: int64, n1: float64, n2: float64)``.
    """

    def __init__(self, fmt: str):
        self._struct = struct.Struct("<" + fmt)
        self.fmt = fmt

    def __getstate__(self) -> str:
        # struct.Struct objects cannot be pickled; the format string can
        return self.fmt

    def __setstate__(self, fmt: str) -> None:
        self.__init__(fmt)

    @property
    def record_size(self) -> int:
        return self._struct.size

    def capacity(self, page_size: int) -> int:
        """How many records fit in one page of ``page_size`` bytes."""
        usable = page_size - _HEADER.size
        cap = usable // self.record_size
        if cap <= 0:
            raise PageFormatError(
                f"record of {self.record_size} bytes does not fit in a "
                f"{page_size}-byte page"
            )
        return cap

    def pack(self, records: Sequence[tuple]) -> bytes:
        return b"".join(self._struct.pack(*record) for record in records)

    def unpack(self, data: bytes, count: int) -> list[tuple]:
        size = self.record_size
        return [self._struct.unpack_from(data, i * size) for i in range(count)]


class RecordPage:
    """A fixed-length-record page bound to a :class:`RecordCodec`.

    Pages form singly linked chains via ``next_page_id`` so multi-page
    structures (heap files, cell overflow chains) can be walked without an
    external directory.
    """

    def __init__(self, codec: RecordCodec, page_size: int):
        self.codec = codec
        self.page_size = page_size
        self.records: list[tuple] = []
        self.next_page_id: int | None = None

    @property
    def capacity(self) -> int:
        return self.codec.capacity(self.page_size)

    @property
    def is_full(self) -> bool:
        return len(self.records) >= self.capacity

    def append(self, record: tuple) -> int:
        """Append one record, returning its slot number."""
        if self.is_full:
            raise PageFormatError("page is full")
        self.records.append(tuple(record))
        return len(self.records) - 1

    def extend(self, records: Iterable[tuple]) -> None:
        for record in records:
            self.append(record)

    def to_bytes(self) -> bytes:
        next_encoded = NO_NEXT_PAGE if self.next_page_id is None else self.next_page_id
        header = _HEADER.pack(PAGE_TYPE_RECORD, len(self.records), next_encoded)
        body = self.codec.pack(self.records)
        image = header + body
        if len(image) > self.page_size:
            raise PageFormatError("serialized page exceeds page size")
        return image

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        codec: RecordCodec,
        page_size: int,
        page_id: int | None = None,
    ) -> "RecordPage":
        page_type, count, next_encoded = _HEADER.unpack_from(data)
        if page_type not in _KNOWN_PAGE_TYPES:
            raise PageCorruptionError(
                f"unknown page type {page_type} (damaged header)", page_id=page_id
            )
        if page_type != PAGE_TYPE_RECORD:
            raise PageFormatError(f"expected record page, found type {page_type}")
        page = cls(codec, page_size)
        if count > page.capacity:
            raise PageCorruptionError(
                f"record count {count} exceeds page capacity {page.capacity} "
                "(damaged header)",
                page_id=page_id,
            )
        page.records = codec.unpack(data[_HEADER.size:], count)
        page.next_page_id = None if next_encoded == NO_NEXT_PAGE else next_encoded
        return page


class BytesPage:
    """A page holding a single variable-length payload (e.g. a tree node)."""

    def __init__(self, page_size: int, payload: bytes = b""):
        self.page_size = page_size
        self.payload = payload

    @property
    def max_payload(self) -> int:
        return self.page_size - _HEADER.size - 4

    def to_bytes(self) -> bytes:
        if len(self.payload) > self.max_payload:
            raise PageFormatError(
                f"payload of {len(self.payload)} bytes exceeds max {self.max_payload}"
            )
        header = _HEADER.pack(PAGE_TYPE_BYTES, 0, NO_NEXT_PAGE)
        return header + struct.pack("<I", len(self.payload)) + self.payload

    @classmethod
    def from_bytes(
        cls, data: bytes, page_size: int, page_id: int | None = None
    ) -> "BytesPage":
        page_type, _count, _next = _HEADER.unpack_from(data)
        if page_type not in _KNOWN_PAGE_TYPES:
            raise PageCorruptionError(
                f"unknown page type {page_type} (damaged header)", page_id=page_id
            )
        if page_type != PAGE_TYPE_BYTES:
            raise PageFormatError(f"expected bytes page, found type {page_type}")
        (length,) = struct.unpack_from("<I", data, _HEADER.size)
        start = _HEADER.size + 4
        if length > len(data) - start:
            raise PageCorruptionError(
                f"payload length {length} exceeds the {len(data) - start} bytes "
                "available in the page (damaged header)",
                page_id=page_id,
            )
        return cls(page_size, data[start:start + length])


def page_header_size() -> int:
    """Size in bytes of the common page header (exposed for space math)."""
    return _HEADER.size
