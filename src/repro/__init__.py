"""Ranking Cube: answering top-k queries with multi-dimensional selections.

A full reproduction of Xin, Han, Cheng & Li (VLDB 2006).  The public API:

* :class:`Database`, :class:`Schema`, :func:`selection_attr`,
  :func:`ranking_attr` — the relational substrate;
* :class:`RankingCube`, :class:`FragmentedRankingCube`,
  :class:`RankingCubeExecutor` — the paper's contribution;
* :class:`LinearFunction`, :class:`LpDistance`, :class:`ConvexFunction`
  and friends — convex ranking functions;
* :class:`BaselineExecutor`, :class:`RankMappingExecutor` — the paper's
  comparison methods;
* :func:`compile_topk` — the SQL front-end;
* :mod:`repro.workloads`, :mod:`repro.bench` — data/query generation and
  the per-figure experiment harness.

Quickstart::

    from repro import (
        Database, RankingCube, RankingCubeExecutor, compile_topk,
    )
    from repro.workloads import SyntheticSpec, generate

    dataset = generate(SyntheticSpec(num_tuples=10_000))
    db = Database()
    table = dataset.load_into(db)
    cube = RankingCube.build(table)
    executor = RankingCubeExecutor(cube, table)
    query = compile_topk(
        "SELECT TOP 5 FROM R WHERE a1 = 3 ORDER BY n1 + n2", dataset.schema
    )
    for row in executor.execute(query):
        print(row.tid, row.score)
"""

from .baselines import BaselineExecutor, OnionIndex, PreferView, RankMappingExecutor
from .core import (
    BlockGrid,
    EquiDepthPartitioner,
    EquiWidthPartitioner,
    FragmentedRankingCube,
    RankingCube,
    RankingCubeExecutor,
    RankingCuboid,
)
from .ranking import (
    ConvexFunction,
    LinearFunction,
    LpDistance,
    QuadraticForm,
    RankingFunction,
    descending,
)
from .relational import (
    Database,
    QueryResult,
    ResultRow,
    Schema,
    Table,
    TopKQuery,
    ranking_attr,
    selection_attr,
)
from .persist import PersistError, Workspace, load_workspace, save_workspace
from .sqlmini import compile_topk, parse_topk

__version__ = "1.0.0"

__all__ = [
    "BaselineExecutor",
    "BlockGrid",
    "ConvexFunction",
    "Database",
    "EquiDepthPartitioner",
    "EquiWidthPartitioner",
    "FragmentedRankingCube",
    "LinearFunction",
    "LpDistance",
    "OnionIndex",
    "PersistError",
    "PreferView",
    "QuadraticForm",
    "QueryResult",
    "RankMappingExecutor",
    "RankingCube",
    "RankingCubeExecutor",
    "RankingCuboid",
    "RankingFunction",
    "ResultRow",
    "Schema",
    "Table",
    "TopKQuery",
    "Workspace",
    "compile_topk",
    "load_workspace",
    "descending",
    "parse_topk",
    "ranking_attr",
    "save_workspace",
    "selection_attr",
    "__version__",
]
