"""Ranking functions and convex box minimization.

Implements the paper's function model (Definition 1: convex scoring
functions) plus the block lower-bound computation ``f(bid)`` needed by the
ranking-cube search step.
"""

from .boxmin import argmin_convex_over_box, golden_section_minimize, minimize_convex_over_box
from .functions import (
    ConvexFunction,
    LinearFunction,
    LpDistance,
    NegatedFunction,
    QuadraticForm,
    RankingFunction,
    RankingFunctionError,
    descending,
    is_convex_on_samples,
)

__all__ = [
    "ConvexFunction",
    "LinearFunction",
    "LpDistance",
    "NegatedFunction",
    "QuadraticForm",
    "RankingFunction",
    "RankingFunctionError",
    "argmin_convex_over_box",
    "descending",
    "golden_section_minimize",
    "is_convex_on_samples",
    "minimize_convex_over_box",
]
