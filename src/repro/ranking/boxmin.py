"""Minimization of convex functions over axis-aligned boxes.

The ranking-cube search step needs ``f(bid) = min over the block's box`` for
every frontier block (Section 3.2.2).  Linear and distance functions have
closed forms (implemented on their classes); this module supplies the
numeric fallback for generic convex callables: projected coordinate descent
with golden-section line searches, which converges for convex objectives on
boxes and needs no gradients.
"""

from __future__ import annotations

from typing import Callable, Sequence

_GOLDEN = (5 ** 0.5 - 1) / 2  # ~0.618


def golden_section_minimize(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> float:
    """Minimize a unimodal 1-d function on ``[lo, hi]``; return the argmin."""
    if hi < lo:
        raise ValueError(f"empty interval [{lo}, {hi}]")
    a, b = lo, hi
    c = b - _GOLDEN * (b - a)
    d = a + _GOLDEN * (b - a)
    fc, fd = fn(c), fn(d)
    for _ in range(max_iter):
        if b - a < tol:
            break
        if fc <= fd:
            b, d, fd = d, c, fc
            c = b - _GOLDEN * (b - a)
            fc = fn(c)
        else:
            a, c, fc = c, d, fd
            d = a + _GOLDEN * (b - a)
            fd = fn(d)
    return (a + b) / 2


def argmin_convex_over_box(
    fn: Callable[[Sequence[float]], float],
    lower: Sequence[float],
    upper: Sequence[float],
    tol: float = 1e-8,
    max_rounds: int = 100,
) -> tuple[float, ...]:
    """Approximate argmin of a convex ``fn`` over ``[lower, upper]``.

    Cyclic coordinate descent: each round line-searches every coordinate on
    its interval with the others held fixed.  For convex (not necessarily
    differentiable along coordinates... but separably unimodal) objectives
    this converges to a global minimizer on a box; the functions used in
    ranking workloads (sums of convex 1-d terms, PSD quadratics) satisfy
    this.  Rounds stop when an entire sweep improves the value by < tol.
    """
    lower = [float(v) for v in lower]
    upper = [float(v) for v in upper]
    if len(lower) != len(upper):
        raise ValueError("lower/upper length mismatch")
    for lo, hi in zip(lower, upper):
        if hi < lo:
            raise ValueError(f"empty box: [{lo}, {hi}]")

    point = [(lo + hi) / 2 for lo, hi in zip(lower, upper)]
    best = fn(point)
    for _ in range(max_rounds):
        improved = False
        for i in range(len(point)):
            lo, hi = lower[i], upper[i]
            if hi - lo < tol:
                continue

            def along(x: float, i: int = i) -> float:
                trial = list(point)
                trial[i] = x
                return fn(trial)

            x_star = golden_section_minimize(along, lo, hi, tol=tol / 10)
            value = along(x_star)
            if value < best - tol:
                best = value
                point[i] = x_star
                improved = True
            elif value < best:
                best = value
                point[i] = x_star
        if not improved:
            break
    return tuple(point)


def minimize_convex_over_box(
    fn: Callable[[Sequence[float]], float],
    lower: Sequence[float],
    upper: Sequence[float],
    tol: float = 1e-8,
) -> float:
    """Approximate minimum value of a convex ``fn`` over a box."""
    return float(fn(argmin_convex_over_box(fn, lower, upper, tol=tol)))
