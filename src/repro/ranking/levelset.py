"""Bounding boxes of convex level sets.

The rank-mapping baseline [Chang/Hristidis-style top-k-to-range mapping,
reference [4] of the paper] rewrites ``TOP k ... ORDER BY f`` into a range
query: given a score threshold ``s`` (the paper feeds the *optimal* value,
the true k-th score), it needs per-dimension bounds ``n_i`` such that every
tuple with ``f(x) <= s`` satisfies ``lo_i <= x_i <= hi_i``.

For a convex ``f`` on a box, ``g_i(c) = min f over the box with x_i fixed
at c`` is convex in ``c``, so the extreme coordinates of the level set can
be found by bisection on each side of the minimizer.  Linear and
Lp-distance functions get exact closed forms.
"""

from __future__ import annotations

from typing import Sequence

from .boxmin import minimize_convex_over_box
from .functions import LinearFunction, LpDistance, RankingFunction


def level_set_box(
    fn: RankingFunction,
    threshold: float,
    lower: Sequence[float],
    upper: Sequence[float],
    tol: float = 1e-6,
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Tight per-dimension bounds of ``{x in box : f(x) <= threshold}``.

    Returns ``(lo, hi)`` tuples.  If the level set is empty (threshold
    below the box minimum), returns the degenerate box at the minimizer.
    """
    lower = [float(v) for v in lower]
    upper = [float(v) for v in upper]
    if isinstance(fn, LinearFunction):
        return _linear_bounds(fn, threshold, lower, upper)
    if isinstance(fn, LpDistance):
        return _lp_bounds(fn, threshold, lower, upper)
    return _generic_bounds(fn, threshold, lower, upper, tol)


def _linear_bounds(
    fn: LinearFunction, threshold: float, lower: list[float], upper: list[float]
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    los: list[float] = []
    his: list[float] = []
    for i, w in enumerate(fn.weights):
        rest = sum(
            wj * (lo if wj >= 0 else hi)
            for j, (wj, lo, hi) in enumerate(zip(fn.weights, lower, upper))
            if j != i
        )
        budget = threshold - fn.offset - rest
        if w > 0:
            los.append(lower[i])
            his.append(min(upper[i], max(lower[i], budget / w)))
        elif w < 0:
            his.append(upper[i])
            los.append(max(lower[i], min(upper[i], budget / w)))
        else:
            los.append(lower[i])
            his.append(upper[i])
    return tuple(los), tuple(his)


def _lp_bounds(
    fn: LpDistance, threshold: float, lower: list[float], upper: list[float]
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    los: list[float] = []
    his: list[float] = []
    for i, (w, t) in enumerate(zip(fn.weights, fn.target)):
        if w <= 0 or threshold < 0:
            # weight 0: the dimension is unconstrained by the level set
            reach = float("inf") if threshold >= 0 else 0.0
        else:
            reach = (threshold / w) ** (1.0 / fn.p)
        los.append(max(lower[i], t - reach))
        his.append(min(upper[i], t + reach))
        if los[i] > his[i]:  # empty set: collapse to the clamped target
            clamped = min(max(t, lower[i]), upper[i])
            los[i] = his[i] = clamped
    return tuple(los), tuple(his)


def _generic_bounds(
    fn: RankingFunction,
    threshold: float,
    lower: list[float],
    upper: list[float],
    tol: float,
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    minimizer = fn.argmin_over_box(lower, upper)
    if fn.score(minimizer) > threshold:
        return tuple(minimizer), tuple(minimizer)
    los: list[float] = []
    his: list[float] = []
    for i in range(fn.arity):

        def sliced_min(c: float, i: int = i) -> float:
            lo = list(lower)
            hi = list(upper)
            lo[i] = hi[i] = c
            return minimize_convex_over_box(fn.score, lo, hi)

        his.append(
            _bisect_boundary(sliced_min, minimizer[i], upper[i], threshold, tol)
        )
        los.append(
            _bisect_boundary(sliced_min, minimizer[i], lower[i], threshold, tol)
        )
    return tuple(los), tuple(his)


def _bisect_boundary(sliced_min, start: float, limit: float, threshold: float, tol: float) -> float:
    """Furthest coordinate from ``start`` toward ``limit`` still in the set.

    ``sliced_min`` is convex, minimal near ``start``, and non-decreasing
    toward ``limit``; bisection finds where it crosses ``threshold``.
    """
    if sliced_min(limit) <= threshold:
        return limit
    inside, outside = start, limit
    while abs(outside - inside) > tol:
        mid = (inside + outside) / 2
        if sliced_min(mid) <= threshold:
            inside = mid
        else:
            outside = mid
    # return the outside edge so the bound is conservative (a superset)
    return outside
