"""Ranking functions.

A ranking function scores a point in the unit hypercube ``[0, 1]^r`` spanned
by the query's ranking dimensions; top-k queries return the k tuples with
the smallest scores (Section 2 of the paper fixes ascending order without
loss of generality; :func:`descending` rewrites the other direction).

The ranking-cube query algorithm requires only that the function be
*convex* (Definition 1): convexity is what makes the block lower bound
``f(bid) = min over the block box`` sound and Lemma 1's frontier expansion
complete.  The classes here cover the families the paper discusses —
linear with arbitrary-sign weights, distance-to-target measures (the
``(price - 10k)^2 + (mileage - 20k)^2`` style of query Q2), quadratic
forms — plus a generic wrapper for user-supplied convex callables.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Sequence


def _numpy_for(columns) -> "object | None":
    """The NumPy module iff the active backend supplies ndarray columns.

    The batched forms vectorize only when the caller actually passed
    ndarrays (the :mod:`repro.vector` kernels under the NumPy backend);
    list/array columns take the scalar fallback, which is the reference
    semantics by construction.
    """
    from ..vector.layout import numpy_or_none

    np = numpy_or_none()
    if np is not None and columns and isinstance(columns[0], np.ndarray):
        return np
    return None


class RankingFunctionError(Exception):
    """Raised for malformed ranking-function constructions."""


class RankingFunction(ABC):
    """A convex scoring function over named ranking dimensions.

    Attributes
    ----------
    dims:
        Names of the ranking dimensions the function reads, in the order
        :meth:`score` expects its arguments.
    """

    def __init__(self, dims: Sequence[str]):
        if not dims:
            raise RankingFunctionError("ranking function needs at least one dimension")
        if len(set(dims)) != len(dims):
            raise RankingFunctionError(f"duplicate ranking dimensions: {dims}")
        self.dims = tuple(dims)

    @property
    def arity(self) -> int:
        return len(self.dims)

    @abstractmethod
    def score(self, point: Sequence[float]) -> float:
        """Score one point (components ordered as :attr:`dims`)."""

    def min_over_box(self, lower: Sequence[float], upper: Sequence[float]) -> float:
        """Minimum of the function over an axis-aligned box.

        The default implementation delegates to the numeric minimizer in
        :mod:`repro.ranking.boxmin`; subclasses with closed forms override.
        """
        from .boxmin import minimize_convex_over_box

        return minimize_convex_over_box(self.score, lower, upper)

    def argmin_over_box(
        self, lower: Sequence[float], upper: Sequence[float]
    ) -> tuple[float, ...]:
        """A minimizing point of the function over an axis-aligned box."""
        from .boxmin import argmin_convex_over_box

        return argmin_convex_over_box(self.score, lower, upper)

    def global_minimizer(self) -> tuple[float, ...]:
        """A minimizer over the unit hypercube (query start point)."""
        return self.argmin_over_box([0.0] * self.arity, [1.0] * self.arity)

    # ------------------------------------------------------------------
    # batched forms (the vectorized executor's kernel surface)
    # ------------------------------------------------------------------
    def eval_batch(self, columns: Sequence) -> Sequence[float]:
        """Score many points given as per-dimension columns.

        ``columns[d][i]`` is point ``i``'s value on dimension ``d`` (the
        struct-of-arrays shape of :class:`repro.vector.ColumnarBlock`).

        **Contract:** the result is bitwise-identical to
        ``[self.score(p) for p in zip(*columns)]`` — same IEEE-754
        operations in the same per-element order.  Families whose math
        vectorizes exactly (linear accumulation, abs/multiply distance
        terms) override with NumPy implementations; everything else —
        including any exponent that would route through ``pow``, whose
        vectorized form is *not* bit-compatible with CPython's — keeps
        this scalar fallback.
        """
        return [self.score(point) for point in zip(*columns)]

    def min_over_boxes(self, lowers: Sequence, uppers: Sequence) -> Sequence[float]:
        """Batched :meth:`min_over_box` over per-dimension edge columns.

        ``lowers[d][i]`` / ``uppers[d][i]`` bound box ``i`` on dimension
        ``d``.  Same bitwise contract as :meth:`eval_batch`, with
        :meth:`min_over_box` as the scalar reference.  Edge values are
        coerced to Python floats first (bit-preserving) so subclasses
        without a vectorized override run their scalar math on exactly
        the inputs the row path would hand them, even when the caller
        gathered the edges into NumPy arrays.
        """
        return [
            self.min_over_box([float(v) for v in lo], [float(v) for v in hi])
            for lo, hi in zip(zip(*lowers), zip(*uppers))
        ]

    def cache_key(self) -> tuple | None:
        """Value-based signature for cross-query bound memoization.

        Two functions with equal keys score every point identically, so
        their block bounds are interchangeable (the contract
        :class:`repro.serve.cache.BoundMemo` relies on).  ``None`` means
        "no reliable signature" — the function is not memoized.  The
        closed-form families override; opaque callables keep the default.
        """
        return None

    def __call__(self, point: Sequence[float]) -> float:
        return self.score(point)


class LinearFunction(RankingFunction):
    """``f(x) = sum_i w_i * x_i``, weights of any sign.

    All linear functions are convex; the paper stresses that this strictly
    generalizes the monotone (non-negative weight) case handled by Onion
    and PREFER.
    """

    def __init__(
        self, dims: Sequence[str], weights: Sequence[float], offset: float = 0.0
    ):
        super().__init__(dims)
        if len(weights) != len(self.dims):
            raise RankingFunctionError(
                f"{len(self.dims)} dims but {len(weights)} weights"
            )
        self.weights = tuple(float(w) for w in weights)
        self.offset = float(offset)

    def score(self, point: Sequence[float]) -> float:
        return self.offset + sum(w * x for w, x in zip(self.weights, point))

    def min_over_box(self, lower: Sequence[float], upper: Sequence[float]) -> float:
        # The minimizing corner picks, per dimension, whichever bound the
        # weight's sign prefers.
        return self.offset + sum(
            w * (lo if w >= 0 else hi)
            for w, lo, hi in zip(self.weights, lower, upper)
        )

    def argmin_over_box(
        self, lower: Sequence[float], upper: Sequence[float]
    ) -> tuple[float, ...]:
        return tuple(
            lo if w >= 0 else hi for w, lo, hi in zip(self.weights, lower, upper)
        )

    def eval_batch(self, columns: Sequence) -> Sequence[float]:
        np = _numpy_for(columns)
        if np is None:
            return super().eval_batch(columns)
        # mirror the scalar accumulation order exactly: sum() folds left
        # from 0, then the offset is added last
        acc = np.zeros(len(columns[0]), dtype=np.float64)
        for w, col in zip(self.weights, columns):
            acc = acc + w * col
        return self.offset + acc

    def min_over_boxes(self, lowers: Sequence, uppers: Sequence) -> Sequence[float]:
        np = _numpy_for(lowers)
        if np is None:
            return super().min_over_boxes(lowers, uppers)
        acc = np.zeros(len(lowers[0]), dtype=np.float64)
        for w, lo, hi in zip(self.weights, lowers, uppers):
            acc = acc + w * (lo if w >= 0 else hi)
        return self.offset + acc

    def cache_key(self) -> tuple:
        return ("linear", self.dims, self.weights, self.offset)

    def skewness(self) -> float:
        """Query skewness ``u = min|w| / max|w|`` (Section 5.1.3)."""
        magnitudes = [abs(w) for w in self.weights if w != 0]
        if not magnitudes:
            return 1.0
        return min(magnitudes) / max(magnitudes)

    def __repr__(self) -> str:
        terms = " + ".join(f"{w:g}*{d}" for w, d in zip(self.weights, self.dims))
        return f"LinearFunction({terms})"


class LpDistance(RankingFunction):
    """Weighted p-norm distance to a target point (p >= 1, hence convex).

    ``f(x) = sum_i w_i * |x_i - t_i|^p`` — with ``p=2`` this is the squared
    Euclidean form of query Q2 in the paper's introduction; ``p=1`` is the
    Manhattan form; weights must be non-negative for convexity.
    """

    def __init__(
        self,
        dims: Sequence[str],
        target: Sequence[float],
        p: float = 2.0,
        weights: Sequence[float] | None = None,
    ):
        super().__init__(dims)
        if len(target) != len(self.dims):
            raise RankingFunctionError(f"{len(self.dims)} dims but {len(target)} targets")
        if p < 1:
            raise RankingFunctionError(f"p must be >= 1 for convexity, got {p}")
        if weights is None:
            weights = [1.0] * len(self.dims)
        if len(weights) != len(self.dims):
            raise RankingFunctionError("weights length mismatch")
        if any(w < 0 for w in weights):
            raise RankingFunctionError("LpDistance weights must be non-negative")
        self.target = tuple(float(t) for t in target)
        self.p = float(p)
        self.weights = tuple(float(w) for w in weights)

    def score(self, point: Sequence[float]) -> float:
        # The p=1 / p=2 families use plain abs/multiply instead of
        # ``** p``: bit-for-bit reproducible in vectorized form, where
        # ``pow`` is not (NumPy's power drifts from CPython's by an ulp
        # on ~0.1% of inputs).  General exponents keep ``**`` and are
        # scored by the scalar fallback in both forms.
        if self.p == 2.0:
            return sum(
                w * ((x - t) * (x - t))
                for w, x, t in zip(self.weights, point, self.target)
            )
        if self.p == 1.0:
            return sum(
                w * abs(x - t)
                for w, x, t in zip(self.weights, point, self.target)
            )
        return sum(
            w * abs(x - t) ** self.p
            for w, x, t in zip(self.weights, point, self.target)
        )

    def eval_batch(self, columns: Sequence) -> Sequence[float]:
        np = _numpy_for(columns)
        if np is None or self.p not in (1.0, 2.0):
            return super().eval_batch(columns)
        acc = np.zeros(len(columns[0]), dtype=np.float64)
        for w, col, t in zip(self.weights, columns, self.target):
            d = col - t
            acc = acc + (w * (d * d) if self.p == 2.0 else w * np.abs(d))
        return acc

    def min_over_box(self, lower: Sequence[float], upper: Sequence[float]) -> float:
        # Separable: the per-dimension minimizer clamps the target into the
        # box, so the minimum has a closed form.
        return self.score(self.argmin_over_box(lower, upper))

    def min_over_boxes(self, lowers: Sequence, uppers: Sequence) -> Sequence[float]:
        np = _numpy_for(lowers)
        if np is None or self.p not in (1.0, 2.0):
            return super().min_over_boxes(lowers, uppers)
        clamped = [
            np.minimum(np.maximum(t, lo), hi)
            for t, lo, hi in zip(self.target, lowers, uppers)
        ]
        return self.eval_batch(clamped)

    def argmin_over_box(
        self, lower: Sequence[float], upper: Sequence[float]
    ) -> tuple[float, ...]:
        return tuple(
            min(max(t, lo), hi) for t, lo, hi in zip(self.target, lower, upper)
        )

    def cache_key(self) -> tuple:
        return ("lp", self.dims, self.target, self.p, self.weights)

    def __repr__(self) -> str:
        return f"LpDistance(dims={self.dims}, target={self.target}, p={self.p:g})"


class QuadraticForm(RankingFunction):
    """``f(x) = (x - c)' Q (x - c) + b' x`` with positive semidefinite Q.

    Covers correlated quadratic preferences; convexity requires Q to be
    PSD, which the constructor verifies via a Cholesky-style check.
    """

    def __init__(
        self,
        dims: Sequence[str],
        matrix: Sequence[Sequence[float]],
        center: Sequence[float] | None = None,
        linear: Sequence[float] | None = None,
    ):
        super().__init__(dims)
        n = len(self.dims)
        self.matrix = [[float(v) for v in row] for row in matrix]
        if len(self.matrix) != n or any(len(row) != n for row in self.matrix):
            raise RankingFunctionError(f"matrix must be {n}x{n}")
        self.center = tuple(float(c) for c in (center or [0.0] * n))
        self.linear = tuple(float(b) for b in (linear or [0.0] * n))
        if len(self.center) != n or len(self.linear) != n:
            raise RankingFunctionError("center/linear length mismatch")
        if not _is_psd(self.matrix):
            raise RankingFunctionError("quadratic form matrix must be PSD for convexity")

    def score(self, point: Sequence[float]) -> float:
        diff = [x - c for x, c in zip(point, self.center)]
        quad = sum(
            diff[i] * self.matrix[i][j] * diff[j]
            for i in range(len(diff))
            for j in range(len(diff))
        )
        return quad + sum(b * x for b, x in zip(self.linear, point))

    def cache_key(self) -> tuple:
        return (
            "quadratic",
            self.dims,
            tuple(tuple(row) for row in self.matrix),
            self.center,
            self.linear,
        )

    def __repr__(self) -> str:
        return f"QuadraticForm(dims={self.dims})"


class ConvexFunction(RankingFunction):
    """Wrapper for an arbitrary user-supplied convex callable.

    Convexity cannot be verified for a black box; the caller asserts it.
    Block lower bounds fall back to the numeric minimizer, which is exact
    (to tolerance) precisely when the assertion holds.
    """

    def __init__(
        self,
        dims: Sequence[str],
        fn: Callable[..., float],
        name: str = "convex",
    ):
        super().__init__(dims)
        self._fn = fn
        self.name = name

    def score(self, point: Sequence[float]) -> float:
        return float(self._fn(*point))

    def __repr__(self) -> str:
        return f"ConvexFunction({self.name}, dims={self.dims})"


class NegatedFunction(RankingFunction):
    """``-g`` for a concave ``g``: lets ``ORDER BY g DESC`` run ascending.

    The negation of a *concave* function is convex, so all machinery
    applies unchanged.  Negating a general convex function would not be
    convex; this class exists for the DESC rewrite of linear functions
    (linear is both convex and concave) and user-asserted concave scores.
    """

    def __init__(self, inner: RankingFunction):
        super().__init__(inner.dims)
        self.inner = inner

    def score(self, point: Sequence[float]) -> float:
        return -self.inner.score(point)

    def eval_batch(self, columns: Sequence) -> Sequence[float]:
        # unary negation is exact, so the inner batch's contract carries
        scores = self.inner.eval_batch(columns)
        np = _numpy_for(columns)
        if np is not None and isinstance(scores, np.ndarray):
            return -scores
        return [-s for s in scores]

    def min_over_boxes(self, lowers: Sequence, uppers: Sequence) -> Sequence[float]:
        if isinstance(self.inner, LinearFunction):
            flipped = LinearFunction(
                self.inner.dims,
                [-w for w in self.inner.weights],
                offset=-self.inner.offset,
            )
            return flipped.min_over_boxes(lowers, uppers)
        return super().min_over_boxes(lowers, uppers)

    def min_over_box(self, lower: Sequence[float], upper: Sequence[float]) -> float:
        if isinstance(self.inner, LinearFunction):
            flipped = LinearFunction(
                self.inner.dims,
                [-w for w in self.inner.weights],
                offset=-self.inner.offset,
            )
            return flipped.min_over_box(lower, upper)
        return super().min_over_box(lower, upper)

    def argmin_over_box(
        self, lower: Sequence[float], upper: Sequence[float]
    ) -> tuple[float, ...]:
        if isinstance(self.inner, LinearFunction):
            flipped = LinearFunction(
                self.inner.dims, [-w for w in self.inner.weights]
            )
            return flipped.argmin_over_box(lower, upper)
        return super().argmin_over_box(lower, upper)

    def cache_key(self) -> tuple | None:
        inner = self.inner.cache_key()
        return None if inner is None else ("negated", inner)

    def __repr__(self) -> str:
        return f"NegatedFunction({self.inner!r})"


def descending(fn: RankingFunction) -> RankingFunction:
    """Rewrite ``ORDER BY fn DESC`` as an ascending convex problem.

    Valid when ``fn`` is concave (linear functions always are).
    """
    if isinstance(fn, NegatedFunction):
        return fn.inner
    return NegatedFunction(fn)


def is_convex_on_samples(
    fn: RankingFunction, points: Sequence[Sequence[float]], tol: float = 1e-9
) -> bool:
    """Spot-check Definition 1 on sampled point pairs (testing helper)."""
    pts = [tuple(p) for p in points]
    for i, x1 in enumerate(pts):
        for x2 in pts[i + 1:]:
            for lam in (0.25, 0.5, 0.75):
                mid = tuple(lam * a + (1 - lam) * b for a, b in zip(x1, x2))
                if fn.score(mid) > lam * fn.score(x1) + (1 - lam) * fn.score(x2) + tol:
                    return False
    return True


def _is_psd(matrix: list[list[float]], tol: float = 1e-10) -> bool:
    """Check positive semidefiniteness via symmetric eigen-free pivoting."""
    n = len(matrix)
    # symmetrize to guard against tiny asymmetries
    a = [[0.5 * (matrix[i][j] + matrix[j][i]) for j in range(n)] for i in range(n)]
    # modified Cholesky: attempt factorization, allowing zero pivots
    for k in range(n):
        if a[k][k] < -tol:
            return False
        if a[k][k] <= tol:
            # pivot ~0: the rest of row/col k must be ~0 too
            if any(abs(a[k][j]) > math.sqrt(tol) for j in range(k + 1, n)):
                return False
            continue
        pivot = a[k][k]
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                a[i][j] -= a[i][k] * a[k][j] / pivot
    return True
