"""Span-tree tracing with per-span metric deltas.

A :class:`Tracer` produces a tree of :class:`Span` objects for one unit
of work (typically one top-k query): plan → search → retrieve/evaluate →
delta-merge, mirroring the paper's four execution steps.  Each span
carries

* ``attributes`` — identity facts fixed at creation (k, cuboid names),
* ``counters`` — logical work attributed to the span (candidates popped,
  cold fetches, cache hits),
* automatically measured **watched-metric deltas**: the tracer snapshots
  a configurable set of registry series on span entry and folds the
  difference into ``counters`` on exit, so every span answers "what I/O
  happened under me" straight from the metrics spine — the retrieve span
  shows device reads and buffer misses, attributed buffer / shared-cache
  / cold exactly as the executor saw them.

Durations are recorded (``duration_s``) for the ``bench profile`` report
but deliberately excluded from golden-trace comparisons — span structure
and counter values are deterministic for a seeded workload, wall time is
not (see :func:`repro.obs.export.canonical_span`).

A tracer instance is **single-threaded**: it keeps a current-span stack.
Concurrent servers create one tracer per query over the shared registry;
note that watched-metric deltas then include neighbours' traffic, so
exact per-span I/O attribution requires serial execution (the regime of
``python -m repro.bench profile`` and the golden-trace tests).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterable, Iterator

from .metrics import MetricsRegistry

#: Registry series folded into every traced span's counters by default.
DEFAULT_WATCHED_METRICS = (
    "storage.device.reads",
    "storage.device.writes",
    "storage.buffer.hits",
    "storage.buffer.misses",
)


class TracingError(Exception):
    """Raised on tracer misuse (closing spans out of order)."""


class Span:
    """One node of a trace tree."""

    __slots__ = (
        "name", "attributes", "counters", "children",
        "duration_s", "error", "_started",
    )

    def __init__(self, name: str, attributes: dict | None = None):
        self.name = name
        self.attributes = dict(attributes or {})
        self.counters: dict[str, int | float] = {}
        self.children: list[Span] = []
        self.duration_s: float | None = None
        self.error: str | None = None
        self._started: float | None = None

    # ------------------------------------------------------------------
    def add(self, counter: str, n: int | float = 1) -> None:
        """Attribute ``n`` units of ``counter`` to this span."""
        self.counters[counter] = self.counters.get(counter, 0) + n

    def add_many(self, **counters: int | float) -> None:
        for name, n in counters.items():
            self.add(name, n)

    def child(self, name: str, **attributes) -> "Span":
        """Create an *aggregate* child span (no timing, no auto-deltas).

        Aggregate spans collect counters accumulated incrementally across
        a loop — e.g. the executor's retrieve step, which interleaves with
        evaluation per candidate; wrap each contribution in
        :meth:`Tracer.measure` to attribute watched-metric deltas to it.
        """
        span = Span(name, attributes)
        self.children.append(span)
        return span

    def find(self, name: str) -> "Span | None":
        """First descendant (pre-order, self included) with this name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def num_spans(self) -> int:
        return sum(1 for _ in self.walk())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, counters={self.counters}, children={len(self.children)})"


class Tracer:
    """Builds span trees over one :class:`MetricsRegistry`.

    Parameters
    ----------
    registry:
        The metrics spine whose series are watched.  Optional: a tracer
        without a registry still builds span trees, just without
        automatic I/O deltas.
    watch:
        Names of registry series snapshotted at span entry/exit; each
        nonzero difference lands in the span's counters under its series
        name (summed across label sets).
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        watch: tuple[str, ...] = DEFAULT_WATCHED_METRICS,
    ):
        self.registry = registry
        self.watch = tuple(watch)
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def root(self) -> Span | None:
        """The most recently completed (or started) top-level span."""
        return self.roots[-1] if self.roots else None

    def _watch_values(self) -> dict[str, int | float]:
        if self.registry is None:
            return {}
        return {name: self.registry.total(name) for name in self.watch}

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[Span]:
        """Open a timed span; nests under the currently open span."""
        span = Span(name, attributes)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        before = self._watch_values()
        span._started = time.perf_counter()
        try:
            yield span
        except BaseException as exc:
            span.error = type(exc).__name__
            raise
        finally:
            span.duration_s = time.perf_counter() - span._started
            for metric, value in self._watch_values().items():
                delta = value - before[metric]
                if delta:
                    span.add(metric, delta)
            popped = self._stack.pop()
            if popped is not span:  # pragma: no cover - defensive
                raise TracingError(
                    f"span stack corrupted: closed {popped.name!r} "
                    f"while exiting {span.name!r}"
                )

    @contextmanager
    def measure(self, span: Span | None) -> Iterator[Span | None]:
        """Attribute this block's watched-metric deltas to ``span``.

        The companion of :meth:`Span.child` for aggregate spans: the block
        runs outside any new timed span, but its I/O lands on ``span``.
        ``span=None`` is a no-op, so call sites stay unconditional.
        """
        if span is None:
            yield None
            return
        before = self._watch_values()
        try:
            yield span
        finally:
            for metric, value in self._watch_values().items():
                delta = value - before[metric]
                if delta:
                    span.add(metric, delta)


def adopt_spans(parent: Span | None, spans: Iterable[Span], **extra_attributes):
    """Reparent completed span trees under ``parent``.

    The process serving tier runs per-shard searches in worker processes;
    each worker traces under its own registry and ships its finished root
    spans back with the response.  The front end adopts them under its
    ``shard_merge`` span so one query still renders as one tree in
    ``bench profile`` and the golden-trace suite.  ``extra_attributes``
    are stamped onto each adopted root (not its descendants) — e.g.
    ``shard=<id>`` when the shipper did not label itself.  A ``None``
    parent is a no-op so call sites stay unconditional.
    """
    if parent is None:
        return
    for span in spans:
        if extra_attributes:
            span.attributes.update(extra_attributes)
        parent.children.append(span)


def maybe_span(tracer: Tracer | None, name: str, **attributes):
    """``tracer.span(...)`` or an inert context when tracing is off.

    Lets instrumented code keep a single code path::

        with maybe_span(tracer, "plan") as span:
            ...            # span is None when tracer is None
    """
    if tracer is None:
        return _NULL_SPAN_CM
    return tracer.span(name, **attributes)


class _NullSpanContext:
    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN_CM = _NullSpanContext()
