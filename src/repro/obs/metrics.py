"""The metrics spine: one registry, every counter a view over it.

The paper's central claims are I/O claims — the ranking cube wins because
it reads fewer blocks — so the numbers this repository reports must be
*provably* consistent with each other.  Before this module, each layer
kept its own ad-hoc dataclass of plain ``int`` fields (``IOStats`` on the
device, ``BufferStats`` on the pool, ``CacheStats`` on the serving
caches), mutated with unlocked ``+=`` and reconciled by convention only.

:class:`MetricsRegistry` replaces that with a single labeled time-series
store:

* :class:`Counter` — monotonic-by-convention accumulator.  Increments are
  atomic under the registry mutex, so eight threads hammering one device
  produce *exact* totals (see ``tests/storage/test_buffer_concurrency``).
  Negative adjustments are permitted for one documented use: metering
  reclassification (a delivered-then-detected-corrupt read moves from
  ``reads`` to ``retried_reads``).
* :class:`Gauge` — a settable level (resident frames, frontier depth).
* :class:`Histogram` — fixed-bucket distribution (latencies).

Layers do not talk to the registry directly on their hot paths; they hold
a :class:`RegistryStatsView` subclass whose attributes *are* registry
series.  The view keeps the old field-access API (``stats.reads``,
``stats.hits += 1``) working, while `inc`/`inc_many` provide the atomic
path used under concurrency.  One registry per storage tree (device,
pool, caches, service) means every layer's accounting is a projection of
the same spine — which is what makes the invariants in
``tests/obs/test_invariants.py`` checkable at all.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterable, Iterator

#: Default histogram bucket upper bounds (seconds-flavoured, exponential).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelItems = tuple[tuple[str, str], ...]


class MetricsError(Exception):
    """Raised on registry misuse (type conflicts, unknown series)."""


def _label_items(labels: dict) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_key(name: str, labels: dict | LabelItems = ()) -> str:
    """Flattened ``name{k=v,...}`` identity of one series."""
    items = _label_items(labels) if isinstance(labels, dict) else tuple(labels)
    if not items:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in items) + "}"


class _Instrument:
    """Common identity for every registry series."""

    kind = "instrument"
    __slots__ = ("name", "labels", "_registry")

    def __init__(self, registry: "MetricsRegistry", name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self._registry = registry

    @property
    def key(self) -> str:
        return series_key(self.name, self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.key}={self.value!r})"


class Counter(_Instrument):
    """An accumulator whose updates are atomic under the registry mutex."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self, registry, name, labels):
        super().__init__(registry, name, labels)
        self._value = 0

    def inc(self, n: int | float = 1) -> None:
        with self._registry._lock:
            self._value += n

    #: ``add`` is the honest name when ``n`` may be negative (metering
    #: reclassification on the fault path).
    add = inc

    def set(self, value: int | float) -> None:
        with self._registry._lock:
            self._value = value

    @property
    def value(self) -> int | float:
        return self._value

    def reset(self) -> None:
        self.set(0)


class Gauge(_Instrument):
    """A settable level."""

    kind = "gauge"
    __slots__ = ("_value",)

    def __init__(self, registry, name, labels):
        super().__init__(registry, name, labels)
        self._value = 0

    def set(self, value: int | float) -> None:
        with self._registry._lock:
            self._value = value

    def inc(self, n: int | float = 1) -> None:
        with self._registry._lock:
            self._value += n

    def dec(self, n: int | float = 1) -> None:
        self.inc(-n)

    @property
    def value(self) -> int | float:
        return self._value

    def reset(self) -> None:
        self.set(0)


class Histogram(_Instrument):
    """A fixed-bucket distribution (counts per upper bound, plus +Inf)."""

    kind = "histogram"
    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, registry, name, labels, buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(registry, name, labels)
        self.bounds = tuple(sorted(buckets))
        if not self.bounds:
            raise MetricsError("histogram needs at least one bucket bound")
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        with self._registry._lock:
            idx = bisect.bisect_left(self.bounds, value)
            self.bucket_counts[idx] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def value(self) -> float:
        """The running sum (so histograms flatten like other series)."""
        return self.sum

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket."""
        if not 0.0 <= fraction <= 1.0:
            raise MetricsError(f"fraction must be in [0, 1], got {fraction}")
        if self.count == 0:
            return 0.0
        rank = fraction * self.count
        seen = 0
        for idx, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= rank and n:
                if idx < len(self.bounds):
                    return self.bounds[idx]
                return self.max
        return self.max

    def reset(self) -> None:
        with self._registry._lock:
            self.bucket_counts = [0] * (len(self.bounds) + 1)
            self.count = 0
            self.sum = 0.0
            self.min = float("inf")
            self.max = float("-inf")


class MetricsRegistry:
    """A process-local store of labeled metric series.

    One registry is shared by a whole storage tree: the device mints it,
    the buffer pool, the serving caches and the query service reuse it
    (see ``Database`` / ``QueryService``).  Series are created on first
    touch and live for the registry's lifetime; re-requesting a series
    returns the same instrument, so views over the registry are cheap.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._series: dict[tuple[str, LabelItems], _Instrument] = {}

    # Locks are process-local: strip on pickle (persist snapshots),
    # rebuild on unpickle.
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # series creation / lookup
    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, labels: dict, **kwargs) -> _Instrument:
        key = (name, _label_items(labels))
        with self._lock:
            instrument = self._series.get(key)
            if instrument is None:
                instrument = cls(self, name, key[1], **kwargs)
                self._series[key] = instrument
            elif not isinstance(instrument, cls):
                raise MetricsError(
                    f"series {series_key(name, labels)!r} already registered "
                    f"as {instrument.kind}, requested {cls.kind}"
                )
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, buckets: Iterable[float] | None = None, **labels) -> Histogram:
        kwargs = {} if buckets is None else {"buckets": buckets}
        return self._get_or_create(Histogram, name, labels, **kwargs)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def series(self) -> Iterator[_Instrument]:
        """Every registered instrument, in stable (name, labels) order."""
        with self._lock:
            items = sorted(self._series.items())
        for _key, instrument in items:
            yield instrument

    def value(self, name: str, **labels) -> int | float:
        """Current value of one series (0 if never touched)."""
        instrument = self._series.get((name, _label_items(labels)))
        return instrument.value if instrument is not None else 0

    def total(self, name: str) -> int | float:
        """Sum of a metric across all label sets (counters and gauges)."""
        with self._lock:
            return sum(
                inst.value
                for (n, _), inst in self._series.items()
                if n == name and not isinstance(inst, Histogram)
            )

    def snapshot(self) -> dict[str, int | float]:
        """Flat ``{series_key: value}`` of every non-histogram series."""
        with self._lock:
            return {
                inst.key: inst.value
                for inst in self._series.values()
                if not isinstance(inst, Histogram)
            }

    # ------------------------------------------------------------------
    # cross-process aggregation
    # ------------------------------------------------------------------
    def counter_items(self) -> list[tuple[str, LabelItems, int | float]]:
        """Structured ``(name, labels, value)`` rows for every counter.

        Unlike :meth:`snapshot`, labels stay structured instead of being
        flattened into the series key, so another registry can replay the
        rows (optionally adding labels of its own) without string
        parsing.  This is the form shard worker processes ship back to
        the serving front end.
        """
        with self._lock:
            return [
                (inst.name, inst.labels, inst.value)
                for inst in self._series.values()
                if isinstance(inst, Counter)
            ]

    def merge_counter_items(
        self,
        items: Iterable[tuple[str, LabelItems, int | float]],
        **extra_labels: str,
    ) -> None:
        """Fold structured counter rows into this registry.

        Each row increments the same-named counter here; ``extra_labels``
        are appended to every row's label set (the sharded front end adds
        ``shard=<id>`` so per-worker series stay distinguishable after
        aggregation).  Zero deltas are skipped so merging never mints
        empty series.
        """
        for name, labels, value in items:
            if not value:
                continue
            merged = dict(labels)
            merged.update(extra_labels)
            self._get_or_create(Counter, name, merged).inc(value)

    def reset(self) -> None:
        """Zero every series (keeps the series themselves registered)."""
        with self._lock:
            for instrument in self._series.values():
                instrument.reset()

    def __len__(self) -> int:
        return len(self._series)


def diff_counter_items(
    before: Iterable[tuple[str, LabelItems, int | float]],
    after: Iterable[tuple[str, LabelItems, int | float]],
) -> list[tuple[str, LabelItems, int | float]]:
    """Per-series deltas between two :meth:`MetricsRegistry.counter_items`
    snapshots, dropping zero rows.

    The worker side of the process serving tier snapshots its registry at
    query start, diffs at query end, and ships only the delta — so the
    front end aggregates exactly one query's worth of I/O per response no
    matter how long the worker has been alive.
    """
    base = {(name, labels): value for name, labels, value in before}
    deltas: list[tuple[str, LabelItems, int | float]] = []
    for name, labels, value in after:
        delta = value - base.get((name, labels), 0)
        if delta:
            deltas.append((name, labels, delta))
    return deltas


class RegistryStatsView:
    """Field-style facade over a group of registry counters.

    Subclasses declare ``_PREFIX`` and ``_FIELDS``; each field becomes a
    registry counter named ``_PREFIX + field`` carrying the view's labels.
    Plain attribute reads and writes keep the pre-registry API working
    (``stats.reads``, ``stats.hits += 1`` — the latter is get-then-set and
    therefore **not** atomic); concurrent paths must use :meth:`inc` /
    :meth:`inc_many`, which update under the registry mutex.
    """

    _PREFIX = ""
    _FIELDS: tuple[str, ...] = ()

    def __init__(self, registry: MetricsRegistry | None = None, **labels):
        registry = registry if registry is not None else MetricsRegistry()
        self.__dict__["registry"] = registry
        self.__dict__["labels"] = dict(labels)
        self.__dict__["_counters"] = {
            field: registry.counter(self._PREFIX + field, **labels)
            for field in self._FIELDS
        }

    def __getattr__(self, name: str):
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return counters[name].value
        raise AttributeError(
            f"{type(self).__name__!s} object has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value) -> None:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            counters[name].set(value)
        else:
            self.__dict__[name] = value

    # ------------------------------------------------------------------
    def inc(self, field: str, n: int | float = 1) -> None:
        """Atomically add ``n`` to one field."""
        self._counters[field].inc(n)

    def inc_many(self, **fields: int | float) -> None:
        """Atomically add several fields under one lock acquisition."""
        counters = self._counters
        with self.registry._lock:
            for field, n in fields.items():
                counters[field]._value += n

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.set(0)

    def as_dict(self) -> dict[str, int | float]:
        return {field: c.value for field, c in self._counters.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"{type(self).__name__}({inner})"
