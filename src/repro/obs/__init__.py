"""repro.obs — the unified observability layer.

One :class:`MetricsRegistry` per storage tree is the single source of
truth for every counter in the system; the per-layer stats objects
(device ``IOStats`` live counters, ``BufferStats``, ``CacheStats``) are
:class:`RegistryStatsView` facades over it, a :class:`Tracer` turns one
query into a span tree with per-span I/O deltas, and the exporters in
:mod:`repro.obs.export` serialize both.  See DESIGN.md section 10.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    RegistryStatsView,
    series_key,
)
from .tracing import (
    DEFAULT_WATCHED_METRICS,
    Span,
    Tracer,
    TracingError,
    maybe_span,
)
from .export import (
    canonical_span,
    registry_to_dict,
    render_span_tree,
    span_diff,
    span_to_dict,
    to_json,
    to_line_protocol,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_WATCHED_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "RegistryStatsView",
    "Span",
    "Tracer",
    "TracingError",
    "canonical_span",
    "maybe_span",
    "registry_to_dict",
    "render_span_tree",
    "series_key",
    "span_diff",
    "span_to_dict",
    "to_json",
    "to_line_protocol",
]
