"""Exporters for the observability layer.

Three output shapes, all zero-dependency:

* **JSON** — :func:`registry_to_dict` / :func:`to_json` give the full
  registry (counters, gauges, histogram summaries) as one document, the
  format the bench regression gate diffs.
* **Line protocol** — :func:`to_line_protocol` emits one
  ``name,label=value field=...`` line per series (Influx-flavoured), for
  piping into anything that speaks a metrics wire format.
* **Span trees** — :func:`span_to_dict` (lossless), :func:`canonical_span`
  (deterministic subset: structure + counters, **no latencies**, the form
  golden-trace tests snapshot) and :func:`render_span_tree` (the ASCII
  report ``python -m repro.bench profile`` prints).
"""

from __future__ import annotations

import json

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import Span


# ----------------------------------------------------------------------
# registry export
# ----------------------------------------------------------------------
def registry_to_dict(registry: MetricsRegistry) -> dict:
    """The whole registry as one JSON-ready document."""
    counters: dict[str, int | float] = {}
    gauges: dict[str, int | float] = {}
    histograms: dict[str, dict] = {}
    for instrument in registry.series():
        if isinstance(instrument, Histogram):
            histograms[instrument.key] = {
                "count": instrument.count,
                "sum": instrument.sum,
                "mean": instrument.mean,
                "min": instrument.min if instrument.count else None,
                "max": instrument.max if instrument.count else None,
                "p50": instrument.percentile(0.50),
                "p95": instrument.percentile(0.95),
            }
        elif isinstance(instrument, Gauge):
            gauges[instrument.key] = instrument.value
        elif isinstance(instrument, Counter):
            counters[instrument.key] = instrument.value
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def to_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    return json.dumps(registry_to_dict(registry), indent=indent, sort_keys=True)


def to_line_protocol(registry: MetricsRegistry) -> str:
    """One line per series: ``name,label=value value=N`` (histograms emit
    ``count``/``sum`` fields instead of ``value``)."""
    lines = []
    for instrument in registry.series():
        ident = instrument.name
        if instrument.labels:
            ident += "," + ",".join(f"{k}={v}" for k, v in instrument.labels)
        if isinstance(instrument, Histogram):
            lines.append(f"{ident} count={instrument.count},sum={instrument.sum}")
        else:
            lines.append(f"{ident} value={instrument.value}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# span export
# ----------------------------------------------------------------------
def span_to_dict(span: Span, include_timing: bool = True) -> dict:
    """Lossless (optionally timing-free) dict form of a span tree."""
    doc: dict = {"name": span.name}
    if span.attributes:
        doc["attributes"] = dict(span.attributes)
    if span.counters:
        doc["counters"] = dict(span.counters)
    if span.error is not None:
        doc["error"] = span.error
    if include_timing and span.duration_s is not None:
        doc["duration_s"] = span.duration_s
    if span.children:
        doc["children"] = [span_to_dict(c, include_timing) for c in span.children]
    return doc


def _json_stable(value):
    """Normalize a value so it survives a JSON round trip unchanged
    (tuples become lists, mapping keys become strings)."""
    if isinstance(value, tuple):
        return [_json_stable(v) for v in value]
    if isinstance(value, list):
        return [_json_stable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_stable(v) for k, v in value.items()}
    return value


def canonical_span(span: Span) -> dict:
    """Deterministic snapshot form: structure + counters, no latencies.

    This is what the golden-trace tests persist: span names, attributes,
    counter values (sorted keys) and the child list — everything a seeded
    workload reproduces bit-for-bit, nothing wall-clock-dependent.
    Values are JSON-normalized (tuples to lists) so a snapshot compares
    equal to its own file round trip.
    """
    doc: dict = {"name": span.name}
    if span.attributes:
        doc["attributes"] = {
            k: _json_stable(span.attributes[k]) for k in sorted(span.attributes)
        }
    if span.counters:
        doc["counters"] = {k: span.counters[k] for k in sorted(span.counters)}
    if span.error is not None:
        doc["error"] = span.error
    if span.children:
        doc["children"] = [canonical_span(c) for c in span.children]
    return doc


def render_span_tree(span: Span, include_timing: bool = True) -> str:
    """ASCII tree of one span, counters inline — the profile report."""
    lines: list[str] = []
    _render(span, "", True, True, lines, include_timing)
    return "\n".join(lines)


def _render(
    span: Span,
    prefix: str,
    is_last: bool,
    is_root: bool,
    lines: list[str],
    include_timing: bool,
) -> None:
    connector = "" if is_root else ("└─ " if is_last else "├─ ")
    parts = [span.name]
    if span.attributes:
        attrs = ", ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
        parts.append(f"[{attrs}]")
    if include_timing and span.duration_s is not None:
        parts.append(f"({span.duration_s * 1000.0:.3f} ms)")
    if span.error:
        parts.append(f"!{span.error}")
    lines.append(prefix + connector + " ".join(parts))
    child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
    if span.counters:
        stem = child_prefix + ("│  " if span.children else "   ")
        for key in sorted(span.counters):
            value = span.counters[key]
            lines.append(f"{stem}· {key} = {value}")
    for i, child in enumerate(span.children):
        _render(child, child_prefix, i == len(span.children) - 1, False, lines, include_timing)


def span_diff(expected: dict, actual: dict, path: str = "") -> list[str]:
    """Readable differences between two canonical span dicts.

    Used by the golden-trace tests to fail with *which* span and *which*
    counter drifted, not a wall of JSON.
    """
    diffs: list[str] = []
    here = path + "/" + expected.get("name", "?")
    if expected.get("name") != actual.get("name"):
        diffs.append(f"{here}: span name {expected.get('name')!r} != {actual.get('name')!r}")
        return diffs
    for field in ("attributes", "counters"):
        exp, act = expected.get(field, {}), actual.get(field, {})
        for key in sorted(set(exp) | set(act)):
            if exp.get(key) != act.get(key):
                diffs.append(
                    f"{here}: {field[:-1]} {key!r} expected {exp.get(key)!r}, "
                    f"got {act.get(key)!r}"
                )
    if expected.get("error") != actual.get("error"):
        diffs.append(
            f"{here}: error {expected.get('error')!r} != {actual.get('error')!r}"
        )
    exp_children = expected.get("children", [])
    act_children = actual.get("children", [])
    if len(exp_children) != len(act_children):
        diffs.append(
            f"{here}: {len(exp_children)} child span(s) expected, "
            f"got {len(act_children)} "
            f"(expected {[c.get('name') for c in exp_children]}, "
            f"got {[c.get('name') for c in act_children]})"
        )
    for exp_child, act_child in zip(exp_children, act_children):
        diffs.extend(span_diff(exp_child, act_child, here))
    return diffs
