"""Process-per-shard workers for the sharded serving tier.

Thread-mode scatter-gather (:class:`~repro.serve.sharded.ShardedQueryService`)
is correct but GIL-bound: every shard's retrieve/evaluate loop runs in
one interpreter, so multi-shard serving cannot beat the unsharded
baseline on wall clock.  This module moves each shard's *entire* serving
stack — :class:`~repro.storage.device.BlockDevice`, buffer pool, cube
snapshot, shared caches — into a long-lived **worker process** that owns
it exclusively:

* **Bootstrap** — workers start from the spawn context
  (:func:`repro.core.parallel.spawn_context`) and warm-start from the
  shard's persisted :class:`~repro.persist.Workspace` snapshot, verified
  against the SHA-256 pin in the shard manifest.  A respawned worker
  therefore always serves byte-identical state to the one it replaces.
* **Protocol** — length-prefixed pickle frames (:mod:`repro.serve.wire`)
  over a :func:`multiprocessing.Pipe`; one request at a time per worker,
  sessions keyed by request id so many front-end queries can interleave
  rounds on one worker.
* **Failure** — a worker death mid-conversation surfaces as a typed
  :class:`~repro.serve.wire.WorkerDiedError`; the pool respawns the
  worker from the pinned snapshot (bounded, with retries) while the
  affected queries degrade to the
  :class:`~repro.core.executor.QueryAbortedError` path.
* **Observability** — the worker executes under its own process-local
  :class:`~repro.obs.metrics.MetricsRegistry`; each closed session ships
  the per-query counter deltas and completed span trees back, and the
  front end folds them into its registry/span tree (see
  ``ShardedQueryService``), so ``bench profile`` and the golden-trace
  suite see one coherent tree per query.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import replace
from pathlib import Path

from ..core.anyk import AnyKCursor
from ..core.executor import (
    ExecutorTrace,
    ProgressiveSearch,
    RankingCubeExecutor,
    _push_topk,
)
from ..core.reverse import count_preceding
from ..core.parallel import spawn_context
from ..obs.metrics import MetricsRegistry, diff_counter_items
from ..obs.tracing import Tracer
from ..storage.device import StorageError
from . import wire

#: Seconds the front end waits on a worker reply before declaring it dead.
DEFAULT_WORKER_TIMEOUT = 60.0
#: Seconds a fresh worker gets to load its snapshot and report ready.
DEFAULT_START_TIMEOUT = 120.0
#: Respawn attempts before the pool gives a shard up as unservable.
DEFAULT_RESPAWN_RETRIES = 2


class ProcPoolError(RuntimeError):
    """Pool misuse or an unservable shard (respawn retries exhausted)."""


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class _Session:
    """One open progressive search (or any-k cursor) inside a worker.

    ``cursor`` is None for batched top-k sessions; enumeration sessions
    (:class:`~repro.serve.wire.OpenEnum`) hold their
    :class:`~repro.core.anyk.AnyKCursor` here and alias ``search`` to the
    cursor's underlying :class:`ProgressiveSearch` so accounting
    (:func:`_session_blocks`, :class:`~repro.serve.wire.CloseSearch`)
    works identically for both kinds.
    """

    __slots__ = (
        "request_id", "search", "trace", "tracer", "io_before",
        "counters_before", "local_topk", "k", "rounds", "cursor",
    )

    def __init__(self, request_id, search, trace, tracer, io_before, counters_before, k, cursor=None):
        self.request_id = request_id
        self.search = search
        self.trace = trace
        self.tracer = tracer
        self.io_before = io_before
        self.counters_before = counters_before
        self.local_topk: list[tuple[float, int]] = []
        self.k = k
        self.rounds = 0
        self.cursor = cursor


def _verify_pinned_snapshot(directory: Path, entry: dict) -> bytes:
    """Read a shard snapshot and check it against its manifest pin."""
    from ..persist import PersistError

    path = directory / entry["file"]
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise PersistError(f"missing shard snapshot {entry['file']!r}: {exc}") from exc
    digest = hashlib.sha256(data).hexdigest()
    if digest != entry["sha256"]:
        raise PersistError(
            f"shard snapshot {entry['file']!r} does not match its manifest "
            f"pin (expected {entry['sha256'][:12]}…, found {digest[:12]}…)"
        )
    return data


def _bootstrap_stack(directory: str, entry: dict, cube_name: str, options: dict):
    """Load the pinned snapshot and assemble the shard's serving stack."""
    from ..persist import Workspace
    from .cache import BoundMemo, PseudoBlockCache

    directory = Path(directory)
    _verify_pinned_snapshot(directory, entry)
    workspace = Workspace.load(directory / entry["file"])
    db = workspace.db
    table = db.table(cube_name)
    cube = workspace.cubes[cube_name]
    registry = getattr(db.pool, "registry", None) or MetricsRegistry()
    if options.get("share_caches", True):
        pseudo_cache = PseudoBlockCache(registry=registry)
        bound_memo = BoundMemo(registry=registry)
    else:
        pseudo_cache = bound_memo = None
    executor = RankingCubeExecutor(
        cube,
        table,
        buffer_pseudo_blocks=options.get("buffer_pseudo_blocks", True),
        pseudo_cache=pseudo_cache,
        bound_memo=bound_memo,
    )
    return db, executor, registry, pseudo_cache, bound_memo


def _run_batch(session: _Session, kth: float | None, max_steps: int):
    """Step a session's search under the merge's continue rules.

    Stops at ``max_steps``, at exhaustion, when the global bound prunes
    the shard (``best_unseen > kth``, the strict complement of the
    thread-mode merge's non-strict continue), or when the shard's *local*
    top-k is certified — locally certified means no further step can
    change this shard's contribution to any global answer, which is
    exactly where the naive per-shard executor stops too.
    """
    search = session.search
    scored: list[tuple[float, int]] = []
    steps = 0
    while steps < max_steps and not search.exhausted:
        bound = search.best_unseen
        if kth is not None and bound > kth:
            break
        if len(session.local_topk) >= session.k and bound > -session.local_topk[0][0]:
            break
        for score, tid in search.step():
            _push_topk(session.local_topk, session.k, score, tid)
            scored.append((score, tid))
        steps += 1
    return scored, steps


def _shard_worker_main(conn, directory: str, entry: dict, cube_name: str, options: dict):
    """Worker process entry point: bootstrap, then the request loop."""
    shard_id = int(entry["shard_id"])
    try:
        db, executor, registry, pseudo_cache, bound_memo = _bootstrap_stack(
            directory, entry, cube_name, options
        )
    except Exception as exc:
        try:
            wire.send_msg(conn, wire.WorkerFault(request_id=None, error=exc))
        finally:
            conn.close()
        return
    wire.send_msg(
        conn,
        wire.Pong(
            shard_id=shard_id,
            pid=os.getpid(),
            rows=int(entry["rows"]),
            role=options.get("role", "primary"),
        ),
    )

    sessions: dict[int, _Session] = {}
    while True:
        try:
            msg = wire.recv_msg(conn)
        except (EOFError, OSError):
            break
        try:
            reply = _dispatch(
                msg, sessions, db, executor, registry, pseudo_cache,
                bound_memo, shard_id,
            )
        except (StorageError, wire.WireError) as exc:
            reply = wire.WorkerFault(
                request_id=getattr(msg, "request_id", None),
                error=exc,
                blocks_accessed=_session_blocks(sessions, msg),
            )
        except Exception as exc:  # never die silently on a bad request
            reply = wire.WorkerFault(
                request_id=getattr(msg, "request_id", None), error=exc
            )
        if reply is None:  # Shutdown
            break
        try:
            wire.send_msg(conn, reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


def _session_blocks(sessions: dict, msg) -> int:
    session = sessions.get(getattr(msg, "request_id", None))
    return session.search.result.blocks_accessed if session is not None else 0


def _dispatch(msg, sessions, db, executor, registry, pseudo_cache, bound_memo, shard_id):
    if isinstance(msg, wire.OpenSearch):
        if msg.request_id in sessions:
            raise wire.WireError(f"session {msg.request_id} already open")
        tracer = Tracer(registry) if msg.trace else None
        trace = ExecutorTrace()
        io_before = db.io_snapshot()
        counters_before = registry.counter_items()
        search = ProgressiveSearch(executor, msg.query, trace)
        session = _Session(
            msg.request_id, search, trace, tracer, io_before, counters_before,
            msg.query.k,
        )
        sessions[msg.request_id] = session
        return _step_session(session, msg.kth, msg.max_steps, shard_id, opening=True)
    if isinstance(msg, wire.StepBatch):
        session = sessions.get(msg.request_id)
        if session is None:
            raise wire.WireError(f"no open session {msg.request_id}")
        return _step_session(session, msg.kth, msg.max_steps, shard_id, opening=False)
    if isinstance(msg, wire.OpenEnum):
        if msg.request_id in sessions:
            raise wire.WireError(f"session {msg.request_id} already open")
        tracer = Tracer(registry) if msg.trace else None
        trace = ExecutorTrace()
        io_before = db.io_snapshot()
        counters_before = registry.counter_items()
        query = msg.query
        if query.projection is not None:
            # the front end projects from global tids after the merge
            query = replace(query, projection=None)
        cursor = AnyKCursor(executor, query, trace, tracer=None)
        session = _Session(
            msg.request_id, cursor.search, trace, tracer, io_before,
            counters_before, query.k, cursor=cursor,
        )
        sessions[msg.request_id] = session
        return _enum_next(session, msg.count, shard_id)
    if isinstance(msg, wire.StepNext):
        session = sessions.get(msg.request_id)
        if session is None or session.cursor is None:
            raise wire.WireError(f"no open enum session {msg.request_id}")
        return _enum_next(session, msg.count, shard_id)
    if isinstance(msg, wire.ReverseCount):
        io_before = db.io_snapshot()
        counters_before = registry.counter_items()
        preceding, sub = count_preceding(
            executor, msg.query, msg.t_score, msg.tie_tid
        )
        return wire.ReverseCounted(
            request_id=msg.request_id,
            preceding=preceding,
            blocks_accessed=sub.blocks_accessed,
            candidates_examined=sub.candidates_examined,
            tuples_examined=sub.tuples_examined,
            device_reads=db.io_since(io_before).reads,
            counter_deltas=diff_counter_items(
                counters_before, registry.counter_items()
            ),
        )
    if isinstance(msg, wire.CloseSearch):
        session = sessions.pop(msg.request_id, None)
        if session is None:
            raise wire.WireError(f"no open session {msg.request_id}")
        result = session.search.result
        return wire.SearchClosed(
            request_id=msg.request_id,
            blocks_accessed=result.blocks_accessed,
            candidates_examined=result.candidates_examined,
            tuples_examined=result.tuples_examined,
            device_reads=db.io_since(session.io_before).reads,
            counter_deltas=diff_counter_items(
                session.counters_before, registry.counter_items()
            ),
            spans=list(session.tracer.roots) if session.tracer is not None else [],
        )
    if isinstance(msg, wire.ColdCache):
        db.cold_cache()
        if pseudo_cache is not None:
            pseudo_cache.clear()
        if bound_memo is not None:
            bound_memo.clear()
        return wire.Ack()
    if isinstance(msg, wire.Ping):
        return wire.Pong(shard_id=shard_id, pid=os.getpid(), rows=0)
    if isinstance(msg, wire.Shutdown):
        return None
    raise wire.WireError(f"unknown request {type(msg).__name__}")


def _step_session(session: _Session, kth, max_steps, shard_id, *, opening: bool):
    """Run one batch (plus delta rows when opening), traced if requested."""
    delta_rows: list[tuple[float, int]] = []
    if session.tracer is not None:
        with session.tracer.span(
            "shard_batch", shard=shard_id, round=session.rounds
        ) as span:
            if opening:
                delta_rows = session.search.delta_rows()
            scored, steps = _run_batch(session, kth, max_steps)
            span.add_many(steps=steps, scored=len(scored))
            if opening:
                span.add("delta_rows", len(delta_rows))
    else:
        if opening:
            delta_rows = session.search.delta_rows()
        scored, steps = _run_batch(session, kth, max_steps)
    for score, tid in delta_rows:
        _push_topk(session.local_topk, session.k, score, tid)
    session.rounds += 1
    return wire.SearchBatch(
        request_id=session.request_id,
        scored=scored,
        best_unseen=session.search.best_unseen,
        exhausted=session.search.exhausted,
        steps=steps,
        delta_rows=delta_rows,
    )


def _enum_next(session: _Session, count: int, shard_id):
    """Pull the next certified enumeration rows, traced if requested."""
    cursor = session.cursor
    if session.tracer is not None:
        with session.tracer.span(
            "shard_enum_batch", shard=shard_id, round=session.rounds
        ) as span:
            rows = cursor.next_batch(count)
            span.add_many(rows=len(rows))
    else:
        rows = cursor.next_batch(count)
    session.rounds += 1
    return wire.NextBatch(
        request_id=session.request_id,
        rows=[(row.score, row.tid) for row in rows],
        exhausted=cursor.exhausted,
    )


# ----------------------------------------------------------------------
# front-end side
# ----------------------------------------------------------------------
class ShardWorkerHandle:
    """Parent-side endpoint of one shard worker process."""

    def __init__(
        self,
        directory: str | Path,
        entry: dict,
        cube_name: str,
        options: dict,
        *,
        timeout: float = DEFAULT_WORKER_TIMEOUT,
        start_timeout: float = DEFAULT_START_TIMEOUT,
        role: str = "primary",
        replica_index: int = 0,
    ):
        self.shard_id = int(entry["shard_id"])
        self.entry = entry
        self.timeout = timeout
        self.role = role
        self._lock = threading.Lock()
        ctx = spawn_context()
        self._conn, child_conn = ctx.Pipe()
        # Replicas get a distinct process name so the kill harness can
        # target primaries by name without sniping the warm standbys.
        if role == "primary":
            name = f"repro-shard-worker-{self.shard_id}"
        else:
            name = f"repro-shard-replica-{self.shard_id}-{replica_index}"
        worker_options = dict(options, role=role)
        self.process = ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, str(directory), dict(entry), cube_name, worker_options),
            name=name,
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        try:
            ready = wire.recv_msg(self._conn, timeout=start_timeout)
        except (TimeoutError, EOFError, OSError) as exc:
            self.kill()
            raise wire.WorkerDiedError(
                f"shard {self.shard_id} worker never came up: {exc}",
                shard_id=self.shard_id,
            ) from exc
        if isinstance(ready, wire.WorkerFault):
            self.kill()
            raise ready.error
        if not isinstance(ready, wire.Pong):
            self.kill()
            raise wire.WireError(f"unexpected ready message {ready!r}")

    @property
    def pid(self) -> int | None:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def request(self, message, timeout: float | None = None):
        """One send/receive round trip; raises WorkerDiedError on hangup."""
        deadline = self.timeout if timeout is None else timeout
        with self._lock:
            try:
                wire.send_msg(self._conn, message)
                reply = wire.recv_msg(self._conn, timeout=deadline)
            except (EOFError, OSError, TimeoutError) as exc:
                raise wire.WorkerDiedError(
                    f"shard {self.shard_id} worker died mid-request "
                    f"({type(message).__name__}): {exc}",
                    shard_id=self.shard_id,
                ) from exc
        if isinstance(reply, wire.WorkerFault):
            raise reply.error
        return reply

    def kill(self) -> None:
        """Hard-stop the process and close the pipe (idempotent)."""
        try:
            if self.process.is_alive():
                self.process.kill()
            self.process.join(timeout=5.0)
        finally:
            try:
                self._conn.close()
            except OSError:
                pass

    def shutdown(self, timeout: float = 5.0) -> None:
        """Orderly stop; falls back to kill when the worker does not exit."""
        try:
            with self._lock:
                wire.send_msg(self._conn, wire.Shutdown())
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.kill()


class ProcessShardPool:
    """All shard workers of one process-mode service, plus respawn logic."""

    def __init__(
        self,
        directory: str | Path,
        manifest: dict,
        *,
        options: dict | None = None,
        timeout: float = DEFAULT_WORKER_TIMEOUT,
        respawn_retries: int = DEFAULT_RESPAWN_RETRIES,
        registry: MetricsRegistry | None = None,
        fault_hook=None,
        replicas: int = 0,
    ):
        self.directory = Path(directory)
        self.manifest = manifest
        self.cube_name = manifest["name"]
        self.options = dict(options or {})
        self.timeout = timeout
        self.respawn_retries = respawn_retries
        self.registry = registry if registry is not None else MetricsRegistry()
        #: test seam: ``fault_hook(point, shard_id)`` fires at protocol
        #: points ("respawn"/"promote" here; the service adds
        #: scatter/merge points)
        self.fault_hook = fault_hook
        #: warm standby workers per shard; every standby boots from the
        #: same pinned snapshot as its primary, so a promotion serves
        #: byte-identical state
        self.replicas = replicas
        self._handles: dict[int, ShardWorkerHandle] = {}
        self._standbys: dict[int, list[ShardWorkerHandle]] = {}
        self._replica_seq: dict[int, int] = {}
        self._respawn_locks: dict[int, threading.Lock] = {}
        self._closed = False
        for entry in manifest["shards"]:
            if entry["rows"] == 0:
                continue  # empty shard: no cube, nothing to serve
            shard_id = int(entry["shard_id"])
            self._respawn_locks[shard_id] = threading.Lock()
            self._handles[shard_id] = self._spawn(entry)
            self._replica_seq[shard_id] = 0
            self._standbys[shard_id] = [
                self._spawn_standby(shard_id) for _ in range(replicas)
            ]

    def _spawn(
        self, entry: dict, *, role: str = "primary", replica_index: int = 0
    ) -> ShardWorkerHandle:
        return ShardWorkerHandle(
            self.directory, entry, self.cube_name, self.options,
            timeout=self.timeout, role=role, replica_index=replica_index,
        )

    def _spawn_standby(self, shard_id: int) -> ShardWorkerHandle:
        index = self._replica_seq[shard_id]
        self._replica_seq[shard_id] = index + 1
        return self._spawn(
            self._entry(shard_id), role="replica", replica_index=index
        )

    def _entry(self, shard_id: int) -> dict:
        for entry in self.manifest["shards"]:
            if int(entry["shard_id"]) == shard_id:
                return entry
        raise ProcPoolError(f"no manifest entry for shard {shard_id}")

    @property
    def shard_ids(self) -> list[int]:
        return sorted(self._handles)

    def handle(self, shard_id: int) -> ShardWorkerHandle:
        """The live handle for a shard, reviving a dead worker first.

        With replicas a dead primary is revived by *promotion* (warm
        standby, no snapshot reload); without, by a cold respawn.
        """
        handle = self._handles.get(shard_id)
        if handle is None:
            raise ProcPoolError(f"shard {shard_id} has no worker (empty shard?)")
        if not handle.alive:
            if self.replicas:
                return self.promote(shard_id)
            return self.respawn(shard_id)
        return handle

    def respawn(self, shard_id: int) -> ShardWorkerHandle:
        """Replace a dead worker from its pinned snapshot (bounded retries).

        Thread-safe and idempotent: concurrent callers for the same shard
        serialize on a per-shard lock, and a handle that is already alive
        again (someone else respawned it first) is returned as-is.
        """
        if self._closed:
            raise ProcPoolError("pool is closed")
        lock = self._respawn_locks[shard_id]
        with lock:
            handle = self._handles.get(shard_id)
            if handle is not None and handle.alive:
                return handle
            entry = self._entry(shard_id)
            started = time.perf_counter()
            last_error: Exception | None = None
            for _attempt in range(self.respawn_retries + 1):
                if handle is not None:
                    handle.kill()
                try:
                    handle = self._spawn(entry)
                    if self.fault_hook is not None:
                        self.fault_hook("respawn", shard_id)
                    # health-check the fresh worker: a hook (or a crash
                    # during bootstrap races) may have killed it already
                    handle.request(wire.Ping(), timeout=self.timeout)
                except (wire.WorkerDiedError, OSError) as exc:
                    last_error = exc
                    continue
                self._handles[shard_id] = handle
                self.registry.counter(
                    "shard.pool.respawns", shard=str(shard_id)
                ).inc()
                self.registry.histogram("shard.pool.respawn_s").observe(
                    time.perf_counter() - started
                )
                return handle
            raise ProcPoolError(
                f"shard {shard_id} worker could not be respawned after "
                f"{self.respawn_retries + 1} attempt(s): {last_error}"
            )

    # ------------------------------------------------------------------
    # replica promotion
    # ------------------------------------------------------------------
    def promote(self, shard_id: int) -> ShardWorkerHandle:
        """Replace a dead primary with a warm standby replica.

        The standby booted from the same SHA-256-pinned snapshot as the
        primary it replaces, so the promoted worker serves byte-identical
        state — no replay, no rebuild, promotion cost is one health-check
        round trip.  A replacement standby is spawned immediately so a
        second failure still finds a warm copy.  With no live standby
        (replication off, or every copy dead) this degrades to a cold
        :meth:`respawn` from the snapshot.

        Thread-safe: serializes on the shard's respawn lock, and a
        primary that is already alive again (a concurrent caller won the
        race) is returned as-is.
        """
        if self._closed:
            raise ProcPoolError("pool is closed")
        lock = self._respawn_locks[shard_id]
        with lock:
            handle = self._handles.get(shard_id)
            if handle is not None and handle.alive:
                return handle
            standbys = self._standbys.get(shard_id, [])
            started = time.perf_counter()
            while standbys:
                # fault seam fires before the pop: a kill at the promotion
                # instant leaves the standby on the bench for the retry
                if self.fault_hook is not None:
                    self.fault_hook("promote", shard_id)
                candidate = standbys.pop(0)
                try:
                    candidate.request(wire.Ping(), timeout=self.timeout)
                except (wire.WorkerDiedError, OSError):
                    candidate.kill()
                    continue
                if handle is not None:
                    handle.kill()
                self._handles[shard_id] = candidate
                self.registry.counter(
                    "shard.replica.promotions", shard=str(shard_id)
                ).inc()
                self.registry.histogram("shard.replica.promote_s").observe(
                    time.perf_counter() - started
                )
                try:
                    standbys.append(self._spawn_standby(shard_id))
                except (wire.WorkerDiedError, OSError):
                    # a failed refill must not fail the promotion; the
                    # next promote simply finds one fewer warm copy
                    self.registry.counter(
                        "shard.replica.refill_failures", shard=str(shard_id)
                    ).inc()
                return candidate
        return self.respawn(shard_id)

    def cold_cache(self) -> None:
        """Drop every worker's buffered pages and caches (bench regime).

        Standbys are cooled too: a promotion must hand queries the same
        cold-start determinism the primary had.
        """
        for shard_id in self.shard_ids:
            self.handle(shard_id).request(wire.ColdCache())
        for standbys in self._standbys.values():
            for standby in standbys:
                if standby.alive:
                    standby.request(wire.ColdCache())

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for handle in self._handles.values():
            handle.shutdown()
        self._handles.clear()
        for standbys in self._standbys.values():
            for standby in standbys:
                standby.shutdown()
        self._standbys.clear()
