"""Wire protocol of the process-per-shard serving tier.

Frames are **length-prefixed pickles** over a :mod:`multiprocessing`
pipe: a fixed 5-byte header (magic byte ``R`` + little-endian ``uint32``
payload length) followed by exactly that many pickle bytes.  The header
is redundant with the pipe's own framing on purpose — a torn or
misaligned frame surfaces as a typed :class:`WireError` instead of a
pickle of garbage, and the protocol would survive a move from pipes to
raw sockets unchanged.

Every message is a small frozen dataclass below; the payload types they
carry (:class:`~repro.relational.query.TopKQuery`,
:class:`~repro.relational.query.QueryResult` fragments, typed storage
errors, :class:`~repro.obs.tracing.Span` trees, structured registry
rows) are all plain picklable data.  **Anything added to these messages
becomes wire format**: the pickle round-trip property suite
(``tests/properties/test_result_pickle.py``) pins the invariant that
none of it silently becomes unpicklable.

Request/response pairing is strict: the worker serves one request at a
time in arrival order, and the front end holds a per-worker lock across
each send/receive, so a response always answers the most recent request
on that pipe.  ``request_id`` still travels with search messages — the
worker keys its open search sessions by it, and the front end asserts
the pairing as a cheap corruption check.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass, field

from ..relational.query import TopKQuery

_MAGIC = b"R"
_HEADER = struct.Struct("<cI")

#: Public aliases of the framing constants.  The write-ahead log
#: (:mod:`repro.ingest.wal`) reuses the same header discipline — magic
#: byte + little-endian ``uint32`` payload length — with its own magic,
#: so both on-wire and on-disk records share one framing idiom.
FRAME_HEADER = _HEADER
FRAME_MAGIC = _MAGIC

#: Frontier steps a worker runs per round trip when the caller does not
#: say otherwise.  Small enough that the global k-th bound refreshes
#: often (preserving the early-stop merge's pruning), large enough that
#: pipe round trips amortize over real block work.
DEFAULT_STEP_BATCH = 8


class WireError(RuntimeError):
    """A malformed frame on the worker pipe (bad magic, short payload)."""


class WorkerDiedError(RuntimeError):
    """The worker process hung up (or timed out) mid-conversation.

    Carries the shard id so the serving layer can respawn the right
    worker; the in-flight query degrades to the typed
    :class:`~repro.core.executor.QueryAbortedError` path.
    """

    def __init__(self, message: str, *, shard_id: int):
        super().__init__(message)
        self.shard_id = shard_id

    def __reduce__(self):
        return (_rebuild_worker_died, (str(self), self.shard_id))


def _rebuild_worker_died(message, shard_id):
    return WorkerDiedError(message, shard_id=shard_id)


def send_msg(conn, message) -> None:
    """Frame and send one message (length-prefixed pickle)."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    conn.send_bytes(_HEADER.pack(_MAGIC, len(payload)) + payload)


def recv_msg(conn, timeout: float | None = None):
    """Receive one framed message.

    Raises :class:`TimeoutError` when nothing arrives within ``timeout``
    seconds, :class:`EOFError` when the peer hung up, and
    :class:`WireError` on a frame that fails validation.
    """
    if timeout is not None and not conn.poll(timeout):
        raise TimeoutError(f"no frame within {timeout}s")
    data = conn.recv_bytes()
    if len(data) < _HEADER.size:
        raise WireError(f"short frame: {len(data)} byte(s)")
    magic, length = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    payload = data[_HEADER.size:]
    if len(payload) != length:
        raise WireError(
            f"frame header promises {length} payload byte(s), got {len(payload)}"
        )
    return pickle.loads(payload)


# ----------------------------------------------------------------------
# requests (front end -> worker)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OpenSearch:
    """Start a progressive search session and run its first step batch.

    ``kth`` is the front end's current global k-th best score (``None``
    until the global heap is full); the worker steps while its certified
    ``best_unseen`` bound is ``<= kth`` (non-strict — the same continue
    rule the thread-mode merge uses, so tid tie-breaking survives), while
    its *local* top-k is not yet certified, and while ``max_steps`` is
    not exhausted.
    """

    request_id: int
    query: TopKQuery
    kth: float | None = None
    max_steps: int = DEFAULT_STEP_BATCH
    trace: bool = False


@dataclass(frozen=True)
class StepBatch:
    """Continue an open session for up to ``max_steps`` more steps."""

    request_id: int
    kth: float | None = None
    max_steps: int = DEFAULT_STEP_BATCH


@dataclass(frozen=True)
class CloseSearch:
    """End a session; the worker replies with counters + observability.

    Closes both kinds of session — batched top-k searches *and* any-k
    enumeration cursors (:class:`OpenEnum`)."""

    request_id: int


@dataclass(frozen=True)
class OpenEnum:
    """Open an any-k enumeration session and fetch its first rows.

    The worker pins an :class:`~repro.core.anyk.AnyKCursor` on its shard
    snapshot, keyed by ``request_id`` like a search session, and replies
    with a :class:`NextBatch` of up to ``count`` certified rows.  The
    query travels with ``projection=None`` — the front end projects from
    global tids after the merge.
    """

    request_id: int
    query: TopKQuery
    count: int = DEFAULT_STEP_BATCH
    trace: bool = False


@dataclass(frozen=True)
class StepNext:
    """Pull the next certified rows from an open enumeration session."""

    request_id: int
    count: int = DEFAULT_STEP_BATCH


@dataclass(frozen=True)
class ReverseCount:
    """Count this shard's tuples preceding a reverse top-k target.

    Stateless single round trip (no session): ``query`` carries the
    candidate ranking function with ``k`` as the predecessor cap,
    ``t_score`` the target's exact score, and ``tie_tid`` the
    *shard-local* tid threshold for score ties — the target's insertion
    position in this shard's tid map, so local order agrees with global
    ``(score, gtid)`` order (tid maps are monotone).
    """

    request_id: int
    query: TopKQuery
    t_score: float
    tie_tid: int


@dataclass(frozen=True)
class ColdCache:
    """Drop the worker's buffered pages and shared caches (bench regime)."""


@dataclass(frozen=True)
class Ping:
    """Health probe; the worker answers :class:`Pong` immediately."""


@dataclass(frozen=True)
class Shutdown:
    """Orderly exit: the worker drains nothing and leaves its loop."""


# ----------------------------------------------------------------------
# responses (worker -> front end)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SearchBatch:
    """One round's scored candidates from a shard.

    ``delta_rows`` is non-empty only on the opening batch: the snapshot's
    delta store carries no block bound, so its matches merge into the
    global heap unconditionally before the frontier loop (exactly as in
    thread mode).  Tids are **shard-local**; the front end translates via
    the shard's tid map.
    """

    request_id: int
    scored: list[tuple[float, int]]
    best_unseen: float
    exhausted: bool
    steps: int
    delta_rows: list[tuple[float, int]] = field(default_factory=list)


@dataclass(frozen=True)
class SearchClosed:
    """End-of-session accounting shipped across the process boundary.

    ``counter_deltas`` is the worker registry's per-query delta in
    :meth:`~repro.obs.metrics.MetricsRegistry.counter_items` form;
    ``spans`` are the worker tracer's completed root spans (empty unless
    the session was opened with ``trace=True``).
    """

    request_id: int
    blocks_accessed: int
    candidates_examined: int
    tuples_examined: int
    device_reads: int
    counter_deltas: list = field(default_factory=list)
    spans: list = field(default_factory=list)


@dataclass(frozen=True)
class NextBatch:
    """Certified enumeration rows from one shard, in rank order.

    ``rows`` are ``(score, local_tid)`` pairs; an ``exhausted`` reply
    with fewer than the requested rows means the shard's snapshot has no
    further matches (never *try again*).  The session stays open for
    accounting until :class:`CloseSearch`.
    """

    request_id: int
    rows: list[tuple[float, int]]
    exhausted: bool


@dataclass(frozen=True)
class ReverseCounted:
    """Answer to :class:`ReverseCount`, with per-call work accounting."""

    request_id: int
    preceding: int
    blocks_accessed: int
    candidates_examined: int
    tuples_examined: int
    device_reads: int
    counter_deltas: list = field(default_factory=list)


@dataclass(frozen=True)
class Pong:
    shard_id: int
    pid: int
    rows: int
    #: "primary" or "replica" — which role the worker was spawned into;
    #: a promoted replica keeps reporting "replica" (process identity is
    #: fixed at spawn), which is how the failover suite tells a warm
    #: promotion apart from a cold respawn.
    role: str = "primary"


@dataclass(frozen=True)
class Ack:
    """Generic success reply for administrative requests."""


@dataclass(frozen=True)
class WorkerFault:
    """A typed failure while serving one request.

    ``error`` is the pickled typed exception itself (storage errors and
    :class:`~repro.core.executor.QueryAbortedError` round-trip pickle by
    contract), so the front end re-raises the same type it would have
    seen in thread mode.
    """

    request_id: int | None
    error: Exception
    blocks_accessed: int = 0
