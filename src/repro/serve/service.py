"""Concurrent query serving over a ranking cube.

:class:`QueryService` is the front end the ROADMAP's "heavy traffic"
north star asks for: a worker thread pool draining a query stream through
one shared :class:`~repro.core.executor.RankingCubeExecutor`, with the
cross-query caches of :mod:`repro.serve.cache` attached:

* the **shared pseudo-block cache** — repeated selections skip page I/O
  and decode work entirely,
* the **bound memo** — each ``f(bid)`` lower bound is minimized once per
  (ranking function, grid) across the whole stream,
* the **thread-safe buffer pool** underneath (lock-striped page latches),
  so concurrent cold reads stay correct and metered.

The service is an *any-time, many-query* regime in the sense of the
ranked-enumeration literature: answers are exact (identical to serial
execution — property-tested), only the amortization changes.

Failure semantics: a query that exhausts the storage retry budget aborts
with :class:`~repro.core.executor.QueryAbortedError` carried by its
future; the shared caches only ever receive fully decoded entries, so an
aborted query cannot poison state used by its neighbors.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from ..core.cube import RankingCube
from ..core.executor import ExecutorTrace, QueryAbortedError, RankingCubeExecutor
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Span, Tracer
from ..relational.query import QueryResult, TopKQuery
from ..relational.table import Table
from .cache import BoundMemo, ColumnarBlockCache, PseudoBlockCache

#: Retained span trees when ``trace_spans`` is enabled (a ring buffer —
#: profiling wants recent queries, not unbounded memory).
DEFAULT_SPAN_CAPACITY = 256


class ServiceClosedError(RuntimeError):
    """Raised when submitting to a closed :class:`QueryService`."""


class ServiceOverloadedError(RuntimeError):
    """Admission control rejected a query: too many already in flight.

    Raised by services configured with ``max_inflight`` instead of
    queueing without bound — the caller sees backpressure immediately
    and can shed, retry, or route elsewhere.
    """


def _storage_registry(cube: RankingCube) -> MetricsRegistry | None:
    """The metrics registry of the storage tree under ``cube``, if any.

    Reached through the base table's buffer pool; fragmented cubes and
    cubes built over registry-less storage return ``None`` and the
    service falls back to a private registry.
    """
    pool = getattr(getattr(cube, "base_table", None), "pool", None)
    return getattr(pool, "registry", None)


@dataclass(frozen=True)
class QueryRecord:
    """Per-query accounting kept by the service (latency + I/O + caches)."""

    latency_s: float
    blocks_accessed: int
    candidates_examined: int
    tuples_examined: int
    cold_fetches: int
    query_buffer_hits: int
    shared_cache_hits: int
    bound_memo_hits: int
    base_block_reads: int
    aborted: bool = False


@dataclass
class ServiceStats:
    """Aggregate view over every query the service has finished."""

    records: list[QueryRecord] = field(default_factory=list)

    @property
    def queries(self) -> int:
        return len(self.records)

    @property
    def aborted(self) -> int:
        return sum(1 for r in self.records if r.aborted)

    def latency_percentile(self, fraction: float) -> float:
        """Latency (seconds) at a quantile in [0, 1] (nearest-rank)."""
        if not self.records:
            return 0.0
        ordered = sorted(r.latency_s for r in self.records)
        rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
        return ordered[rank]

    def mean(self, attribute: str) -> float:
        if not self.records:
            return 0.0
        return sum(getattr(r, attribute) for r in self.records) / len(self.records)

    def total(self, attribute: str) -> int:
        return sum(getattr(r, attribute) for r in self.records)


class QueryService:
    """A thread-pooled, cache-sharing query server over one ranking cube.

    Parameters
    ----------
    cube:
        The cube to serve (full or fragmented).  The service registers its
        pseudo-block cache as an invalidation listener, so delta appends
        (:meth:`RankingCube.refresh_delta`) atomically drop any cached tid
        list that the append could have extended.
    relation:
        Original relation, for queries that project extra attributes.
    workers:
        Worker threads.  ``1`` is a valid (serial, still cache-sharing)
        configuration.
    pseudo_cache / bound_memo:
        Injected shared caches; built with defaults when omitted.  Passing
        ``None`` explicitly and ``share_caches=False`` disables a layer.
    share_caches:
        Ablation switch: ``False`` serves concurrently but without the
        cross-query layers (per-query buffers still apply).
    registry:
        Metrics spine the service publishes to (queries, aborts, latency
        histogram) and hands to default-constructed caches.  Defaults to
        the storage tree's registry reached through the cube, so *every*
        layer under one service accounts into one registry.
    trace_spans:
        When true, each query is executed under a per-query
        :class:`~repro.obs.tracing.Tracer` and its completed span tree is
        retained in :attr:`spans` (a bounded ring).  Span structure and
        logical counters are exact; watched-metric I/O deltas include
        concurrent neighbours' traffic (see :mod:`repro.obs.tracing`).
    compactor:
        An externally-owned :class:`~repro.core.compaction.CubeCompactor`
        to associate with this service (exposed as :attr:`compactor`;
        lifecycle stays with the caller).
    auto_compact_delta:
        Convenience: when set, the service creates, starts and owns a
        background compactor that drains the cube's delta store once it
        holds at least this many tuples.  Query traffic keeps flowing
        while it runs — swaps are atomic under the cube's state lock and
        the invalidation-listener protocol drops stale cache entries.
        :meth:`close` stops it.  Mutually exclusive with ``compactor``.
    use_vector:
        Serve through the vectorized columnar executor (see
        ``RankingCubeExecutor.use_vector``).  Answers stay byte-identical
        to row-path serving; with ``share_caches`` the service also
        attaches a shared :class:`~repro.serve.cache.ColumnarBlockCache`
        so decoded base blocks are reused across the stream.
    columnar_cache:
        Injected columnar block cache (vector mode only); built with
        defaults when omitted and ``share_caches`` is on.
    """

    def __init__(
        self,
        cube: RankingCube,
        relation: Table | None = None,
        workers: int = 4,
        pseudo_cache: PseudoBlockCache | None = None,
        bound_memo: BoundMemo | None = None,
        share_caches: bool = True,
        buffer_pseudo_blocks: bool = True,
        registry: MetricsRegistry | None = None,
        trace_spans: bool = False,
        span_capacity: int = DEFAULT_SPAN_CAPACITY,
        compactor=None,
        auto_compact_delta: int | None = None,
        use_vector: bool = False,
        columnar_cache: ColumnarBlockCache | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if compactor is not None and auto_compact_delta is not None:
            raise ValueError(
                "pass either a compactor or auto_compact_delta, not both"
            )
        self.cube = cube
        self.workers = workers
        if registry is None:
            registry = _storage_registry(cube)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace_spans = trace_spans
        self.span_capacity = span_capacity
        self.spans: list[Span] = []
        if share_caches:
            # explicit None tests: an *empty* injected cache is falsy
            # (it has __len__), yet must still be the one we use
            self.pseudo_cache = (
                pseudo_cache
                if pseudo_cache is not None
                else PseudoBlockCache(registry=self.registry)
            )
            self.bound_memo = (
                bound_memo
                if bound_memo is not None
                else BoundMemo(registry=self.registry)
            )
        else:
            self.pseudo_cache = None
            self.bound_memo = None
        self.use_vector = bool(use_vector)
        if self.use_vector and share_caches:
            self.columnar_cache = (
                columnar_cache
                if columnar_cache is not None
                else ColumnarBlockCache(registry=self.registry)
            )
        else:
            self.columnar_cache = columnar_cache if self.use_vector else None
        self._queries_counter = self.registry.counter("serve.service.queries")
        self._searches_counter = self.registry.counter(
            "serve.service.searches_opened"
        )
        self._reverse_counter = self.registry.counter(
            "serve.service.reverse_queries"
        )
        self._aborted_counter = self.registry.counter("serve.service.aborted")
        self._latency_hist = self.registry.histogram("serve.service.latency_s")
        self._blocks_counter = self.registry.counter("serve.service.blocks_accessed")
        self._candidates_counter = self.registry.counter(
            "serve.service.candidates_examined"
        )
        self.executor = RankingCubeExecutor(
            cube,
            relation,
            buffer_pseudo_blocks=buffer_pseudo_blocks,
            pseudo_cache=self.pseudo_cache,
            bound_memo=self.bound_memo,
            use_vector=self.use_vector,
            columnar_cache=self.columnar_cache,
        )
        self.stats = ServiceStats()
        self._stats_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._closed = False
        if self.pseudo_cache is not None:
            self._listener = self.pseudo_cache.invalidate_cuboids
            cube.add_invalidation_listener(self._listener)
        else:
            self._listener = None
        if self.columnar_cache is not None:
            # conservative eager release: uid-keyed entries of a replaced
            # table generation already miss by construction, but dropping
            # them on any maintenance event frees their memory now
            self._columnar_listener = (
                lambda _names: self.columnar_cache.clear()
            )
            cube.add_invalidation_listener(self._columnar_listener)
        else:
            self._columnar_listener = None
        self.compactor = compactor
        self._owns_compactor = False
        if auto_compact_delta is not None:
            from ..core.compaction import CubeCompactor

            pool = getattr(getattr(cube, "base_table", None), "pool", None)
            if pool is None:
                raise ValueError(
                    "auto_compact_delta needs a cube whose base table "
                    "exposes its buffer pool"
                )
            self.compactor = CubeCompactor(
                cube, pool, min_delta=auto_compact_delta
            ).start()
            self._owns_compactor = True

    # ------------------------------------------------------------------
    # serving APIs
    # ------------------------------------------------------------------
    def submit(self, query: TopKQuery) -> "Future[QueryResult]":
        """Enqueue one query; the future resolves to its :class:`QueryResult`.

        A storage-fault abort surfaces as the future's exception
        (:class:`QueryAbortedError`, partial results attached).
        """
        if self._closed:
            raise ServiceClosedError("QueryService is closed")
        return self._pool.submit(self._run_one, query)

    def run_batch(self, queries) -> list[QueryResult]:
        """Run a batch concurrently, returning answers in request order."""
        futures = [self.submit(q) for q in queries]
        return [f.result() for f in futures]

    def open_search(self, query: TopKQuery):
        """Open a resumable any-k cursor over the shared executor.

        Unlike :meth:`submit` the cursor is caller-stepped, not pooled:
        the caller pulls certified rank-order rows past ``query.k`` via
        :meth:`~repro.core.anyk.AnyKCursor.next_batch` at its own pace,
        against the cube snapshot pinned at open time.  Storage faults
        surface from ``next_batch`` as typed
        :class:`~repro.core.executor.QueryAbortedError`.
        """
        if self._closed:
            raise ServiceClosedError("QueryService is closed")
        self._searches_counter.inc()
        tracer = Tracer(self.registry) if self.trace_spans else None
        cursor = self.executor.open_search(
            query, trace=ExecutorTrace(), tracer=tracer
        )
        if tracer is not None:
            def _retain():
                # fold the open/batch spans under one "anyk_query" root
                # (same shape the sharded cursor builds at close time)
                children = tracer.roots[:]
                tracer.roots.clear()
                with tracer.span(
                    "anyk_query",
                    k=query.k,
                    selections=dict(sorted(query.selections.items())),
                    ranking=",".join(query.ranking.dims),
                ) as root:
                    root.children.extend(children)
                    live = cursor.search.result
                    root.add_many(
                        rows=cursor.rank,
                        blocks_accessed=live.blocks_accessed,
                        candidates_examined=live.candidates_examined,
                    )
                self._retain_spans(tracer)

            cursor._on_close = _retain
        return cursor

    def submit_reverse(self, query):
        """Enqueue one reverse top-k query
        (:class:`~repro.core.reverse.ReverseTopKQuery`); the future
        resolves to a :class:`~repro.core.reverse.ReverseTopKResult`.
        Aborts surface as typed :class:`QueryAbortedError` exactly like
        forward queries."""
        if self._closed:
            raise ServiceClosedError("QueryService is closed")
        return self._pool.submit(self._run_reverse, query)

    def _run_reverse(self, query):
        from ..core.reverse import reverse_topk

        trace = ExecutorTrace()
        tracer = Tracer(self.registry) if self.trace_spans else None
        started = time.perf_counter()
        self._reverse_counter.inc()
        try:
            result = reverse_topk(
                self.executor, query, trace=trace, tracer=tracer
            )
        except QueryAbortedError as exc:
            self._retain_spans(tracer)
            self._record(
                trace,
                time.perf_counter() - started,
                blocks=exc.blocks_accessed,
                candidates=len(trace.candidate_bids),
                tuples=0,
                aborted=True,
            )
            raise
        self._retain_spans(tracer)
        self._record(
            trace,
            time.perf_counter() - started,
            blocks=result.blocks_accessed,
            candidates=result.candidates_examined,
            tuples=result.tuples_examined,
            aborted=False,
        )
        return result

    def _run_one(self, query: TopKQuery) -> QueryResult:
        trace = ExecutorTrace()
        tracer = Tracer(self.registry) if self.trace_spans else None
        started = time.perf_counter()
        try:
            result = self.executor.execute(query, trace=trace, tracer=tracer)
        except QueryAbortedError as exc:
            self._retain_spans(tracer)
            self._record(
                trace,
                time.perf_counter() - started,
                blocks=exc.blocks_accessed,
                candidates=len(trace.candidate_bids),
                tuples=0,
                aborted=True,
            )
            raise
        self._retain_spans(tracer)
        self._record(
            trace,
            time.perf_counter() - started,
            blocks=result.blocks_accessed,
            candidates=result.candidates_examined,
            tuples=result.tuples_examined,
            aborted=False,
        )
        return result

    def _record(
        self,
        trace: ExecutorTrace,
        latency_s: float,
        *,
        blocks: int,
        candidates: int,
        tuples: int,
        aborted: bool,
    ) -> None:
        record = QueryRecord(
            latency_s=latency_s,
            blocks_accessed=blocks,
            candidates_examined=candidates,
            tuples_examined=tuples,
            cold_fetches=trace.pseudo_block_fetches,
            query_buffer_hits=trace.pseudo_block_buffer_hits,
            shared_cache_hits=trace.shared_cache_hits,
            bound_memo_hits=trace.bound_memo_hits,
            base_block_reads=trace.base_block_reads,
            aborted=aborted,
        )
        with self._stats_lock:
            self.stats.records.append(record)
        # service-level registry series: the aggregate face of the same
        # events ``records`` keeps per query
        self._queries_counter.inc()
        if aborted:
            self._aborted_counter.inc()
        self._latency_hist.observe(latency_s)
        self._blocks_counter.inc(blocks)
        self._candidates_counter.inc(candidates)

    def _retain_spans(self, tracer: Tracer | None) -> None:
        if tracer is None or not tracer.roots:
            return
        with self._stats_lock:
            self.spans.extend(tracer.roots)
            if len(self.spans) > self.span_capacity:
                del self.spans[: len(self.spans) - self.span_capacity]

    # ------------------------------------------------------------------
    # cache administration
    # ------------------------------------------------------------------
    def invalidate_caches(self) -> None:
        """Drop both shared caches (e.g. after an external rebuild)."""
        if self.pseudo_cache is not None:
            self.pseudo_cache.clear()
        if self.bound_memo is not None:
            self.bound_memo.clear()
        if self.columnar_cache is not None:
            self.columnar_cache.clear()

    def cache_hit_rate(self) -> float:
        """Shared pseudo-block cache hit rate (0.0 when disabled)."""
        if self.pseudo_cache is None:
            return 0.0
        return self.pseudo_cache.stats.hit_rate

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop accepting queries, drain the pool, unhook invalidation.

        A service-owned background compactor (``auto_compact_delta``) is
        stopped too; an injected ``compactor`` is left running — its
        lifecycle belongs to whoever created it.
        """
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=wait)
        if self._owns_compactor and self.compactor is not None:
            self.compactor.close(wait=wait)
        if self._listener is not None:
            self.cube.remove_invalidation_listener(self._listener)
        if self._columnar_listener is not None:
            self.cube.remove_invalidation_listener(self._columnar_listener)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
