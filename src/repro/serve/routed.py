"""Adaptive routing in front of the serving tier.

:class:`RoutedQueryService` is a :class:`~repro.serve.service.QueryService`
whose per-query execution goes through an
:class:`~repro.route.router.AdaptiveRouter` instead of straight into the
cube executor: each query is priced across the cube / vector / fragment /
baseline paths, routed to the blended-cost minimum, and its observed cost
is folded back into the router's cost book.  The answer contract is
untouched — every path returns byte-identical results, so a client cannot
tell which path served it except through ``route.*`` metrics.

The service can also own the two adaptive maintenance daemons:

* ``auto_advise_observations=N`` attaches a
  :class:`~repro.route.advisor.CubeAdvisor` that sees every routed
  query's selection set and, in the background, promotes hot cuboids and
  demotes cold ones under ``advisor_budget_entries``.
* ``drift_check_interval=N`` runs a
  :class:`~repro.route.drift.DriftDetector` probe every ``N`` routed
  queries and, when the live distribution has drifted past
  ``drift_threshold``, re-partitions the grid online through
  :func:`~repro.route.drift.repartition_cube` (at most one repartition at
  a time; queries keep flowing against their pinned snapshots).
"""

from __future__ import annotations

import threading
import time

from ..core.cube import RankingCube
from ..core.executor import ExecutorTrace, QueryAbortedError
from ..obs.tracing import Tracer
from ..relational.query import QueryResult, TopKQuery
from ..relational.table import Table
from ..route.advisor import CubeAdvisor
from ..route.drift import (
    DEFAULT_DRIFT_THRESHOLD,
    DriftDetector,
    RepartitionReport,
    repartition_cube,
)
from ..route.router import DEFAULT_PROBE_MARGIN, AdaptiveRouter
from ..route.cost import DEFAULT_PRIOR_STRENGTH
from .service import QueryService


class RoutedQueryService(QueryService):
    """A query service whose front door is the adaptive router.

    Accepts every :class:`QueryService` parameter (the cube-family paths
    share the service's pseudo-block / bound-memo / columnar caches) plus:

    Parameters
    ----------
    fragment_cube:
        Optional fragment-family cube added as a fourth route path.
    include_vector:
        Offer the vectorized executor as a route path (default on; this
        is independent of ``use_vector``, which picks the executor the
        *non-routed* APIs like :meth:`open_search` use).
    prior_strength / probe_margin:
        Router tuning, passed through to :class:`AdaptiveRouter`.
    auto_advise_observations:
        When set, the service owns a background :class:`CubeAdvisor`
        with ``min_observations`` set to this value; every routed query
        is observed and the daemon re-plans after each batch of new
        observations.  :meth:`close` stops it.
    advisor_budget_entries:
        Space budget (total materialized entries) handed to the owned
        advisor.
    drift_check_interval:
        When set, every ``N``-th routed query triggers a drift probe; a
        drifted grid is re-partitioned inline (one worker pays the
        rebuild; concurrent queries proceed on pinned snapshots).
    drift_threshold:
        Max bin-depth ratio beyond which the grid counts as drifted.
    """

    def __init__(
        self,
        cube: RankingCube,
        relation: Table,
        *,
        fragment_cube: RankingCube | None = None,
        include_vector: bool = True,
        prior_strength: float = DEFAULT_PRIOR_STRENGTH,
        probe_margin: float = DEFAULT_PROBE_MARGIN,
        auto_advise_observations: int | None = None,
        advisor_budget_entries: int | None = None,
        drift_check_interval: int | None = None,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
        **service_kwargs,
    ):
        if relation is None:
            raise ValueError("RoutedQueryService needs the base relation")
        super().__init__(cube, relation, **service_kwargs)
        self.router = AdaptiveRouter.for_cube(
            cube,
            relation,
            fragment_cube=fragment_cube,
            include_vector=include_vector,
            pseudo_cache=self.pseudo_cache,
            bound_memo=self.bound_memo,
            columnar_cache=self.columnar_cache,
            registry=self.registry,
            prior_strength=prior_strength,
            probe_margin=probe_margin,
        )
        self.relation = relation
        pool = getattr(cube.base_table, "pool", None)
        self.advisor: CubeAdvisor | None = None
        self._owns_advisor = False
        if auto_advise_observations is not None:
            if pool is None:
                raise ValueError(
                    "auto_advise_observations needs a cube whose base "
                    "table exposes its buffer pool"
                )
            self.advisor = CubeAdvisor(
                cube,
                relation,
                pool,
                space_budget_entries=advisor_budget_entries,
                min_observations=auto_advise_observations,
                registry=self.registry,
            ).start()
            self._owns_advisor = True
        self.drift_detector: DriftDetector | None = None
        self._drift_interval = drift_check_interval
        self._drift_pool = pool
        if drift_check_interval is not None:
            if drift_check_interval < 1:
                raise ValueError("drift_check_interval must be >= 1")
            if pool is None:
                raise ValueError(
                    "drift_check_interval needs a cube whose base table "
                    "exposes its buffer pool"
                )
            self.drift_detector = DriftDetector(cube, threshold=drift_threshold)
        self._routed_count = 0
        self._route_lock = threading.Lock()
        self._repartition_lock = threading.Lock()
        self.repartitions: list[RepartitionReport] = []

    # ------------------------------------------------------------------
    def _run_one(self, query: TopKQuery) -> QueryResult:
        trace = ExecutorTrace()
        tracer = Tracer(self.registry) if self.trace_spans else None
        started = time.perf_counter()
        try:
            decision = self.router.execute(query, trace=trace, tracer=tracer)
        except QueryAbortedError as exc:
            self._retain_spans(tracer)
            self._record(
                trace,
                time.perf_counter() - started,
                blocks=exc.blocks_accessed,
                candidates=len(trace.candidate_bids),
                tuples=0,
                aborted=True,
            )
            raise
        self._retain_spans(tracer)
        result = decision.result
        self._record(
            trace,
            time.perf_counter() - started,
            blocks=result.blocks_accessed,
            candidates=result.candidates_examined,
            tuples=result.tuples_examined,
            aborted=False,
        )
        if self.advisor is not None:
            self.advisor.observe(query)
        self._after_routed()
        return result

    def _after_routed(self) -> None:
        if self.drift_detector is None:
            return
        with self._route_lock:
            self._routed_count += 1
            due = self._routed_count % self._drift_interval == 0
        if due:
            self.maybe_repartition()

    # ------------------------------------------------------------------
    def maybe_repartition(self) -> RepartitionReport | None:
        """Probe for drift; re-partition the grid if it has drifted.

        Returns the :class:`RepartitionReport` when a rebuild ran (check
        ``report.swapped`` — a concurrent compaction can abort it), or
        ``None`` when the grid is still balanced or another repartition
        is already in flight.
        """
        detector = self.drift_detector
        if detector is None:
            detector = DriftDetector(self.cube)
        if not self._repartition_lock.acquire(blocking=False):
            return None
        try:
            report = detector.check()
            if not report.drifted:
                return None
            rebuilt = repartition_cube(
                self.cube,
                self.relation,
                self._drift_pool or self.cube.base_table.pool,
                registry=self.registry,
            )
            self.repartitions.append(rebuilt)
            return rebuilt
        finally:
            self._repartition_lock.release()

    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        super().close(wait=wait)
        if self._owns_advisor and self.advisor is not None:
            self.advisor.close(wait=wait)
