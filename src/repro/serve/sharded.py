"""Scatter-gather top-k serving over a sharded ranking cube.

:class:`ShardedQueryService` fans each :class:`TopKQuery` out to one
:class:`~repro.core.executor.ProgressiveSearch` per consulted shard and
merges their candidate streams in a global frontier:

* **Scatter** — the :class:`~repro.shard.map.ShardMap` picks the shards
  (a single one when an equality selection pins the shard key, all of
  them otherwise); each gets its own search over its own cube snapshot.
* **Gather** — a merge loop steps every *eligible* shard concurrently
  (thread pool), pushing returned ``(score, global tid)`` pairs into one
  global top-k heap.  A shard stays eligible while the global answer is
  short of ``k`` **or** its certified ``best_unseen`` bound is ``<=``
  the k-th best seen score — the same non-strict continue condition the
  serial executor uses, so tid-ascending tie-breaking survives the
  merge.  The loop stops when no shard is eligible: every unexamined
  block on every shard then bounds strictly above the k-th score and
  can never displace a kept row.
* **Delta** — per-shard delta rows carry no block bound and merge
  unconditionally before the loop (seeding the heap tightens the stop).

Answers are *byte-identical* to an unsharded executor over the same
rows (property-tested at 1/2/4 shards, pristine and faulty devices):
scores are computed from the same stored values by the same function,
global tids are preserved by the build, and stepping shards in any
interleaving changes amortization only.

Failure semantics: shards are independent — a storage fault on one
(past its retry budget) aborts the *query* with
:class:`~repro.core.executor.QueryAbortedError` carrying the merged
partial rows, but other shards' devices, caches, and in-flight queries
are untouched.  Each shard keeps its **own** pseudo-block cache and
bound memo (cuboid names and pids collide across shards, so sharing one
cache would alias entries); each cache registers on its shard's storage
registry and as an invalidation listener on its shard's cube.

Two execution modes share the merge logic:

* ``mode="thread"`` (default) — per-shard searches step on a thread
  pool inside this interpreter.  Correct, cache-warm, but GIL-bound:
  shard steps serialize on the interpreter lock.
* ``mode="process"`` — each shard's whole stack (device, buffer pool,
  cube snapshot, caches) lives in a long-lived worker **process**
  (:mod:`repro.serve.procpool`), warm-started from a SHA-256-pinned
  shard snapshot, speaking length-prefixed pickle frames
  (:mod:`repro.serve.wire`).  The merge loop is unchanged — it just
  steps shards in *batches* per round trip, refreshing the global k-th
  bound between rounds — so answers are byte-identical to thread mode
  (property-tested).  Worker-side metrics and span trees ship back with
  each response and are folded into the front-end registry/trace.  The
  front end adds admission control (``max_inflight``) and duplicate
  in-flight query coalescing.
"""

from __future__ import annotations

import pickle
import shutil
import tempfile
import threading
import time
from bisect import bisect_left
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from itertools import count

from ..core.anyk import AnyKCursor
from ..core.executor import (
    ExecutorTrace,
    ProgressiveSearch,
    QueryAbortedError,
    RankingCubeExecutor,
    _push_topk,
    _rows_from_heap,
)
from ..core.reverse import ReverseTopKQuery, ReverseTopKResult, count_preceding
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Span, Tracer, adopt_spans, maybe_span
from ..relational.query import QueryResult, ResultRow, ShardIO, TopKQuery
from ..shard.builder import CubeShard, ShardedCube, clone_shard
from ..storage.device import StorageError
from . import wire
from .cache import BoundMemo, PseudoBlockCache
from .procpool import ProcessShardPool, ProcPoolError
from .service import (
    DEFAULT_SPAN_CAPACITY,
    ServiceClosedError,
    ServiceOverloadedError,
)


@dataclass(frozen=True)
class ShardedQueryRecord:
    """Per-query accounting for one scatter-gathered execution."""

    latency_s: float
    shards_consulted: int
    merge_rounds: int
    shard_steps: int
    blocks_accessed: int
    candidates_examined: int
    tuples_examined: int
    aborted: bool = False


@dataclass
class ShardedServiceStats:
    """Aggregate view over every query the service has finished."""

    records: list[ShardedQueryRecord] = field(default_factory=list)

    @property
    def queries(self) -> int:
        return len(self.records)

    @property
    def aborted(self) -> int:
        return sum(1 for r in self.records if r.aborted)

    def mean(self, attribute: str) -> float:
        if not self.records:
            return 0.0
        return sum(getattr(r, attribute) for r in self.records) / len(self.records)

    def total(self, attribute: str) -> int:
        return sum(getattr(r, attribute) for r in self.records)


def _blame_shard(exc: BaseException, shard_id: int) -> None:
    """Attach the faulting shard id to a storage error (and its cause).

    Thread-mode per-shard calls raise bare :class:`StorageError`\\ s that
    carry no shard attribution; the failover path needs to know *which*
    primary died to promote its replica.  Process mode gets this for
    free from :class:`~repro.serve.wire.WorkerDiedError`.  Annotating
    the ``cause`` too matters because the service wraps a per-shard
    :class:`QueryAbortedError` by re-blaming its cause, not the wrapper.
    """
    for target in (exc, getattr(exc, "cause", None)):
        if target is not None and getattr(target, "shard_id", None) is None:
            try:
                target.shard_id = shard_id
            except AttributeError:
                pass  # exotic exception with __slots__: no attribution


class _ShardContext:
    """Per-shard serving state: executor + caches + invalidation hook."""

    def __init__(self, shard: CubeShard, share_caches: bool, buffer_pseudo: bool):
        assert shard.cube is not None
        self.shard = shard
        registry = getattr(shard.table.pool, "registry", None)
        if share_caches:
            self.pseudo_cache = PseudoBlockCache(registry=registry)
            self.bound_memo = BoundMemo(registry=registry)
            self._listener = self.pseudo_cache.invalidate_cuboids
            shard.cube.add_invalidation_listener(self._listener)
        else:
            self.pseudo_cache = None
            self.bound_memo = None
            self._listener = None
        self.executor = RankingCubeExecutor(
            shard.cube,
            shard.table,
            buffer_pseudo_blocks=buffer_pseudo,
            pseudo_cache=self.pseudo_cache,
            bound_memo=self.bound_memo,
        )

    def unhook(self) -> None:
        if self._listener is not None and self.shard.cube is not None:
            self.shard.cube.remove_invalidation_listener(self._listener)
            self._listener = None


class _ThreadEnumStream:
    """One shard's enumeration stream, served in-process.

    Wraps an :class:`~repro.core.anyk.AnyKCursor` over the shard's
    executor; rows come back as ``(score, global tid)`` pairs, already
    in the shard's certified rank order (the tid map is monotone, so
    local ``(score, tid)`` order *is* global ``(score, gtid)`` order).
    """

    def __init__(
        self,
        shard: CubeShard,
        ctx: _ShardContext,
        query: TopKQuery,
        service: "ShardedQueryService",
    ):
        self.shard = shard
        self._service = service
        self.io_before = shard.db.io_snapshot()
        self.cursor = AnyKCursor(ctx.executor, query, ExecutorTrace())

    def next_rows(self, count: int):
        try:
            self._service._fault("enum_next", self.shard.shard_id)
            rows = self.cursor.next_batch(count)
        except StorageError as exc:
            _blame_shard(exc, self.shard.shard_id)
            raise
        pairs = [(row.score, self.shard.to_global(row.tid)) for row in rows]
        return pairs, self.cursor.exhausted

    def finish(self, result: QueryResult, registry, spans: list) -> None:
        sub = self.cursor.result
        shard_id = self.shard.shard_id
        device_reads = self.shard.db.io_since(self.io_before).reads
        result.blocks_accessed += sub.blocks_accessed
        result.candidates_examined += sub.candidates_examined
        result.tuples_examined += sub.tuples_examined
        result.shard_io[shard_id] = ShardIO(
            blocks_accessed=sub.blocks_accessed,
            candidates_examined=sub.candidates_examined,
            tuples_examined=sub.tuples_examined,
            device_reads=device_reads,
        )
        registry.counter(
            "shard.service.blocks_accessed", shard=str(shard_id)
        ).inc(sub.blocks_accessed)
        registry.counter(
            "shard.service.device_reads", shard=str(shard_id)
        ).inc(device_reads)

    def abort_close(self) -> int:
        return self.cursor.result.blocks_accessed


class _ProcessEnumStream:
    """One shard's enumeration stream, served by a worker process.

    The :class:`~repro.serve.wire.OpenEnum` reply (the first rows) is
    buffered here and drained before any :class:`~repro.serve.wire
    .StepNext` round trip, so the cursor consumes both modes through
    one ``next_rows`` interface.
    """

    def __init__(self, shard: CubeShard, handle, request_id: int, opening):
        self.shard = shard
        self.handle = handle
        self.request_id = request_id
        self._opening = opening  # first wire.NextBatch, drained once
        self._closed_blocks = 0

    def next_rows(self, count: int):
        if self._opening is not None:
            batch, self._opening = self._opening, None
        else:
            batch = self.handle.request(
                wire.StepNext(request_id=self.request_id, count=count)
            )
        pairs = [
            (score, self.shard.to_global(local_tid))
            for score, local_tid in batch.rows
        ]
        return pairs, batch.exhausted

    def finish(self, result: QueryResult, registry, spans: list) -> None:
        shard_id = self.shard.shard_id
        closed = self.handle.request(
            wire.CloseSearch(request_id=self.request_id)
        )
        result.blocks_accessed += closed.blocks_accessed
        result.candidates_examined += closed.candidates_examined
        result.tuples_examined += closed.tuples_examined
        result.shard_io[shard_id] = ShardIO(
            blocks_accessed=closed.blocks_accessed,
            candidates_examined=closed.candidates_examined,
            tuples_examined=closed.tuples_examined,
            device_reads=closed.device_reads,
        )
        registry.counter(
            "shard.service.blocks_accessed", shard=str(shard_id)
        ).inc(closed.blocks_accessed)
        registry.counter(
            "shard.service.device_reads", shard=str(shard_id)
        ).inc(closed.device_reads)
        registry.merge_counter_items(
            closed.counter_deltas, shard=str(shard_id)
        )
        spans.extend(closed.spans)

    def abort_close(self) -> int:
        if not self.handle.alive:
            return 0
        closed = self.handle.request(
            wire.CloseSearch(request_id=self.request_id)
        )
        return closed.blocks_accessed


class ShardedAnyKCursor:
    """Certified rank-order enumeration over a sharded deployment.

    A k-way merge over per-shard enumeration streams: each shard yields
    its matches in ascending ``(score, gtid)`` order (thread mode: an
    in-process :class:`~repro.core.anyk.AnyKCursor` per shard; process
    mode: an enumeration session per worker, stepped with ``StepNext``),
    and :meth:`next_batch` repeatedly emits the smallest head across
    streams — the same tie-breaking contract as every other path, at
    every depth.  Each stream pins its shard's snapshot at open time, so
    the whole cursor answers as of its open point regardless of appends
    or compaction runs that land mid-enumeration.

    Not thread-safe: one consumer steps it.  A storage fault or worker
    death surfaces from :meth:`next_batch` as a typed
    :class:`~repro.core.executor.QueryAbortedError` (surviving shard
    sessions are closed best-effort, a dead worker respawns quietly in
    the background) and the cursor is then dead.  Call :meth:`close`
    when done — it folds per-shard counters, I/O attribution, and (in
    process mode) worker span trees into the service's registry and
    span ring, and returns the accounting as a rows-free
    :class:`~repro.relational.query.QueryResult`.
    """

    def __init__(
        self,
        service: "ShardedQueryService",
        query: TopKQuery,
        streams: dict,
        batch: int,
        tracer: Tracer | None,
        shard_query: TopKQuery | None = None,
    ):
        self._service = service
        self.query = query
        #: the projection-stripped query the shards enumerate — kept so
        #: a failover can reopen every stream with the exact same plan
        self._shard_query = shard_query if shard_query is not None else query
        self._streams = streams
        self._order = sorted(streams)
        self._heads: dict[int, deque] = {sid: deque() for sid in self._order}
        self._finished: set[int] = set()
        self._batch = max(1, batch)
        self._tracer = tracer
        self._refills = 0
        self.rank = 0
        #: rows to silently discard after a failover reopen: the merge is
        #: deterministic, so skipping exactly ``rank`` rows fast-forwards
        #: the fresh streams to the first row not yet emitted
        self._skip = 0
        self._failovers = 0
        self._dead = False
        self._result: QueryResult | None = None

    @property
    def exhausted(self) -> bool:
        return (
            len(self._finished) == len(self._order)
            and not any(self._heads[sid] for sid in self._order)
        )

    def next_batch(self, count: int) -> list[ResultRow]:
        """The next ``count`` rows in global certified order (fewer only
        at exhaustion; empty means done)."""
        if self._dead:
            raise QueryAbortedError(
                "enumeration cursor is dead (a previous batch aborted)",
                partial_rows=[], blocks_accessed=0, cause=None,
            )
        if self._result is not None:
            raise ServiceClosedError("enumeration cursor is closed")
        out: list[ResultRow] = []
        while len(out) < count:
            try:
                for sid in self._order:
                    if sid in self._finished or self._heads[sid]:
                        continue
                    rows, done = self._streams[sid].next_rows(self._batch)
                    self._refills += 1
                    self._heads[sid].extend(rows)
                    if done or not rows:
                        self._finished.add(sid)
                best_sid = None
                best_head = None
                for sid in self._order:
                    if not self._heads[sid]:
                        continue
                    head = self._heads[sid][0]
                    if best_head is None or head < best_head:
                        best_head, best_sid = head, sid
                if best_sid is None:
                    break
                score, gtid = self._heads[best_sid].popleft()
                if self._skip:
                    self._skip -= 1  # replaying an already-emitted row
                    continue
                row = ResultRow(tid=gtid, score=score)
                if self.query.projection:
                    row = self._service._project(row, self.query)
            except (StorageError, wire.WorkerDiedError, ProcPoolError) as exc:
                if self._try_failover(exc):
                    continue  # fresh streams, fast-forwarding past rank
                self._abort(exc, out)
            out.append(row)
            self.rank += 1
        return out

    def __iter__(self):
        """Iterate remaining rows (internally batched by step_batch)."""
        while True:
            batch = self.next_batch(self._batch)
            if not batch:
                return
            yield from batch

    def _try_failover(self, exc: Exception) -> bool:
        """Promote the dead shard's replica and reopen every stream.

        Enumeration is stateful — each stream's cursor position dies
        with its shard — so failover reopens *all* streams from scratch
        and fast-forwards by discarding the first :attr:`rank` merged
        rows (the merge is deterministic, so those are exactly the rows
        already emitted).  Returns ``False`` when the fault names no
        shard, the failover budget is spent, or no replica remains —
        the caller then aborts as it would without replication.
        """
        service = self._service
        sid = getattr(exc, "shard_id", None)
        if (
            sid is None
            or self._failovers >= service._max_failovers
            or not service._failover(sid, self._tracer)
        ):
            return False
        self._failovers += 1
        for osid, stream in self._streams.items():
            if osid != sid:
                try:
                    stream.abort_close()
                except Exception:
                    pass  # best effort: stream is being replaced anyway
        try:
            if service.mode == "process":
                streams = service._open_enum_process(self._shard_query, None)
            else:
                streams = service._open_enum_thread(self._shard_query)
        except Exception:
            return False  # reopen failed: fall through to the abort path
        self._streams = streams
        self._order = sorted(streams)
        self._heads = {osid: deque() for osid in self._order}
        self._finished = set()
        self._skip = self.rank
        return True

    def _abort(self, exc: Exception, partial: list[ResultRow]) -> None:
        self._dead = True
        blocks = 0
        dead_sid = (
            exc.shard_id if isinstance(exc, wire.WorkerDiedError) else None
        )
        for sid in self._order:
            if sid == dead_sid:
                continue
            try:
                blocks += self._streams[sid].abort_close()
            except Exception:
                pass  # best effort: the cursor is aborting anyway
        if dead_sid is not None and not self._service._replicas_enabled:
            threading.Thread(
                target=self._service._respawn_quietly,
                args=(dead_sid,),
                name=f"repro-shard-respawn-{dead_sid}",
                daemon=True,
            ).start()
        raise QueryAbortedError(
            f"sharded enumeration aborted at rank {self.rank}: {exc}",
            partial_rows=partial,
            blocks_accessed=blocks,
            cause=exc.cause if isinstance(exc, QueryAbortedError) else exc,
        ) from exc

    def close(self) -> QueryResult:
        """Fold accounting and release shard sessions (idempotent)."""
        if self._result is not None:
            return self._result
        result = QueryResult(shard_io={})
        assert result.shard_io is not None
        if self._dead:
            self._result = result
            return result
        worker_spans: list = []
        for sid in self._order:
            self._streams[sid].finish(
                result, self._service.registry, worker_spans
            )
        if self._tracer is not None:
            with self._tracer.span(
                "anyk_query",
                k=self.query.k,
                selections=dict(sorted(self.query.selections.items())),
                ranking=",".join(self.query.ranking.dims),
                shards=list(self._order),
            ) as root:
                root.add_many(
                    rows=self.rank,
                    refills=self._refills,
                    blocks_accessed=result.blocks_accessed,
                    candidates_examined=result.candidates_examined,
                )
                adopt_spans(root, worker_spans)
            self._service._retain_spans(self._tracer)
        self._result = result
        return result

    def __enter__(self) -> "ShardedAnyKCursor":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._dead:
            self.close()


class ShardedQueryService:
    """Thread-pooled scatter-gather serving over a :class:`ShardedCube`.

    Parameters
    ----------
    cube:
        The sharded deployment to serve.
    workers:
        Concurrent queries in flight (front-end pool width).
    step_workers:
        Width of the *separate* shard-step pool the merge loop fans out
        on (default ``max(workers, num_shards)``).  Two pools because a
        query thread blocks on its shards' step futures — steps never
        submit further work, so the layering cannot deadlock.
    share_caches / buffer_pseudo_blocks:
        As on :class:`~repro.serve.service.QueryService`, but the shared
        caches are **per shard** (see module docstring).
    registry:
        Service-level metrics spine: global query/abort/latency series
        plus per-shard *labeled* series (``shard.service.steps`` etc.,
        one series per ``shard=<id>`` label).  Private when omitted —
        shard storage trees keep their own registries either way.  In
        process mode, worker-side per-query counter deltas are merged in
        under an added ``shard=<id>`` label.
    trace_spans:
        Retain per-query span trees (``query`` → ``shard_merge``) in
        :attr:`spans`, a bounded ring like the unsharded service's.  In
        process mode the workers' ``shard_batch`` spans are shipped back
        and adopted under the merge span.
    mode:
        ``"thread"`` (default) or ``"process"`` — see the module
        docstring.  Process mode snapshots the deployment at
        construction time: rows appended to ``cube`` afterwards are not
        visible to the workers until a new service is built.
    spill_dir:
        Process mode only: directory holding (or to hold) the pinned
        per-shard snapshots.  When omitted the service spills to a
        private temporary directory and removes it on :meth:`close`; an
        existing directory with a manifest is reused as-is (workers
        verify the SHA-256 pins either way).
    max_inflight:
        Admission control: queries allowed in flight at once before
        :meth:`submit` raises :class:`ServiceOverloadedError`
        (``None`` = unbounded, the default).
    coalesce:
        Share one execution among identical in-flight queries (their
        futures all resolve to the same result).  No effect on answers,
        only amortization.  Defaults to on in process mode and off in
        thread mode, where repeated identical queries are how callers
        deliberately warm the per-shard caches.
    step_batch / worker_timeout_s / fault_hook:
        ``step_batch`` and ``worker_timeout_s`` are process-mode tuning:
        frontier steps per worker round trip and the reply deadline
        after which a worker is declared dead.  ``fault_hook`` is a test
        seam called as ``fault_hook(point, shard_id)`` at per-shard
        serving points in *both* modes: ``"scatter"`` /
        ``"merge_round"`` / ``"enum_open"`` / ``"reverse_count"`` /
        ``"promote"`` everywhere, ``"enum_next"`` in thread mode
        (process enumeration kills target the worker process itself),
        and ``"finish"`` / ``"respawn"`` in process mode.  An exception the
        hook raises surfaces exactly as a real fault at that point
        would, which is how the failover kill matrix steers deaths.
    """

    def __init__(
        self,
        cube: ShardedCube,
        workers: int = 4,
        step_workers: int | None = None,
        share_caches: bool = True,
        buffer_pseudo_blocks: bool = True,
        registry: MetricsRegistry | None = None,
        trace_spans: bool = False,
        span_capacity: int = DEFAULT_SPAN_CAPACITY,
        mode: str = "thread",
        spill_dir: str | None = None,
        max_inflight: int | None = None,
        coalesce: bool | None = None,
        step_batch: int = wire.DEFAULT_STEP_BATCH,
        worker_timeout_s: float = 60.0,
        fault_hook=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
        self.cube = cube
        self.workers = workers
        self.mode = mode
        self.share_caches = share_caches
        self.buffer_pseudo_blocks = buffer_pseudo_blocks
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace_spans = trace_spans
        self.span_capacity = span_capacity
        self.spans: list[Span] = []
        self.stats = ShardedServiceStats()
        self._stats_lock = threading.Lock()
        self.max_inflight = max_inflight
        self.coalesce = coalesce if coalesce is not None else mode == "process"
        self.step_batch = step_batch
        self._fault_hook = fault_hook
        self._inflight_lock = threading.Lock()
        self._inflight_count = 0
        self._inflight: dict[bytes, Future] = {}
        self._request_ids = count(1)
        self._contexts: dict[int, _ShardContext] = {}
        self._contexts_lock = threading.Lock()
        self._proc_pool: ProcessShardPool | None = None
        self._owned_spill_dir: str | None = None
        #: replication: N-1 warm copies per shard (``ShardMap``), so a
        #: dead primary fails the query over instead of aborting it
        self.replication_factor = cube.shard_map.replication_factor
        self._replicas_enabled = self.replication_factor > 1
        self._max_failovers = (
            max(1, self.replication_factor - 1) if self._replicas_enabled else 0
        )
        self._failover_lock = threading.Lock()
        self._thread_replicas: dict[int, list[CubeShard]] = {}
        if mode == "thread":
            for shard in cube.shards:
                if shard.cube is not None:
                    self._contexts[shard.shard_id] = _ShardContext(
                        shard, share_caches, buffer_pseudo_blocks
                    )
            if self._replicas_enabled:
                self.refresh_replicas()
        else:
            self._proc_pool = self._start_proc_pool(
                spill_dir, worker_timeout_s, fault_hook
            )
        self._queries_counter = self.registry.counter("shard.service.queries")
        self._searches_counter = self.registry.counter(
            "shard.service.searches_opened"
        )
        self._reverse_counter = self.registry.counter(
            "shard.service.reverse_queries"
        )
        self._aborted_counter = self.registry.counter("shard.service.aborted")
        self._coalesced_counter = self.registry.counter("shard.service.coalesced")
        self._overloaded_counter = self.registry.counter("shard.service.overloaded")
        self._latency_hist = self.registry.histogram("shard.service.latency_s")
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard-serve"
        )
        if step_workers is None:
            step_workers = max(workers, cube.num_shards)
        self._step_pool = ThreadPoolExecutor(
            max_workers=step_workers, thread_name_prefix="repro-shard-step"
        )
        self._closed = False

    def _start_proc_pool(
        self, spill_dir: str | None, worker_timeout_s: float, fault_hook
    ) -> ProcessShardPool:
        """Spill the deployment (unless already pinned) and boot workers."""
        from ..persist import SHARD_MANIFEST, ShardedWorkspace
        import json
        from pathlib import Path

        if spill_dir is None:
            spill_dir = tempfile.mkdtemp(prefix="repro-shard-spill-")
            self._owned_spill_dir = spill_dir
        directory = Path(spill_dir)
        manifest_path = directory / SHARD_MANIFEST
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text())
        else:
            manifest = ShardedWorkspace(cube=self.cube).save(directory)
        return ProcessShardPool(
            directory,
            manifest,
            options={
                "share_caches": self.share_caches,
                "buffer_pseudo_blocks": self.buffer_pseudo_blocks,
            },
            timeout=worker_timeout_s,
            registry=self.registry,
            fault_hook=fault_hook,
            replicas=self.replication_factor - 1,
        )

    # ------------------------------------------------------------------
    # replica failover
    # ------------------------------------------------------------------
    def refresh_replicas(self) -> None:
        """(Re)clone thread-mode warm replicas from the current shards.

        Thread-mode replicas are point-in-time clones
        (:func:`~repro.shard.builder.clone_shard`): rows appended after
        cloning make a replica stale, and a stale replica is *rejected*
        at promotion time rather than silently losing rows.  Call this
        after appends to re-arm failover.  No-op when replication is
        off or in process mode (workers re-pin from their snapshots).
        """
        if not self._replicas_enabled or self.mode != "thread":
            return
        with self._failover_lock:
            self._thread_replicas = {
                shard.shard_id: [
                    clone_shard(shard)
                    for _ in range(self.replication_factor - 1)
                ]
                for shard in self.cube.shards
                if shard.cube is not None
            }

    @staticmethod
    def _dead_shard_of(exc: BaseException) -> int | None:
        """Which shard the abort blames, if it (or its cause) names one."""
        sid = getattr(getattr(exc, "cause", None), "shard_id", None)
        if sid is None:
            sid = getattr(exc, "shard_id", None)
        return sid

    def _failover(self, shard_id: int, tracer: Tracer | None) -> bool:
        """Promote a warm replica for ``shard_id``; True if the query
        should retry.

        Process mode delegates to
        :meth:`~repro.serve.procpool.ProcessShardPool.promote` (warm
        standby worker from the same pinned snapshot).  Thread mode
        swaps a :func:`clone_shard` copy into the deployment and
        rebuilds the shard's serving context.  Returns ``False`` — and
        the original abort stands — when replication is off, no live
        replica remains, or the replica is stale.
        """
        if not self._replicas_enabled:
            return False
        with maybe_span(
            tracer, "failover", shard=shard_id, mode=self.mode
        ) as span:
            if self.mode == "process":
                pool = self._proc_pool
                assert pool is not None
                try:
                    pool.promote(shard_id)
                except Exception:
                    return False
            else:
                with self._failover_lock:
                    bench = self._thread_replicas.get(shard_id, [])
                    promoted = False
                    while bench and not promoted:
                        # fire the fault seam *before* consuming the clone:
                        # a crash at the promotion instant must not burn
                        # the warm standby it never installed
                        self._fault("promote", shard_id)
                        replica = bench.pop(0)
                        try:
                            self.cube.replace_shard(shard_id, replica)
                        except Exception:
                            continue  # stale or mismatched clone
                        promoted = True
                        with self._contexts_lock:
                            old = self._contexts.pop(shard_id, None)
                            if old is not None:
                                old.unhook()
                            self._contexts[shard_id] = _ShardContext(
                                replica,
                                self.share_caches,
                                self.buffer_pseudo_blocks,
                            )
                        self.registry.counter(
                            "shard.replica.promotions", shard=str(shard_id)
                        ).inc()
                        # refill the bench from the healthy replica so a
                        # second failure still finds a warm copy
                        bench.append(clone_shard(replica))
                    if not promoted:
                        return False
            self.registry.counter(
                "shard.replica.failovers", shard=str(shard_id)
            ).inc()
            if span is not None:
                span.add("promoted", 1)
        return True

    # ------------------------------------------------------------------
    # serving APIs
    # ------------------------------------------------------------------
    def submit(self, query: TopKQuery) -> "Future[QueryResult]":
        """Enqueue one query; the future resolves to its merged answer.

        Applies admission control (``max_inflight``) and duplicate
        coalescing: an identical query already in flight returns the
        *same* future instead of executing again.
        """
        if self._closed:
            raise ServiceClosedError("ShardedQueryService is closed")
        key = pickle.dumps(query) if self.coalesce else None
        with self._inflight_lock:
            if key is not None:
                existing = self._inflight.get(key)
                if existing is not None:
                    self._coalesced_counter.inc()
                    return existing
            if (
                self.max_inflight is not None
                and self._inflight_count >= self.max_inflight
            ):
                self._overloaded_counter.inc()
                raise ServiceOverloadedError(
                    f"{self._inflight_count} query(ies) already in flight "
                    f"(max_inflight={self.max_inflight})"
                )
            future = self._pool.submit(self._run_one, query)
            self._inflight_count += 1
            if key is not None:
                self._inflight[key] = future
        future.add_done_callback(lambda _f, key=key: self._release_inflight(key))
        return future

    def _release_inflight(self, key: bytes | None) -> None:
        with self._inflight_lock:
            self._inflight_count -= 1
            if key is not None:
                self._inflight.pop(key, None)

    def run_batch(self, queries) -> list[QueryResult]:
        """Run a batch concurrently, returning answers in request order."""
        futures = [self.submit(q) for q in queries]
        return [f.result() for f in futures]

    def open_search(self, query: TopKQuery) -> ShardedAnyKCursor:
        """Open a resumable any-k cursor over every consulted shard.

        Unlike :meth:`submit` this is caller-stepped (no pool, no
        admission control, no coalescing): the returned cursor yields
        rows in certified global ``(score, tid)`` order — past
        ``query.k``, on demand — until the snapshot it pinned at open
        time is exhausted.  Projection is applied at the front end from
        global tids; the shards enumerate bare ``(score, tid)`` pairs.
        """
        if self._closed:
            raise ServiceClosedError("ShardedQueryService is closed")
        query.validate_against(self.cube.schema)
        self._searches_counter.inc()
        tracer = Tracer(self.registry) if self.trace_spans else None
        shard_query = (
            query if query.projection is None
            else replace(query, projection=None)
        )
        attempts = 0
        while True:
            try:
                if self.mode == "process":
                    streams = self._open_enum_process(shard_query, tracer)
                else:
                    streams = self._open_enum_thread(shard_query)
                break
            except QueryAbortedError as exc:
                sid = self._dead_shard_of(exc)
                if (
                    sid is not None
                    and attempts < self._max_failovers
                    and self._failover(sid, tracer)
                ):
                    attempts += 1
                    continue
                raise
        return ShardedAnyKCursor(
            self, query, streams, self.step_batch, tracer,
            shard_query=shard_query,
        )

    def _open_enum_thread(self, query: TopKQuery) -> dict:
        streams: dict[int, _ThreadEnumStream] = {}
        for shard_id in self.cube.shard_map.shards_for_query(query.selections):
            shard = self.cube.shards[shard_id]
            ctx = self._context(shard)
            if ctx is None:  # empty shards hold no rows at all
                continue
            try:
                self._fault("enum_open", shard_id)
                streams[shard_id] = _ThreadEnumStream(shard, ctx, query, self)
            except StorageError as exc:
                for stream in streams.values():
                    try:
                        stream.abort_close()
                    except Exception:
                        pass  # best effort: the open is aborting anyway
                _blame_shard(exc, shard_id)
                raise QueryAbortedError(
                    f"sharded enumeration failed to open: {exc}",
                    partial_rows=[],
                    blocks_accessed=0,
                    cause=exc.cause if isinstance(exc, QueryAbortedError) else exc,
                ) from exc
        return streams

    def _open_enum_process(self, query: TopKQuery, tracer) -> dict:
        pool = self._proc_pool
        assert pool is not None
        available = set(pool.shard_ids)
        targets = [
            sid
            for sid in self.cube.shard_map.shards_for_query(query.selections)
            if sid in available
        ]
        request_id = next(self._request_ids)
        want_trace = tracer is not None
        streams: dict[int, _ProcessEnumStream] = {}
        try:

            def _open(sid: int):
                try:
                    self._fault("enum_open", sid)
                    handle = pool.handle(sid)
                    batch = handle.request(
                        wire.OpenEnum(
                            request_id=request_id,
                            query=query,
                            count=self.step_batch,
                            trace=want_trace,
                        )
                    )
                    return handle, batch
                except StorageError as exc:
                    _blame_shard(exc, sid)
                    raise

            if len(targets) <= 1:
                opened = [(sid,) + _open(sid) for sid in targets]
            else:
                futures = [
                    (sid, self._step_pool.submit(_open, sid))
                    for sid in targets
                ]
                opened = [(sid,) + f.result() for sid, f in futures]
            for sid, handle, batch in opened:
                streams[sid] = _ProcessEnumStream(
                    self.cube.shards[sid], handle, request_id, batch
                )
        except (StorageError, wire.WorkerDiedError, ProcPoolError) as exc:
            dead = (
                exc.shard_id
                if isinstance(exc, wire.WorkerDiedError) else None
            )
            for sid, stream in streams.items():
                if sid != dead:
                    try:
                        stream.abort_close()
                    except Exception:
                        pass
            if dead is not None and not self._replicas_enabled:
                threading.Thread(
                    target=self._respawn_quietly,
                    args=(dead,),
                    name=f"repro-shard-respawn-{dead}",
                    daemon=True,
                ).start()
            raise QueryAbortedError(
                f"sharded enumeration failed to open: {exc}",
                partial_rows=[],
                blocks_accessed=0,
                cause=exc.cause if isinstance(exc, QueryAbortedError) else exc,
            ) from exc
        return streams

    # ------------------------------------------------------------------
    # reverse top-k
    # ------------------------------------------------------------------
    def submit_reverse(
        self, query: ReverseTopKQuery
    ) -> "Future[ReverseTopKResult]":
        """Enqueue one reverse top-k query (admission-controlled like
        :meth:`submit`; never coalesced — the payload includes function
        families that are awkward as cache keys and reverse queries are
        rarely identical)."""
        if self._closed:
            raise ServiceClosedError("ShardedQueryService is closed")
        with self._inflight_lock:
            if (
                self.max_inflight is not None
                and self._inflight_count >= self.max_inflight
            ):
                self._overloaded_counter.inc()
                raise ServiceOverloadedError(
                    f"{self._inflight_count} query(ies) already in flight "
                    f"(max_inflight={self.max_inflight})"
                )
            future = self._pool.submit(self._run_reverse, query)
            self._inflight_count += 1
        future.add_done_callback(lambda _f: self._release_inflight(None))
        return future

    def _run_reverse(self, query: ReverseTopKQuery) -> ReverseTopKResult:
        return self._with_failover(lambda: self._run_reverse_attempt(query))

    def _run_reverse_attempt(self, query: ReverseTopKQuery) -> ReverseTopKResult:
        tracer = Tracer(self.registry) if self.trace_spans else None
        started = time.perf_counter()
        self._reverse_counter.inc()
        with maybe_span(
            tracer,
            "reverse_query",
            tid=query.tid,
            k=query.k,
            selections=dict(sorted(query.selections.items())),
            functions=len(query.functions),
        ) as qspan:
            try:
                if self.mode == "process":
                    result = self._reverse_process(query, tracer)
                else:
                    result = self._reverse_thread(query, tracer)
            except QueryAbortedError as exc:
                self._retain_spans(tracer)
                self._record(
                    time.perf_counter() - started,
                    shards=len(
                        self.cube.shard_map.shards_for_query(query.selections)
                    ),
                    rounds=0,
                    steps=0,
                    blocks=exc.blocks_accessed,
                    candidates=0,
                    tuples=0,
                    aborted=True,
                )
                raise
            if qspan is not None:
                qspan.add_many(
                    qualifying=len(result.qualifying),
                    blocks_accessed=result.blocks_accessed,
                    candidates_examined=result.candidates_examined,
                )
        self._retain_spans(tracer)
        self._record(
            time.perf_counter() - started,
            shards=len(self.cube.shard_map.shards_for_query(query.selections)),
            rounds=0,
            steps=0,
            blocks=result.blocks_accessed,
            candidates=result.candidates_examined,
            tuples=result.tuples_examined,
            aborted=False,
        )
        return result

    def _reverse_target(self, query: ReverseTopKQuery):
        """The target row and whether it matches the query selections."""
        schema = self.cube.schema
        try:
            target = self.cube.fetch_by_tid(query.tid)
        except StorageError as exc:
            # the fetch touched exactly the owning shard's device
            owner = self.cube._owner.get(query.tid)
            if owner is not None:
                _blame_shard(exc, owner[0])
            raise
        matches = all(
            target[schema.position(name)] == value
            for name, value in query.selections.items()
        )
        return schema, target, matches

    def _reverse_thread(
        self, query: ReverseTopKQuery, tracer: Tracer | None
    ) -> ReverseTopKResult:
        result = ReverseTopKResult()
        targets: list[tuple[CubeShard, _ShardContext]] = []
        for shard_id in self.cube.shard_map.shards_for_query(query.selections):
            shard = self.cube.shards[shard_id]
            ctx = self._context(shard)
            if ctx is not None:
                targets.append((shard, ctx))
        try:
            schema, target, matches = self._reverse_target(query)
            result.target_matches = matches
            for index, fn in enumerate(query.functions):
                t_score = fn.score(
                    [target[schema.position(d)] for d in fn.dims]
                )
                result.target_scores.append(t_score)
                if not matches:
                    continue
                with maybe_span(
                    tracer, "reverse_function",
                    index=index, ranking=",".join(fn.dims),
                ) as fspan:
                    forward = TopKQuery(query.k, query.selections, fn)
                    preceding = 0
                    for shard, ctx in targets:
                        # the target's insertion position in this shard's
                        # (monotone) tid map: local tids before it precede
                        # the target on score ties, all others do not
                        tie_bound = bisect_left(shard.tid_map, query.tid)
                        try:
                            self._fault("reverse_count", shard.shard_id)
                            n, sub = count_preceding(
                                ctx.executor, forward, t_score, tie_bound
                            )
                        except StorageError as exc:
                            _blame_shard(exc, shard.shard_id)
                            raise
                        preceding += n
                        result.blocks_accessed += sub.blocks_accessed
                        result.candidates_examined += sub.candidates_examined
                        result.tuples_examined += sub.tuples_examined
                        self.registry.counter(
                            "shard.service.blocks_accessed",
                            shard=str(shard.shard_id),
                        ).inc(sub.blocks_accessed)
                        if preceding >= query.k:
                            break
                    in_topk = preceding < query.k
                    if in_topk:
                        result.qualifying.append(index)
                    if fspan is not None:
                        fspan.add("preceding", preceding)
                        fspan.add("in_topk", int(in_topk))
        except StorageError as exc:
            raise QueryAbortedError(
                f"sharded reverse top-k aborted after "
                f"{result.blocks_accessed} block fetch(es): {exc}",
                partial_rows=[],
                blocks_accessed=result.blocks_accessed,
                cause=exc.cause if isinstance(exc, QueryAbortedError) else exc,
            ) from exc
        return result

    def _reverse_process(
        self, query: ReverseTopKQuery, tracer: Tracer | None
    ) -> ReverseTopKResult:
        pool = self._proc_pool
        assert pool is not None
        result = ReverseTopKResult()
        available = set(pool.shard_ids)
        targets = [
            sid
            for sid in self.cube.shard_map.shards_for_query(query.selections)
            if sid in available
        ]
        try:
            schema, target, matches = self._reverse_target(query)
            result.target_matches = matches
            for index, fn in enumerate(query.functions):
                t_score = fn.score(
                    [target[schema.position(d)] for d in fn.dims]
                )
                result.target_scores.append(t_score)
                if not matches:
                    continue
                with maybe_span(
                    tracer, "reverse_function",
                    index=index, ranking=",".join(fn.dims),
                ) as fspan:
                    forward = TopKQuery(query.k, query.selections, fn)
                    preceding = 0
                    for sid in targets:
                        self._fault("reverse_count", sid)
                        shard = self.cube.shards[sid]
                        tie_bound = bisect_left(shard.tid_map, query.tid)
                        reply = pool.handle(sid).request(
                            wire.ReverseCount(
                                request_id=next(self._request_ids),
                                query=forward,
                                t_score=t_score,
                                tie_tid=tie_bound,
                            )
                        )
                        preceding += reply.preceding
                        result.blocks_accessed += reply.blocks_accessed
                        result.candidates_examined += (
                            reply.candidates_examined
                        )
                        result.tuples_examined += reply.tuples_examined
                        self.registry.counter(
                            "shard.service.blocks_accessed", shard=str(sid)
                        ).inc(reply.blocks_accessed)
                        self.registry.counter(
                            "shard.service.device_reads", shard=str(sid)
                        ).inc(reply.device_reads)
                        self.registry.merge_counter_items(
                            reply.counter_deltas, shard=str(sid)
                        )
                        if preceding >= query.k:
                            break
                    in_topk = preceding < query.k
                    if in_topk:
                        result.qualifying.append(index)
                    if fspan is not None:
                        fspan.add("preceding", preceding)
                        fspan.add("in_topk", int(in_topk))
        except (StorageError, wire.WorkerDiedError, ProcPoolError) as exc:
            dead = (
                exc.shard_id
                if isinstance(exc, wire.WorkerDiedError) else None
            )
            if dead is not None and not self._replicas_enabled:
                threading.Thread(
                    target=self._respawn_quietly,
                    args=(dead,),
                    name=f"repro-shard-respawn-{dead}",
                    daemon=True,
                ).start()
            raise QueryAbortedError(
                f"sharded reverse top-k aborted after "
                f"{result.blocks_accessed} block fetch(es): {exc}",
                partial_rows=[],
                blocks_accessed=result.blocks_accessed,
                cause=exc.cause if isinstance(exc, QueryAbortedError) else exc,
            ) from exc
        return result

    # ------------------------------------------------------------------
    def _context(self, shard: CubeShard) -> _ShardContext | None:
        """The shard's serving context, created on demand (late builds)."""
        ctx = self._contexts.get(shard.shard_id)
        if ctx is not None:
            return ctx
        if shard.cube is None:
            return None
        with self._contexts_lock:
            ctx = self._contexts.get(shard.shard_id)
            if ctx is None:
                ctx = _ShardContext(
                    shard, self.share_caches, self.buffer_pseudo_blocks
                )
                self._contexts[shard.shard_id] = ctx
            return ctx

    def _run_one(self, query: TopKQuery) -> QueryResult:
        query.validate_against(self.cube.schema)
        return self._with_failover(lambda: self._run_one_attempt(query))

    def _with_failover(self, attempt):
        """Run one query attempt, retrying whole on replica promotion.

        Failover retries the *entire* query rather than resuming the
        aborted merge: per-shard search state died with the shard, and
        the merge is deterministic, so a clean re-run on the promoted
        replica is byte-identical to a run that never saw the fault.
        Each failed attempt is still recorded as an aborted attempt in
        :attr:`stats`; the failover itself shows up in the
        ``shard.replica.failovers`` counter.
        """
        attempts = 0
        while True:
            try:
                return attempt()
            except StorageError as exc:  # includes QueryAbortedError
                sid = self._dead_shard_of(exc)
                if sid is None or attempts >= self._max_failovers:
                    raise
                tracer = Tracer(self.registry) if self.trace_spans else None
                if not self._failover(sid, tracer):
                    raise
                self._retain_spans(tracer)
                attempts += 1

    def _run_one_attempt(self, query: TopKQuery) -> QueryResult:
        tracer = Tracer(self.registry) if self.trace_spans else None
        started = time.perf_counter()
        with maybe_span(
            tracer,
            "query",
            k=query.k,
            selections=dict(sorted(query.selections.items())),
            ranking=",".join(query.ranking.dims),
        ) as query_span:
            try:
                if self.mode == "process":
                    result, rounds, steps = self._scatter_gather_process(
                        query, tracer
                    )
                else:
                    result, rounds, steps = self._scatter_gather(query, tracer)
            except QueryAbortedError as exc:
                self._retain_spans(tracer)
                self._record(
                    time.perf_counter() - started,
                    shards=len(
                        self.cube.shard_map.shards_for_query(query.selections)
                    ),
                    rounds=0,
                    steps=0,
                    blocks=exc.blocks_accessed,
                    candidates=0,
                    tuples=0,
                    aborted=True,
                )
                raise
            if query_span is not None:
                query_span.add_many(
                    blocks_accessed=result.blocks_accessed,
                    candidates_examined=result.candidates_examined,
                    tuples_examined=result.tuples_examined,
                    rows_returned=len(result.rows),
                )
        self._retain_spans(tracer)
        self._record(
            time.perf_counter() - started,
            shards=len(result.shard_io or ()),
            rounds=rounds,
            steps=steps,
            blocks=result.blocks_accessed,
            candidates=result.candidates_examined,
            tuples=result.tuples_examined,
            aborted=False,
        )
        return result

    def _scatter_gather(
        self, query: TopKQuery, tracer: Tracer | None
    ) -> tuple[QueryResult, int, int]:
        """The merge loop; returns (result, merge rounds, shard steps)."""
        targets: list[tuple[CubeShard, _ShardContext]] = []
        for shard_id in self.cube.shard_map.shards_for_query(query.selections):
            shard = self.cube.shards[shard_id]
            ctx = self._context(shard)
            if ctx is not None:  # empty shards hold no rows at all
                targets.append((shard, ctx))

        topk: list[tuple[float, int]] = []
        searches: dict[int, tuple[CubeShard, ProgressiveSearch]] = {}
        io_before = {
            shard.shard_id: shard.db.io_snapshot() for shard, _ctx in targets
        }
        rounds = 0
        steps = 0
        try:
            with maybe_span(
                tracer, "shard_merge", shards=[s.shard_id for s, _ in targets]
            ) as merge_span:
                for shard, ctx in targets:
                    try:
                        self._fault("scatter", shard.shard_id)
                        search = ProgressiveSearch(
                            ctx.executor, query, ExecutorTrace()
                        )
                        searches[shard.shard_id] = (shard, search)
                        # delta rows carry no block bound: merge up front
                        for score, local_tid in search.delta_rows():
                            _push_topk(
                                topk, query.k, score, shard.to_global(local_tid)
                            )
                    except StorageError as exc:
                        _blame_shard(exc, shard.shard_id)
                        raise

                def _step_one(shard, search):
                    try:
                        self._fault("merge_round", shard.shard_id)
                        return search.step()
                    except StorageError as exc:
                        _blame_shard(exc, shard.shard_id)
                        raise

                while True:
                    kth = -topk[0][0] if len(topk) >= query.k else None
                    eligible = [
                        (shard, search)
                        for shard, search in searches.values()
                        if not search.exhausted
                        and (kth is None or search.best_unseen <= kth)
                    ]
                    if not eligible:
                        break
                    rounds += 1
                    if len(eligible) == 1:
                        batches = [
                            (eligible[0][0], _step_one(*eligible[0]))
                        ]
                    else:
                        futures = [
                            (shard, self._step_pool.submit(_step_one, shard, search))
                            for shard, search in eligible
                        ]
                        batches = [
                            (shard, future.result()) for shard, future in futures
                        ]
                    for shard, scored in batches:
                        steps += 1
                        self.registry.counter(
                            "shard.service.steps", shard=str(shard.shard_id)
                        ).inc()
                        for score, local_tid in scored:
                            _push_topk(
                                topk, query.k, score, shard.to_global(local_tid)
                            )
                if merge_span is not None:
                    merge_span.add_many(merge_rounds=rounds, shard_steps=steps)
        except StorageError as exc:
            partial = self._finalize(query, topk, searches, io_before)
            raise QueryAbortedError(
                f"sharded query aborted after {partial.blocks_accessed} "
                f"block fetch(es): {exc}",
                partial_rows=partial.rows,
                blocks_accessed=partial.blocks_accessed,
                cause=exc.cause if isinstance(exc, QueryAbortedError) else exc,
            ) from exc
        result = self._finalize(query, topk, searches, io_before)
        return result, rounds, steps

    # ------------------------------------------------------------------
    # process-mode scatter-gather
    # ------------------------------------------------------------------
    def _fault(self, point: str, shard_id: int) -> None:
        if self._fault_hook is not None:
            self._fault_hook(point, shard_id)

    def _absorb_batch(
        self,
        states: dict,
        topk: list[tuple[float, int]],
        k: int,
        shard: CubeShard,
        batch: "wire.SearchBatch",
    ) -> int:
        """Fold one worker round into the global heap + per-shard state.

        A batch with ``steps == 0`` that is not exhausted means the
        worker certified its *local* top-k (its stop rules are otherwise
        the strict complement of our eligibility check, evaluated on the
        same bound and the same shipped ``kth``) — no further step can
        change this shard's contribution, so it leaves the frontier.
        """
        for score, local_tid in batch.scored:
            _push_topk(topk, k, score, shard.to_global(local_tid))
        states[shard.shard_id] = {
            "best_unseen": batch.best_unseen,
            "done": batch.exhausted or batch.steps == 0,
        }
        if batch.steps:
            self.registry.counter(
                "shard.service.steps", shard=str(shard.shard_id)
            ).inc(batch.steps)
        return batch.steps

    def _scatter_gather_process(
        self, query: TopKQuery, tracer: Tracer | None
    ) -> tuple[QueryResult, int, int]:
        """The same merge loop, one pipe round trip per shard per round."""
        pool = self._proc_pool
        assert pool is not None
        available = set(pool.shard_ids)
        targets = [
            sid
            for sid in self.cube.shard_map.shards_for_query(query.selections)
            if sid in available
        ]
        request_id = next(self._request_ids)
        want_trace = tracer is not None
        topk: list[tuple[float, int]] = []
        states: dict[int, dict] = {}
        handles: dict[int, object] = {}
        opened: list[int] = []
        rounds = 0
        steps = 0
        try:
            with maybe_span(
                tracer, "shard_merge", shards=list(targets)
            ) as merge_span:
                # scatter: open one session per shard, first batch included
                def _open(sid: int):
                    try:
                        self._fault("scatter", sid)
                        handle = pool.handle(sid)
                        handles[sid] = handle
                        return handle.request(
                            wire.OpenSearch(
                                request_id=request_id,
                                query=query,
                                kth=None,
                                max_steps=self.step_batch,
                                trace=want_trace,
                            )
                        )
                    except StorageError as exc:
                        _blame_shard(exc, sid)
                        raise

                if len(targets) <= 1:
                    batches = [(sid, _open(sid)) for sid in targets]
                else:
                    futures = [
                        (sid, self._step_pool.submit(_open, sid))
                        for sid in targets
                    ]
                    batches = [(sid, f.result()) for sid, f in futures]
                for sid, batch in batches:
                    opened.append(sid)
                    shard = self.cube.shards[sid]
                    # delta rows carry no block bound: merge unconditionally
                    for score, local_tid in batch.delta_rows:
                        _push_topk(topk, query.k, score, shard.to_global(local_tid))
                    steps += self._absorb_batch(states, topk, query.k, shard, batch)

                # gather: step eligible shards in batches, refreshing kth
                while True:
                    kth = -topk[0][0] if len(topk) >= query.k else None
                    eligible = [
                        sid
                        for sid in opened
                        if not states[sid]["done"]
                        and (kth is None or states[sid]["best_unseen"] <= kth)
                    ]
                    if not eligible:
                        break
                    rounds += 1

                    def _step(sid: int, kth=kth):
                        try:
                            self._fault("merge_round", sid)
                            return handles[sid].request(
                                wire.StepBatch(
                                    request_id=request_id,
                                    kth=kth,
                                    max_steps=self.step_batch,
                                )
                            )
                        except StorageError as exc:
                            _blame_shard(exc, sid)
                            raise

                    if len(eligible) == 1:
                        round_batches = [(eligible[0], _step(eligible[0]))]
                    else:
                        futures = [
                            (sid, self._step_pool.submit(_step, sid))
                            for sid in eligible
                        ]
                        round_batches = [(sid, f.result()) for sid, f in futures]
                    for sid, batch in round_batches:
                        steps += self._absorb_batch(
                            states, topk, query.k, self.cube.shards[sid], batch
                        )

                # finish: collect per-shard accounting + observability.
                # Inside the merge span on purpose: worker span trees are
                # adopted while their new parent is still open.
                result = QueryResult(shard_io={})
                assert result.shard_io is not None
                for sid in sorted(opened):
                    self._fault("finish", sid)
                    closed = handles[sid].request(wire.CloseSearch(request_id))
                    result.blocks_accessed += closed.blocks_accessed
                    result.candidates_examined += closed.candidates_examined
                    result.tuples_examined += closed.tuples_examined
                    result.shard_io[sid] = ShardIO(
                        blocks_accessed=closed.blocks_accessed,
                        candidates_examined=closed.candidates_examined,
                        tuples_examined=closed.tuples_examined,
                        device_reads=closed.device_reads,
                    )
                    self.registry.counter(
                        "shard.service.blocks_accessed", shard=str(sid)
                    ).inc(closed.blocks_accessed)
                    self.registry.counter(
                        "shard.service.device_reads", shard=str(sid)
                    ).inc(closed.device_reads)
                    self.registry.merge_counter_items(
                        closed.counter_deltas, shard=str(sid)
                    )
                    if merge_span is not None:
                        adopt_spans(merge_span, closed.spans)
                if merge_span is not None:
                    merge_span.add_many(merge_rounds=rounds, shard_steps=steps)
        except (StorageError, wire.WorkerDiedError, ProcPoolError) as exc:
            blocks = self._abort_cleanup(handles, opened, request_id, exc)
            raise QueryAbortedError(
                f"sharded query aborted after {blocks} block fetch(es): {exc}",
                partial_rows=_rows_from_heap(topk),
                blocks_accessed=blocks,
                cause=exc.cause if isinstance(exc, QueryAbortedError) else exc,
            ) from exc
        rows = _rows_from_heap(topk)
        if query.projection:
            rows = [self._project(row, query) for row in rows]
        result.rows = rows
        return result, rounds, steps

    def _abort_cleanup(
        self, handles: dict, opened: list[int], request_id: int, exc: Exception
    ) -> int:
        """Close surviving sessions, kick a dead worker's respawn.

        Returns the block count recovered from the shards that could
        still answer a :class:`~repro.serve.wire.CloseSearch` — the
        abort's ``blocks_accessed`` is therefore a lower bound.
        """
        blocks = 0
        dead = exc.shard_id if isinstance(exc, wire.WorkerDiedError) else None
        for sid in opened:
            if sid == dead:
                continue
            handle = handles.get(sid)
            if handle is None or not handle.alive:
                continue
            try:
                closed = handle.request(wire.CloseSearch(request_id))
            except Exception:
                continue  # best effort: the query is aborting anyway
            blocks += closed.blocks_accessed
            self.registry.merge_counter_items(
                closed.counter_deltas, shard=str(sid)
            )
        if dead is not None and not self._replicas_enabled:
            threading.Thread(
                target=self._respawn_quietly,
                args=(dead,),
                name=f"repro-shard-respawn-{dead}",
                daemon=True,
            ).start()
        return blocks

    def _respawn_quietly(self, shard_id: int) -> None:
        pool = self._proc_pool
        if pool is None:
            return
        try:
            pool.respawn(shard_id)
        except Exception:
            pass  # the next query's handle() lookup retries once more

    def _finalize(
        self,
        query: TopKQuery,
        topk: list[tuple[float, int]],
        searches: dict[int, tuple[CubeShard, ProgressiveSearch]],
        io_before: dict,
    ) -> QueryResult:
        """Assemble the merged QueryResult with per-shard attribution."""
        result = QueryResult(shard_io={})
        assert result.shard_io is not None
        for shard_id, (shard, search) in sorted(searches.items()):
            sub = search.result
            result.blocks_accessed += sub.blocks_accessed
            result.candidates_examined += sub.candidates_examined
            result.tuples_examined += sub.tuples_examined
            device_reads = shard.db.io_since(io_before[shard_id]).reads
            result.shard_io[shard_id] = ShardIO(
                blocks_accessed=sub.blocks_accessed,
                candidates_examined=sub.candidates_examined,
                tuples_examined=sub.tuples_examined,
                device_reads=device_reads,
            )
            self.registry.counter(
                "shard.service.blocks_accessed", shard=str(shard_id)
            ).inc(sub.blocks_accessed)
            self.registry.counter(
                "shard.service.device_reads", shard=str(shard_id)
            ).inc(device_reads)
        rows = _rows_from_heap(topk)
        if query.projection:
            rows = [self._project(row, query) for row in rows]
        result.rows = rows
        return result

    def _project(self, row: ResultRow, query: TopKQuery) -> ResultRow:
        try:
            record = self.cube.fetch_by_tid(row.tid)
        except StorageError as exc:
            owner = self.cube._owner.get(row.tid)
            if owner is not None:
                _blame_shard(exc, owner[0])
            raise
        schema = self.cube.schema
        values = tuple(
            record[schema.position(name)] for name in (query.projection or ())
        )
        return ResultRow(tid=row.tid, score=row.score, values=values)

    # ------------------------------------------------------------------
    def _record(
        self,
        latency_s: float,
        *,
        shards: int,
        rounds: int,
        steps: int,
        blocks: int,
        candidates: int,
        tuples: int,
        aborted: bool,
    ) -> None:
        record = ShardedQueryRecord(
            latency_s=latency_s,
            shards_consulted=shards,
            merge_rounds=rounds,
            shard_steps=steps,
            blocks_accessed=blocks,
            candidates_examined=candidates,
            tuples_examined=tuples,
            aborted=aborted,
        )
        with self._stats_lock:
            self.stats.records.append(record)
        self._queries_counter.inc()
        if aborted:
            self._aborted_counter.inc()
        self._latency_hist.observe(latency_s)

    def _retain_spans(self, tracer: Tracer | None) -> None:
        if tracer is None or not tracer.roots:
            return
        with self._stats_lock:
            self.spans.extend(tracer.roots)
            if len(self.spans) > self.span_capacity:
                del self.spans[: len(self.spans) - self.span_capacity]

    # ------------------------------------------------------------------
    # cache administration
    # ------------------------------------------------------------------
    def cold_cache(self) -> None:
        """Evict every shard's buffered pages *and* shared caches.

        Mode-transparent: thread mode cools the in-process shard stacks,
        process mode broadcasts :class:`~repro.serve.wire.ColdCache` to
        every worker (their buffer pools are not reachable from here).
        """
        if self._proc_pool is not None:
            self._proc_pool.cold_cache()
        else:
            self.cube.cold_cache()
            self.invalidate_caches()

    def invalidate_caches(self) -> None:
        """Drop every shard's shared caches."""
        for ctx in self._contexts.values():
            if ctx.pseudo_cache is not None:
                ctx.pseudo_cache.clear()
            if ctx.bound_memo is not None:
                ctx.bound_memo.clear()

    def shard_cache_stats(self) -> dict[int, dict[str, int]]:
        """Per-shard pseudo-block cache counters (empty when disabled)."""
        out: dict[int, dict[str, int]] = {}
        for shard_id, ctx in sorted(self._contexts.items()):
            if ctx.pseudo_cache is not None:
                out[shard_id] = ctx.pseudo_cache.stats.snapshot()
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop accepting queries, drain pools, stop workers, unhook."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=wait)
        self._step_pool.shutdown(wait=wait)
        for ctx in self._contexts.values():
            ctx.unhook()
        if self._proc_pool is not None:
            self._proc_pool.close()
        if self._owned_spill_dir is not None:
            shutil.rmtree(self._owned_spill_dir, ignore_errors=True)
            self._owned_spill_dir = None

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
