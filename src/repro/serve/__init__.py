"""Concurrent query serving with cross-query caching.

The paper's executor amortizes I/O *within* one query (the retrieve-step
pseudo-block buffer); this package extends the amortization *across* a
query stream and makes the read path safe for concurrent workers:

* :class:`PseudoBlockCache` — shared LRU of decoded pseudo blocks,
* :class:`ColumnarBlockCache` — shared LRU of decoded columnar base
  blocks (the vectorized executor's evaluate step),
* :class:`BoundMemo` — shared memo of block lower bounds ``f(bid)``,
* :class:`QueryService` — worker-pool front end with ``submit`` /
  ``run_batch`` APIs and per-query latency/IO accounting,
* :class:`RoutedQueryService` — the same front end with
  :class:`~repro.route.AdaptiveRouter` as its door: per-query
  cost-routed path choice plus optional cuboid-advisor and
  drift-repartition maintenance (:mod:`repro.route`),
* :class:`ShardedQueryService` — the same front end over a horizontally
  sharded deployment (:mod:`repro.shard`), scatter-gathering per-shard
  progressive searches under a global early-termination bound.  With
  ``mode="process"`` each shard's stack lives in a long-lived worker
  process (:mod:`repro.serve.procpool`) speaking length-prefixed pickle
  frames (:mod:`repro.serve.wire`) — same merge, no GIL on the steps.

``python -m repro.bench serve`` replays a skewed multi-tenant stream
through these layers and reports throughput, latency percentiles, and
per-layer cache attribution (``BENCH_serve.json``);
``python -m repro.bench shard`` compares 1/2/4/8-way sharded serving
against the unsharded baseline (``BENCH_shard.json``).
"""

from .cache import BoundMemo, CacheStats, ColumnarBlockCache, PseudoBlockCache
from .procpool import ProcessShardPool, ProcPoolError, ShardWorkerHandle
from .routed import RoutedQueryService
from .service import (
    QueryRecord,
    QueryService,
    ServiceClosedError,
    ServiceOverloadedError,
    ServiceStats,
)
from .sharded import (
    ShardedAnyKCursor,
    ShardedQueryRecord,
    ShardedQueryService,
    ShardedServiceStats,
)
from .wire import WireError, WorkerDiedError

__all__ = [
    "BoundMemo",
    "CacheStats",
    "ColumnarBlockCache",
    "ProcessShardPool",
    "ProcPoolError",
    "PseudoBlockCache",
    "QueryRecord",
    "QueryService",
    "RoutedQueryService",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "ServiceStats",
    "ShardWorkerHandle",
    "ShardedAnyKCursor",
    "ShardedQueryRecord",
    "ShardedQueryService",
    "ShardedServiceStats",
    "WireError",
    "WorkerDiedError",
]
