"""Concurrent query serving with cross-query caching.

The paper's executor amortizes I/O *within* one query (the retrieve-step
pseudo-block buffer); this package extends the amortization *across* a
query stream and makes the read path safe for concurrent workers:

* :class:`PseudoBlockCache` — shared LRU of decoded pseudo blocks,
* :class:`BoundMemo` — shared memo of block lower bounds ``f(bid)``,
* :class:`QueryService` — worker-pool front end with ``submit`` /
  ``run_batch`` APIs and per-query latency/IO accounting.

``python -m repro.bench serve`` replays a skewed multi-tenant stream
through these layers and reports throughput, latency percentiles, and
per-layer cache attribution (``BENCH_serve.json``).
"""

from .cache import BoundMemo, CacheStats, PseudoBlockCache
from .service import (
    QueryRecord,
    QueryService,
    ServiceClosedError,
    ServiceStats,
)

__all__ = [
    "BoundMemo",
    "CacheStats",
    "PseudoBlockCache",
    "QueryRecord",
    "QueryService",
    "ServiceClosedError",
    "ServiceStats",
]
