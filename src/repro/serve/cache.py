"""Cross-query caches for the serving layer.

These cache families let a query *stream* amortize work the paper's
executor only amortizes *within* one query:

* :class:`PseudoBlockCache` — a memory-bounded, thread-safe LRU over
  decoded pseudo blocks.  Keys are ``(cuboid_name, cell_values, pid)``
  and values are the decoded ``{bid: [tid, ...]}`` maps, so a repeated
  selection skips both the page I/O *and* the decode work of
  ``get_pseudo_block``.  Invalidation hooks are wired to the cube's
  append/refresh paths (see :meth:`repro.core.cube.RankingCube
  .add_invalidation_listener`); invalidation is conservative — any
  maintenance event drops every entry of the affected cuboids.
* :class:`ColumnarBlockCache` — the same idea for the vectorized
  executor's *evaluate* step: decoded struct-of-arrays base blocks
  (:class:`repro.vector.ColumnarBlock`), keyed by the base table's
  never-reused ``uid`` plus bid so stale generations miss by
  construction.
* :class:`BoundMemo` — memoizes the convex lower bound ``f(bid)`` per
  ``(ranking-function signature, grid signature)``.  The bound depends
  only on the function and the grid geometry, never on the data, so a
  query stream that reuses popular ranking functions computes each block
  bound exactly once.  Functions without a value-based signature (opaque
  callables) are simply not memoized.

Both caches are safe under concurrent readers/writers: every public
method holds the cache's lock for its full (short, pure-Python) critical
section.  Entries are only inserted after a *successful* decode, so a
query aborted mid-flight by a storage fault can never poison them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..obs.metrics import MetricsRegistry, RegistryStatsView

#: Key of one cached pseudo block: (cuboid name, cell values, pid).
PseudoKey = tuple[str, tuple[int, ...], int]


class CacheStats(RegistryStatsView):
    """Hit/miss/eviction counters for one shared cache.

    A view over ``serve.cache.*`` registry series, labeled with the cache
    instance's name — so a service's pseudo-block cache and bound memo
    publish to the same spine as the device and buffer pool under it, and
    the invariant *shared-cache misses == cold fetches* is checkable from
    one registry snapshot.
    """

    _PREFIX = "serve.cache."
    _FIELDS = (
        "hits",
        "misses",
        "insertions",
        "evictions",
        "invalidations",
        "oversized_rejections",
    )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, int]:
        """A detached plain-value copy of the current counters."""
        return self.as_dict()


class PseudoBlockCache:
    """Memory-bounded LRU of decoded pseudo blocks, shared across queries.

    Parameters
    ----------
    capacity_entries:
        Maximum number of resident ``{bid: [tid, ...]}`` maps.
    capacity_tids:
        Optional additional bound on the total number of cached tids
        (the dominant memory cost); eviction runs until both bounds hold.
        ``None`` disables the tid bound.
    registry:
        Metrics registry the cache's counters attach to (a private one
        when omitted).  The serving layer passes the storage tree's
        registry so cache accounting shares the spine.
    """

    def __init__(
        self,
        capacity_entries: int = 1024,
        capacity_tids: int | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if capacity_entries < 1:
            raise ValueError("capacity_entries must be >= 1")
        if capacity_tids is not None and capacity_tids < 1:
            raise ValueError("capacity_tids must be >= 1 (or None)")
        self.capacity_entries = capacity_entries
        self.capacity_tids = capacity_tids
        self.stats = CacheStats(registry, cache="pseudo_block")
        self._lock = threading.Lock()
        self._entries: OrderedDict[PseudoKey, dict[int, list[int]]] = OrderedDict()
        self._resident_tids = 0

    # ------------------------------------------------------------------
    def get(self, key: PseudoKey) -> dict[int, list[int]] | None:
        """The decoded map for ``key``, or ``None`` on a miss.

        Callers must treat the returned map as immutable — it is shared
        with every other query that hits the same key.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.inc("misses")
                return None
            self.stats.inc("hits")
            self._entries.move_to_end(key)
            return entry

    def put(self, key: PseudoKey, by_bid: dict[int, list[int]]) -> None:
        """Insert a fully decoded pseudo block (idempotent per key).

        An entry larger than ``capacity_tids`` on its own is rejected up
        front (counted in ``oversized_rejections``): admitting it would
        first evict every other resident entry and then leave the cache
        over its memory bound for as long as the entry stays hot.  Callers
        keep their reference to the decoded map, so a rejection costs
        nothing beyond the lost reuse.
        """
        entry_tids = sum(len(tids) for tids in by_bid.values())
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return
            if self.capacity_tids is not None and entry_tids > self.capacity_tids:
                self.stats.inc("oversized_rejections")
                return
            self._entries[key] = by_bid
            self._resident_tids += entry_tids
            self.stats.inc("insertions")
            self._evict_locked()
            assert (
                self.capacity_tids is None
                or self._resident_tids <= self.capacity_tids
            ), "pseudo-block cache exceeded its tid memory bound after insert"

    def _evict_locked(self) -> None:
        while len(self._entries) > self.capacity_entries or (
            self.capacity_tids is not None
            and self._resident_tids > self.capacity_tids
        ):
            _key, victim = self._entries.popitem(last=False)
            self._resident_tids -= sum(len(tids) for tids in victim.values())
            self.stats.inc("evictions")

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate_cuboids(self, cuboid_names) -> int:
        """Drop every entry belonging to the named cuboids.

        This is the listener the cube's maintenance paths call (see
        ``RankingCube.add_invalidation_listener``); returns the number of
        entries dropped.
        """
        names = set(cuboid_names)
        with self._lock:
            doomed = [key for key in self._entries if key[0] in names]
            for key in doomed:
                victim = self._entries.pop(key)
                self._resident_tids -= sum(len(t) for t in victim.values())
            self.stats.inc("invalidations", len(doomed))
            return len(doomed)

    def clear(self) -> None:
        """Drop everything (counts as invalidation, not eviction)."""
        with self._lock:
            self.stats.inc("invalidations", len(self._entries))
            self._entries.clear()
            self._resident_tids = 0

    # ------------------------------------------------------------------
    @property
    def resident_entries(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def resident_tids(self) -> int:
        with self._lock:
            return self._resident_tids

    def __contains__(self, key: PseudoKey) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        return self.resident_entries


class ColumnarBlockCache:
    """Memory-bounded LRU of decoded columnar base blocks (vector path).

    The vectorized executor decodes each base block it evaluates into
    struct-of-arrays form (:class:`repro.vector.ColumnarBlock`); this
    cache shares those decodes across a query stream the way
    :class:`PseudoBlockCache` shares pseudo-block decodes.  Keys pair the
    base table's never-reused ``uid`` with the bid, so entries decoded
    from a compacted-away table generation can never satisfy a lookup
    against its replacement — invalidation on top of that is purely an
    eager memory release.

    A hit does **not** change a query's logical counters
    (``blocks_accessed`` etc. still advance): the executor's
    byte-identical-answers contract counts block *visits*, and the cache
    only removes the physical fetch + decode behind one.

    Parameters
    ----------
    capacity_blocks:
        Maximum number of resident columnar blocks.
    capacity_tuples:
        Optional additional bound on total cached tuples (the dominant
        memory cost); eviction runs until both bounds hold.
    registry:
        Metrics registry for the ``serve.cache.*`` counters (labeled
        ``cache="columnar_block"``).
    """

    def __init__(
        self,
        capacity_blocks: int = 4096,
        capacity_tuples: int | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if capacity_blocks < 1:
            raise ValueError("capacity_blocks must be >= 1")
        if capacity_tuples is not None and capacity_tuples < 1:
            raise ValueError("capacity_tuples must be >= 1 (or None)")
        self.capacity_blocks = capacity_blocks
        self.capacity_tuples = capacity_tuples
        self.stats = CacheStats(registry, cache="columnar_block")
        self._lock = threading.Lock()
        # (table uid, bid) -> ColumnarBlock
        self._entries: OrderedDict[tuple[int, int], object] = OrderedDict()
        self._resident_tuples = 0

    # ------------------------------------------------------------------
    def get(self, key: tuple[int, int]):
        """The columnar block for ``(table uid, bid)``, or ``None``.

        Returned blocks are shared across queries and must be treated as
        immutable.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.inc("misses")
                return None
            self.stats.inc("hits")
            self._entries.move_to_end(key)
            return entry

    def put(self, key: tuple[int, int], block) -> None:
        """Insert a fully decoded block (idempotent per key)."""
        size = len(block)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            if self.capacity_tuples is not None and size > self.capacity_tuples:
                self.stats.inc("oversized_rejections")
                return
            self._entries[key] = block
            self._resident_tuples += size
            self.stats.inc("insertions")
            while len(self._entries) > self.capacity_blocks or (
                self.capacity_tuples is not None
                and self._resident_tuples > self.capacity_tuples
            ):
                _key, victim = self._entries.popitem(last=False)
                self._resident_tuples -= len(victim)
                self.stats.inc("evictions")

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Drop everything (counts as invalidation); returns entries dropped.

        The uid-keyed design makes this optional for correctness — the
        serving layer calls it on maintenance events to release memory
        held by unreachable generations promptly.
        """
        with self._lock:
            dropped = len(self._entries)
            self.stats.inc("invalidations", dropped)
            self._entries.clear()
            self._resident_tuples = 0
            return dropped

    @property
    def resident_blocks(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def resident_tuples(self) -> int:
        with self._lock:
            return self._resident_tuples

    def __contains__(self, key: tuple[int, int]) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        return self.resident_blocks


class BoundMemo:
    """Memo of block lower bounds ``f(bid)`` keyed by (function, grid).

    The memo is safe to share across every query and every cube: bounds
    depend only on the ranking-function values and the grid boundaries,
    both captured in the key.  Ranking functions advertise a value-based
    signature via :meth:`repro.ranking.functions.RankingFunction.cache_key`;
    functions that cannot (opaque convex callables) return ``None`` and
    are not memoized — ``lookup`` reports a pass-through miss and ``store``
    drops the value.

    Entries never go stale (neither operand is mutable), so there is no
    invalidation path; ``clear`` exists for memory pressure only.  The memo
    is bounded by ``capacity`` *(function, grid)* groups, evicted LRU.
    """

    def __init__(self, capacity: int = 64, registry: MetricsRegistry | None = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats(registry, cache="bound_memo")
        self._lock = threading.Lock()
        # (fn_key, grid_key) -> {bid: bound}
        self._groups: OrderedDict[tuple, dict[int, float]] = OrderedDict()

    # ------------------------------------------------------------------
    @staticmethod
    def grid_key(grid) -> tuple:
        """Value-based identity of a grid's geometry."""
        return (grid.dims, grid.boundaries)

    def group(self, fn, grid) -> dict[int, float] | None:
        """The mutable ``{bid: bound}`` memo for one (function, grid).

        Returns ``None`` when the function has no value-based signature.
        The returned dict is shared: the executor reads and writes it
        directly, which is safe because CPython dict get/set are atomic
        and bounds are deterministic — concurrent writers store the same
        value.
        """
        fn_key = fn.cache_key()
        if fn_key is None:
            return None
        key = (fn_key, self.grid_key(grid))
        with self._lock:
            memo = self._groups.get(key)
            if memo is None:
                memo = {}
                self._groups[key] = memo
                while len(self._groups) > self.capacity:
                    self._groups.popitem(last=False)
                    self.stats.inc("evictions")
            else:
                self._groups.move_to_end(key)
            return memo

    def lookup(self, memo: dict[int, float] | None, bid: int) -> float | None:
        """Memoized bound for ``bid``, counting hit/miss."""
        if memo is None:
            self.stats.inc("misses")
            return None
        bound = memo.get(bid)
        if bound is None:
            self.stats.inc("misses")
        else:
            self.stats.inc("hits")
        return bound

    def store(self, memo: dict[int, float] | None, bid: int, bound: float) -> None:
        if memo is not None:
            memo[bid] = bound
            self.stats.inc("insertions")

    # ------------------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self.stats.inc("invalidations", len(self._groups))
            self._groups.clear()

    @property
    def resident_groups(self) -> int:
        with self._lock:
            return len(self._groups)

    @property
    def resident_bounds(self) -> int:
        with self._lock:
            return sum(len(memo) for memo in self._groups.values())
