"""The ranking cube (Section 3): base block table + cuboids + meta info.

A :class:`RankingCube` is the paper's triple ``(T, C, M)``:

* ``T`` — the base block table over the ranking dimensions,
* ``C`` — the set of materialized ranking cuboids (all ``2^S - 1``
  non-empty selection-dimension subsets for a full cube; a restricted
  family for ranking fragments — see :mod:`repro.core.fragments`),
* ``M`` — the meta information: bin boundaries per ranking dimension and
  the scale factor per cuboid.

The cube also owns the *covering cuboid* selection of Section 4.2.1 (the
max step + min step), which the query executor uses for both the fully
materialized and the fragmented case.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Iterable, Sequence

from ..obs.tracing import maybe_span
from ..relational.table import Table
from ..storage.buffer import BufferPool
from .base_table import BaseBlockTable
from .blocks import BlockGrid
from .cuboid import RankingCuboid
from .parallel import CuboidSpec, compute_build_groups
from .partition import EquiDepthPartitioner, Partitioner
from .pseudo import scale_factor

DEFAULT_BLOCK_SIZE = 30  # the paper's default B (expected tuples per block)


class CubeError(Exception):
    """Raised for cube construction and covering failures."""


class RankingCube:
    """A materialized rank-aware cube over one relation.

    The materialization is immutable (the chain stores are build-once), but
    the cube supports *incremental maintenance* through a delta store: new
    tuples appended to the relation after the build are absorbed with
    :meth:`refresh_delta` into a small in-memory side list that the query
    executor merges into every answer.  When the delta grows past a
    configured fraction of the data, rebuild (the classic delta-store /
    merge maintenance strategy; the paper leaves updates as future work).
    """

    def __init__(
        self,
        grid: BlockGrid,
        base_table: BaseBlockTable,
        cuboids: dict[frozenset, RankingCuboid],
        block_size: int,
    ):
        self.grid = grid
        self.base_table = base_table
        self.cuboids = cuboids
        self.block_size = block_size
        #: tid watermark: tuples with tid >= this are not in the cube yet
        self.watermark = base_table.num_tuples
        #: delta store: (tid, {sel dim: value}, {rank dim: value})
        self._delta: list[tuple[int, dict, dict]] = []
        self._delta_selection_dims: frozenset = frozenset().union(
            *cuboids
        ) if cuboids else frozenset()
        #: serving-layer caches subscribed to maintenance events
        self._invalidation_listeners: list = []
        #: guards every mutation of cube state visible to queries — the
        #: (base_table, cuboids, delta) triple changes only under this
        #: lock, and :meth:`snapshot` reads it under the same lock, so a
        #: background compaction swap is atomic from any query's view
        self._state_lock = threading.Lock()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        table: Table,
        ranking_dims: Sequence[str] | None = None,
        selection_dims: Sequence[str] | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        partitioner: Partitioner | None = None,
        cuboid_sets: Iterable[Sequence[str]] | None = None,
        grid: BlockGrid | None = None,
        pseudo_scale_override: int | None = None,
        compress: bool = False,
        workers: int = 1,
        tracer=None,
    ) -> "RankingCube":
        """Materialize a ranking cube from a loaded table.

        Parameters
        ----------
        table:
            Source relation (also supplies the buffer pool / device, so the
            cube's I/O shares the relation's meter).
        ranking_dims / selection_dims:
            Dimensions to cube over; default to every ranking / selection
            attribute of the table's schema.
        block_size:
            Expected tuples per base block (the paper's ``B``; default 30).
        partitioner:
            Geometry partition strategy (default equi-depth, as the paper).
        cuboid_sets:
            Which selection-dimension subsets to materialize.  ``None``
            materializes the full cube (every non-empty subset).  Ranking
            fragments pass the per-fragment family instead.
        grid:
            Pre-built grid (the paper's worked example supplies explicit
            boundaries); overrides ``partitioner``.
        workers:
            Process-pool width for the grouping phase.  ``1`` (default)
            groups in-process; ``N > 1`` shards the scanned relation by
            tid range across ``N`` worker processes and merges the partial
            group maps (see :mod:`repro.core.parallel`).  The resulting
            device image is byte-identical either way; only wall-clock
            changes.  All page I/O stays in the calling process.
        tracer:
            Optional :class:`~repro.obs.tracing.Tracer`; when given, the
            build emits a ``build`` span tree (scan/group/materialize).
        """
        started = time.perf_counter()
        registry = getattr(table.pool, "registry", None)
        with maybe_span(tracer, "build", workers=workers) as build_span:
            schema = table.schema
            if ranking_dims is None:
                ranking_dims = schema.ranking_names
            if selection_dims is None:
                selection_dims = schema.selection_names
            ranking_dims = tuple(ranking_dims)
            selection_dims = tuple(selection_dims)
            if not ranking_dims:
                raise CubeError("a ranking cube needs at least one ranking dimension")

            # One scan of the relation gathers everything the build needs.
            with maybe_span(tracer, "build.scan"):
                rank_pos = [schema.position(d) for d in ranking_dims]
                sel_pos = [schema.position(d) for d in selection_dims]
                tids: list[int] = []
                points: list[tuple[float, ...]] = []
                sel_rows: list[tuple[int, ...]] = []
                for record in table.scan():
                    tids.append(int(record[0]))
                    points.append(tuple(float(record[1 + p]) for p in rank_pos))
                    sel_rows.append(tuple(int(record[1 + p]) for p in sel_pos))
                if not tids:
                    raise CubeError(
                        "cannot build a ranking cube over an empty relation"
                    )

            if grid is None:
                if partitioner is None:
                    partitioner = EquiDepthPartitioner()
                columns = list(zip(*points))
                grid = partitioner.build_grid(ranking_dims, columns, block_size)

            # Resolve the cuboid family up front (names, key positions, and
            # scale factors) so the grouping phase — serial or sharded — is
            # policy-free arithmetic.
            if cuboid_sets is None:
                cuboid_sets = full_cube_sets(selection_dims)
            sel_index = {dim: i for i, dim in enumerate(selection_dims)}
            specs: list[CuboidSpec] = []
            spec_meta: list[tuple[frozenset, tuple[str, ...], tuple[int, ...]]] = []
            seen: set[frozenset] = set()
            for dims in cuboid_sets:
                dims = tuple(dims)
                key = frozenset(dims)
                if key in seen:
                    continue
                seen.add(key)
                missing = [d for d in dims if d not in sel_index]
                if missing:
                    raise CubeError(f"unknown selection dimensions {missing}")
                positions = tuple(sel_index[d] for d in dims)
                cardinalities = tuple(schema.cardinalities(dims))
                scale = (
                    scale_factor(cardinalities, grid.num_dims)
                    if pseudo_scale_override is None
                    else pseudo_scale_override
                )
                specs.append(CuboidSpec(dims=dims, positions=positions, scale=scale))
                spec_meta.append((key, dims, cardinalities))

            with maybe_span(tracer, "build.group", workers=workers) as group_span:
                grouped = compute_build_groups(
                    grid, specs, tids, points, sel_rows, workers=workers
                )
                if group_span is not None:
                    group_span.add("shards", grouped.shards)

            # Materialization (page allocation + writes) is single-threaded
            # in the parent, in the exact order the serial build uses —
            # this is what makes the parallel image byte-identical.
            with maybe_span(tracer, "build.materialize"):
                base_table = BaseBlockTable.from_groups(
                    table.pool, grid, grouped.base_groups
                )
                cuboids: dict[frozenset, RankingCuboid] = {}
                for (key, dims, cardinalities), groups in zip(
                    spec_meta, grouped.cuboid_groups
                ):
                    cuboids[key] = RankingCuboid.from_groups(
                        table.pool,
                        dims,
                        cardinalities,
                        grid,
                        groups,
                        scale_override=pseudo_scale_override,
                        compress=compress,
                    )

            if build_span is not None:
                build_span.add_many(
                    tuples=len(tids), cuboids=len(cuboids), shards=grouped.shards
                )
        if registry is not None:
            registry.counter("build.runs").inc()
            registry.counter("build.tuples").inc(len(tids))
            registry.counter("build.cuboids").inc(len(cuboids))
            registry.counter("build.shards").inc(grouped.shards)
            registry.histogram("build.wall_s").observe(time.perf_counter() - started)
        return cls(grid, base_table, cuboids, block_size)

    # ------------------------------------------------------------------
    # covering cuboids (Section 4.2.1)
    # ------------------------------------------------------------------
    def covering_cuboids(self, query_dims: Sequence[str]) -> list[RankingCuboid]:
        """The minimum covering set MS for a query's selection dimensions.

        Max step: keep candidate cuboids whose dims are subsets of the
        query dims and maximal among such.  Min step: the smallest
        sub-family whose union equals the query dims (exact search for
        small candidate sets, greedy beyond that).  A query with no
        selection dimensions returns the empty list — the executor then
        reads base blocks directly.
        """
        return _covering_cuboids(self.cuboids, query_dims)

    def cuboid(self, dims: Sequence[str]) -> RankingCuboid:
        """The cuboid materialized exactly on ``dims``."""
        try:
            return self.cuboids[frozenset(dims)]
        except KeyError:
            raise CubeError(f"no cuboid on dimensions {tuple(dims)}") from None

    # ------------------------------------------------------------------
    # cache invalidation hooks (serving layer)
    # ------------------------------------------------------------------
    def add_invalidation_listener(self, listener) -> None:
        """Subscribe a shared cache to this cube's maintenance events.

        ``listener(cuboid_names)`` is called with the names of every
        cuboid of this cube whenever the maintenance paths absorb new
        tuples (:meth:`refresh_delta`) — conservatively, since a delta
        append changes what the *complete* answer for any cached cell is,
        even though the materialized tid lists themselves are immutable.
        :class:`repro.serve.cache.PseudoBlockCache.invalidate_cuboids` is
        the canonical listener.
        """
        self._invalidation_listeners.append(listener)

    def remove_invalidation_listener(self, listener) -> None:
        try:
            self._invalidation_listeners.remove(listener)
        except ValueError:
            pass

    @property
    def cuboid_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.cuboids.values())

    def _notify_invalidation(self) -> None:
        names = self.cuboid_names
        for listener in list(self._invalidation_listeners):
            listener(names)

    # Listeners are live serving-layer caches; a persisted snapshot must
    # not capture them (they hold locks and process-local state).  The
    # copy happens under the state lock so a pickle taken while a
    # background compaction is swapping state captures either the old or
    # the new (base_table, cuboids, delta) triple — never a mix.
    def __getstate__(self):
        with self._state_lock:
            state = self.__dict__.copy()
        state["_invalidation_listeners"] = []
        del state["_state_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._invalidation_listeners = []
        self._state_lock = threading.Lock()

    # ------------------------------------------------------------------
    # consistent read snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> "CubeSnapshot":
        """An immutable view of the queryable cube state.

        Executors capture one snapshot per query and resolve every read
        (covering cuboids, base blocks, delta matches) against it, so a
        concurrent compaction swap can never hand a single query a mix of
        old and new state.
        """
        with self._state_lock:
            return CubeSnapshot(
                grid=self.grid,
                base_table=self.base_table,
                cuboids=dict(self.cuboids),
                delta=tuple(self._delta),
                watermark=self.watermark,
                block_size=self.block_size,
            )

    # ------------------------------------------------------------------
    # incremental maintenance (delta store)
    # ------------------------------------------------------------------
    def refresh_delta(self, table: Table) -> int:
        """Absorb tuples appended to ``table`` since the build/last refresh.

        Returns how many new tuples entered the delta store.  Queries see
        them immediately (the executor merges the delta); the
        materialization itself is untouched.
        """
        schema = table.schema
        sel_dims = sorted(self._delta_selection_dims)
        sel_pos = {d: schema.position(d) for d in sel_dims}
        rank_pos = {d: schema.position(d) for d in self.grid.dims}
        # Heap reads happen outside the lock (they can do I/O); only the
        # append + watermark bump is a critical section.
        entries: list[tuple[int, dict, dict]] = []
        start = self.watermark
        target = table.num_rows
        for tid in range(start, target):
            row = table.fetch_by_tid(tid)
            selections = {d: int(row[p]) for d, p in sel_pos.items()}
            rankings = {d: float(row[p]) for d, p in rank_pos.items()}
            entries.append((tid, selections, rankings))
        with self._state_lock:
            self._delta.extend(entries)
            self.watermark = max(self.watermark, target)
        if entries:
            self._notify_invalidation()
        return len(entries)

    def delta_matches(
        self, selections: dict
    ) -> list[tuple[int, dict]]:
        """Delta tuples satisfying a query's selection conditions.

        Returns ``(tid, {ranking dim: value})`` pairs; the executor scores
        them alongside block-retrieved tuples.
        """
        with self._state_lock:
            delta = tuple(self._delta)
        return _delta_matches(delta, selections)

    @property
    def delta_size(self) -> int:
        with self._state_lock:
            return len(self._delta)

    @property
    def epoch(self) -> int:
        """The cube's materialization generation.

        Compaction rebuilds every cuboid with a bumped epoch and swaps
        them in together, so the per-cuboid epochs always agree; this is
        that common value (0 for a freshly built cube).  Snapshot
        manifests pin it so a reloaded or replicated deployment can prove
        which generation it serves.
        """
        epochs = {c.epoch for c in self.cuboids.values()}
        if len(epochs) > 1:
            raise CubeError(f"mixed cuboid generations: {sorted(epochs)}")
        return epochs.pop() if epochs else 0

    def needs_rebuild(self, max_delta_fraction: float = 0.1) -> bool:
        """Whether the delta store has outgrown the materialization."""
        return self.delta_size > max_delta_fraction * max(1, self.base_table.num_tuples)

    # ------------------------------------------------------------------
    # meta information M
    # ------------------------------------------------------------------
    @property
    def bin_boundaries(self) -> dict[str, tuple[float, ...]]:
        return dict(zip(self.grid.dims, self.grid.boundaries))

    @property
    def scale_factors(self) -> dict[str, int]:
        return {cuboid.name: cuboid.scale_factor for cuboid in self.cuboids.values()}

    @property
    def ranking_dims(self) -> tuple[str, ...]:
        return self.grid.dims

    @property
    def size_in_bytes(self) -> int:
        cuboid_bytes = sum(c.size_in_bytes for c in self.cuboids.values())
        return self.base_table.size_in_bytes + cuboid_bytes

    def describe(self) -> str:
        """Human-readable inventory of the materialization."""
        lines = [
            f"RankingCube over N=({', '.join(self.grid.dims)}), "
            f"B={self.block_size}, bins={self.grid.bins_per_dim}",
            f"  base block table: {self.base_table.num_tuples} tuples, "
            f"{self.base_table.size_in_bytes} bytes",
        ]
        for key in sorted(self.cuboids, key=lambda k: (len(k), sorted(k))):
            cuboid = self.cuboids[key]
            lines.append(
                f"  cuboid {cuboid.name}: sf={cuboid.scale_factor}, "
                f"{cuboid.num_entries} entries, {cuboid.size_in_bytes} bytes"
            )
        return "\n".join(lines)


class CubeSnapshot:
    """A point-in-time, immutable view of a cube's queryable state.

    Holds the exact ``(base_table, cuboids, delta)`` triple that was
    current when :meth:`RankingCube.snapshot` ran.  Store objects are
    build-once and never mutated in place (maintenance swaps whole
    objects), so sharing them here is safe; the cuboids dict and delta
    are shallow-copied so later swaps cannot alias into the snapshot.
    """

    __slots__ = ("grid", "base_table", "cuboids", "delta", "watermark", "block_size")

    def __init__(self, grid, base_table, cuboids, delta, watermark, block_size):
        self.grid = grid
        self.base_table = base_table
        self.cuboids = cuboids
        self.delta = delta
        self.watermark = watermark
        self.block_size = block_size

    def covering_cuboids(self, query_dims: Sequence[str]) -> list[RankingCuboid]:
        """Section 4.2.1 covering over the snapshotted cuboid family."""
        return _covering_cuboids(self.cuboids, query_dims)

    def delta_matches(self, selections: dict) -> list[tuple[int, dict]]:
        """Snapshotted delta tuples satisfying the selection conditions."""
        return _delta_matches(self.delta, selections)

    @property
    def delta_size(self) -> int:
        return len(self.delta)

    @property
    def epoch(self) -> int:
        """Materialization generation this snapshot pinned (see
        :attr:`RankingCube.epoch`); snapshots never span a swap, so the
        per-cuboid epochs here agree by construction."""
        epochs = {c.epoch for c in self.cuboids.values()}
        return epochs.pop() if len(epochs) == 1 else 0


def _covering_cuboids(
    cuboids: dict[frozenset, RankingCuboid], query_dims: Sequence[str]
) -> list[RankingCuboid]:
    """Shared covering-cuboid selection over any cuboid family mapping."""
    wanted = frozenset(query_dims)
    if not wanted:
        return []
    candidates = [key for key in cuboids if key <= wanted]
    if not candidates:
        raise CubeError(f"no materialized cuboid covers any of {sorted(wanted)}")
    covered = frozenset().union(*candidates)
    if covered != wanted:
        raise CubeError(
            f"dimensions {sorted(wanted - covered)} are not materialized "
            "in any cuboid"
        )
    maximal = [
        key for key in candidates
        if not any(key < other for other in candidates)
    ]
    chosen = _minimum_cover(maximal, wanted)
    return [cuboids[key] for key in chosen]


def _delta_matches(
    delta: Sequence[tuple[int, dict, dict]], selections: dict
) -> list[tuple[int, dict]]:
    matches = []
    for tid, sel_values, rank_values in delta:
        if all(sel_values.get(d) == v for d, v in selections.items()):
            matches.append((tid, rank_values))
    return matches


def full_cube_sets(selection_dims: Sequence[str]) -> list[tuple[str, ...]]:
    """Every non-empty subset of the selection dimensions (full cube)."""
    dims = tuple(selection_dims)
    sets: list[tuple[str, ...]] = []
    for size in range(1, len(dims) + 1):
        sets.extend(itertools.combinations(dims, size))
    return sets


def _minimum_cover(candidates: list[frozenset], wanted: frozenset) -> list[frozenset]:
    """Smallest sub-family of ``candidates`` whose union is ``wanted``.

    Exhaustive for small candidate families (the common case: one fragment
    cuboid per query dimension), greedy set cover otherwise.
    """
    if len(candidates) <= 12:
        for size in range(1, len(candidates) + 1):
            for combo in itertools.combinations(candidates, size):
                if frozenset().union(*combo) == wanted:
                    return list(combo)
    # greedy fallback
    remaining = set(wanted)
    chosen: list[frozenset] = []
    pool = list(candidates)
    while remaining:
        best = max(pool, key=lambda key: len(key & remaining))
        if not best & remaining:
            raise CubeError(f"cannot cover dimensions {sorted(remaining)}")
        chosen.append(best)
        remaining -= best
        pool.remove(best)
    return chosen
