"""The ranking cube (Section 3): base block table + cuboids + meta info.

A :class:`RankingCube` is the paper's triple ``(T, C, M)``:

* ``T`` — the base block table over the ranking dimensions,
* ``C`` — the set of materialized ranking cuboids (all ``2^S - 1``
  non-empty selection-dimension subsets for a full cube; a restricted
  family for ranking fragments — see :mod:`repro.core.fragments`),
* ``M`` — the meta information: bin boundaries per ranking dimension and
  the scale factor per cuboid.

The cube also owns the *covering cuboid* selection of Section 4.2.1 (the
max step + min step), which the query executor uses for both the fully
materialized and the fragmented case.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from ..relational.table import Table
from ..storage.buffer import BufferPool
from .base_table import BaseBlockTable
from .blocks import BlockGrid
from .cuboid import RankingCuboid
from .partition import EquiDepthPartitioner, Partitioner

DEFAULT_BLOCK_SIZE = 30  # the paper's default B (expected tuples per block)


class CubeError(Exception):
    """Raised for cube construction and covering failures."""


class RankingCube:
    """A materialized rank-aware cube over one relation.

    The materialization is immutable (the chain stores are build-once), but
    the cube supports *incremental maintenance* through a delta store: new
    tuples appended to the relation after the build are absorbed with
    :meth:`refresh_delta` into a small in-memory side list that the query
    executor merges into every answer.  When the delta grows past a
    configured fraction of the data, rebuild (the classic delta-store /
    merge maintenance strategy; the paper leaves updates as future work).
    """

    def __init__(
        self,
        grid: BlockGrid,
        base_table: BaseBlockTable,
        cuboids: dict[frozenset, RankingCuboid],
        block_size: int,
    ):
        self.grid = grid
        self.base_table = base_table
        self.cuboids = cuboids
        self.block_size = block_size
        #: tid watermark: tuples with tid >= this are not in the cube yet
        self.watermark = base_table.num_tuples
        #: delta store: (tid, {sel dim: value}, {rank dim: value})
        self._delta: list[tuple[int, dict, dict]] = []
        self._delta_selection_dims: frozenset = frozenset().union(
            *cuboids
        ) if cuboids else frozenset()
        #: serving-layer caches subscribed to maintenance events
        self._invalidation_listeners: list = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        table: Table,
        ranking_dims: Sequence[str] | None = None,
        selection_dims: Sequence[str] | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        partitioner: Partitioner | None = None,
        cuboid_sets: Iterable[Sequence[str]] | None = None,
        grid: BlockGrid | None = None,
        pseudo_scale_override: int | None = None,
        compress: bool = False,
    ) -> "RankingCube":
        """Materialize a ranking cube from a loaded table.

        Parameters
        ----------
        table:
            Source relation (also supplies the buffer pool / device, so the
            cube's I/O shares the relation's meter).
        ranking_dims / selection_dims:
            Dimensions to cube over; default to every ranking / selection
            attribute of the table's schema.
        block_size:
            Expected tuples per base block (the paper's ``B``; default 30).
        partitioner:
            Geometry partition strategy (default equi-depth, as the paper).
        cuboid_sets:
            Which selection-dimension subsets to materialize.  ``None``
            materializes the full cube (every non-empty subset).  Ranking
            fragments pass the per-fragment family instead.
        grid:
            Pre-built grid (the paper's worked example supplies explicit
            boundaries); overrides ``partitioner``.
        """
        schema = table.schema
        if ranking_dims is None:
            ranking_dims = schema.ranking_names
        if selection_dims is None:
            selection_dims = schema.selection_names
        ranking_dims = tuple(ranking_dims)
        selection_dims = tuple(selection_dims)
        if not ranking_dims:
            raise CubeError("a ranking cube needs at least one ranking dimension")

        # One scan of the relation gathers everything the build needs.
        rank_pos = [schema.position(d) for d in ranking_dims]
        sel_pos = [schema.position(d) for d in selection_dims]
        tids: list[int] = []
        points: list[tuple[float, ...]] = []
        sel_rows: list[tuple[int, ...]] = []
        for record in table.scan():
            tids.append(int(record[0]))
            points.append(tuple(float(record[1 + p]) for p in rank_pos))
            sel_rows.append(tuple(int(record[1 + p]) for p in sel_pos))
        if not tids:
            raise CubeError("cannot build a ranking cube over an empty relation")

        if grid is None:
            if partitioner is None:
                partitioner = EquiDepthPartitioner()
            columns = list(zip(*points))
            grid = partitioner.build_grid(ranking_dims, columns, block_size)
        base_table, bids = BaseBlockTable.build(table.pool, grid, tids, points)

        if cuboid_sets is None:
            cuboid_sets = full_cube_sets(selection_dims)
        sel_index = {dim: i for i, dim in enumerate(selection_dims)}
        cuboids: dict[frozenset, RankingCuboid] = {}
        for dims in cuboid_sets:
            dims = tuple(dims)
            key = frozenset(dims)
            if key in cuboids:
                continue
            missing = [d for d in dims if d not in sel_index]
            if missing:
                raise CubeError(f"unknown selection dimensions {missing}")
            positions = [sel_index[d] for d in dims]
            cardinalities = schema.cardinalities(dims)
            cuboids[key] = RankingCuboid.build(
                table.pool,
                dims,
                cardinalities,
                grid,
                (
                    (tuple(row[p] for p in positions), tid, bid)
                    for row, tid, bid in zip(sel_rows, tids, bids)
                ),
                scale_override=pseudo_scale_override,
                compress=compress,
            )
        return cls(grid, base_table, cuboids, block_size)

    # ------------------------------------------------------------------
    # covering cuboids (Section 4.2.1)
    # ------------------------------------------------------------------
    def covering_cuboids(self, query_dims: Sequence[str]) -> list[RankingCuboid]:
        """The minimum covering set MS for a query's selection dimensions.

        Max step: keep candidate cuboids whose dims are subsets of the
        query dims and maximal among such.  Min step: the smallest
        sub-family whose union equals the query dims (exact search for
        small candidate sets, greedy beyond that).  A query with no
        selection dimensions returns the empty list — the executor then
        reads base blocks directly.
        """
        wanted = frozenset(query_dims)
        if not wanted:
            return []
        candidates = [key for key in self.cuboids if key <= wanted]
        if not candidates:
            raise CubeError(f"no materialized cuboid covers any of {sorted(wanted)}")
        covered = frozenset().union(*candidates)
        if covered != wanted:
            raise CubeError(
                f"dimensions {sorted(wanted - covered)} are not materialized "
                "in any cuboid"
            )
        maximal = [
            key for key in candidates
            if not any(key < other for other in candidates)
        ]
        chosen = _minimum_cover(maximal, wanted)
        return [self.cuboids[key] for key in chosen]

    def cuboid(self, dims: Sequence[str]) -> RankingCuboid:
        """The cuboid materialized exactly on ``dims``."""
        try:
            return self.cuboids[frozenset(dims)]
        except KeyError:
            raise CubeError(f"no cuboid on dimensions {tuple(dims)}") from None

    # ------------------------------------------------------------------
    # cache invalidation hooks (serving layer)
    # ------------------------------------------------------------------
    def add_invalidation_listener(self, listener) -> None:
        """Subscribe a shared cache to this cube's maintenance events.

        ``listener(cuboid_names)`` is called with the names of every
        cuboid of this cube whenever the maintenance paths absorb new
        tuples (:meth:`refresh_delta`) — conservatively, since a delta
        append changes what the *complete* answer for any cached cell is,
        even though the materialized tid lists themselves are immutable.
        :class:`repro.serve.cache.PseudoBlockCache.invalidate_cuboids` is
        the canonical listener.
        """
        self._invalidation_listeners.append(listener)

    def remove_invalidation_listener(self, listener) -> None:
        try:
            self._invalidation_listeners.remove(listener)
        except ValueError:
            pass

    @property
    def cuboid_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.cuboids.values())

    def _notify_invalidation(self) -> None:
        names = self.cuboid_names
        for listener in list(self._invalidation_listeners):
            listener(names)

    # Listeners are live serving-layer caches; a persisted snapshot must
    # not capture them (they hold locks and process-local state).
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_invalidation_listeners"] = []
        return state

    # ------------------------------------------------------------------
    # incremental maintenance (delta store)
    # ------------------------------------------------------------------
    def refresh_delta(self, table: Table) -> int:
        """Absorb tuples appended to ``table`` since the build/last refresh.

        Returns how many new tuples entered the delta store.  Queries see
        them immediately (the executor merges the delta); the
        materialization itself is untouched.
        """
        schema = table.schema
        sel_dims = sorted(self._delta_selection_dims)
        sel_pos = {d: schema.position(d) for d in sel_dims}
        rank_pos = {d: schema.position(d) for d in self.grid.dims}
        absorbed = 0
        for tid in range(self.watermark, table.num_rows):
            row = table.fetch_by_tid(tid)
            selections = {d: int(row[p]) for d, p in sel_pos.items()}
            rankings = {d: float(row[p]) for d, p in rank_pos.items()}
            self._delta.append((tid, selections, rankings))
            absorbed += 1
        self.watermark = table.num_rows
        if absorbed:
            self._notify_invalidation()
        return absorbed

    def delta_matches(
        self, selections: dict
    ) -> list[tuple[int, dict]]:
        """Delta tuples satisfying a query's selection conditions.

        Returns ``(tid, {ranking dim: value})`` pairs; the executor scores
        them alongside block-retrieved tuples.
        """
        matches = []
        for tid, sel_values, rank_values in self._delta:
            if all(sel_values.get(d) == v for d, v in selections.items()):
                matches.append((tid, rank_values))
        return matches

    @property
    def delta_size(self) -> int:
        return len(self._delta)

    def needs_rebuild(self, max_delta_fraction: float = 0.1) -> bool:
        """Whether the delta store has outgrown the materialization."""
        return self.delta_size > max_delta_fraction * max(1, self.base_table.num_tuples)

    # ------------------------------------------------------------------
    # meta information M
    # ------------------------------------------------------------------
    @property
    def bin_boundaries(self) -> dict[str, tuple[float, ...]]:
        return dict(zip(self.grid.dims, self.grid.boundaries))

    @property
    def scale_factors(self) -> dict[str, int]:
        return {cuboid.name: cuboid.scale_factor for cuboid in self.cuboids.values()}

    @property
    def ranking_dims(self) -> tuple[str, ...]:
        return self.grid.dims

    @property
    def size_in_bytes(self) -> int:
        cuboid_bytes = sum(c.size_in_bytes for c in self.cuboids.values())
        return self.base_table.size_in_bytes + cuboid_bytes

    def describe(self) -> str:
        """Human-readable inventory of the materialization."""
        lines = [
            f"RankingCube over N=({', '.join(self.grid.dims)}), "
            f"B={self.block_size}, bins={self.grid.bins_per_dim}",
            f"  base block table: {self.base_table.num_tuples} tuples, "
            f"{self.base_table.size_in_bytes} bytes",
        ]
        for key in sorted(self.cuboids, key=lambda k: (len(k), sorted(k))):
            cuboid = self.cuboids[key]
            lines.append(
                f"  cuboid {cuboid.name}: sf={cuboid.scale_factor}, "
                f"{cuboid.num_entries} entries, {cuboid.size_in_bytes} bytes"
            )
        return "\n".join(lines)


def full_cube_sets(selection_dims: Sequence[str]) -> list[tuple[str, ...]]:
    """Every non-empty subset of the selection dimensions (full cube)."""
    dims = tuple(selection_dims)
    sets: list[tuple[str, ...]] = []
    for size in range(1, len(dims) + 1):
        sets.extend(itertools.combinations(dims, size))
    return sets


def _minimum_cover(candidates: list[frozenset], wanted: frozenset) -> list[frozenset]:
    """Smallest sub-family of ``candidates`` whose union is ``wanted``.

    Exhaustive for small candidate families (the common case: one fragment
    cuboid per query dimension), greedy set cover otherwise.
    """
    if len(candidates) <= 12:
        for size in range(1, len(candidates) + 1):
            for combo in itertools.combinations(candidates, size):
                if frozenset().union(*combo) == wanted:
                    return list(combo)
    # greedy fallback
    remaining = set(wanted)
    chosen: list[frozenset] = []
    pool = list(candidates)
    while remaining:
        best = max(pool, key=lambda key: len(key & remaining))
        if not best & remaining:
            raise CubeError(f"cannot cover dimensions {sorted(remaining)}")
        chosen.append(best)
        remaining -= best
        pool.remove(best)
    return chosen
