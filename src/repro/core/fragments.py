"""Ranking fragments (Section 4): semi-materialization for high dimensionality.

A full ranking cube materializes ``2^S - 1`` cuboids — hopeless for the
S >= 10 regime the paper targets.  Ranking fragments instead split the
selection dimensions into groups of size ``F`` and materialize a full cube
*within* each group, sharing one base block table.  Space grows linearly in
S (Lemma 2) while any query is answerable by intersecting tid lists from a
small covering set of cuboids (semi-online computation).

This module provides the grouping policy, the Lemma 2 space estimate, and
:class:`FragmentedRankingCube`, a :class:`RankingCube` whose cuboid family
is the union of the per-fragment full cubes.  Query execution is the
ordinary :class:`~repro.core.executor.RankingCubeExecutor`: the covering
cuboid selection and the intersecting retrieve step already implement
Section 4.2.
"""

from __future__ import annotations

from typing import Sequence

from ..relational.table import Table
from .blocks import BlockGrid
from .cube import DEFAULT_BLOCK_SIZE, CubeError, RankingCube, full_cube_sets
from .partition import Partitioner


def evenly_partition(dims: Sequence[str], fragment_size: int) -> list[tuple[str, ...]]:
    """Split ``dims`` into ``ceil(S / F)`` contiguous fragments (Section 4.1).

    The last fragment may be smaller when ``F`` does not divide ``S``.
    """
    if fragment_size < 1:
        raise ValueError(f"fragment size must be >= 1, got {fragment_size}")
    dims = tuple(dims)
    if not dims:
        raise ValueError("cannot fragment an empty dimension list")
    return [
        dims[start:start + fragment_size]
        for start in range(0, len(dims), fragment_size)
    ]


def fragment_cuboid_sets(
    fragments: Sequence[Sequence[str]],
) -> list[tuple[str, ...]]:
    """All cuboid dimension sets materialized by a fragment family."""
    sets: list[tuple[str, ...]] = []
    seen: set[frozenset] = set()
    for fragment in fragments:
        for dims in full_cube_sets(fragment):
            key = frozenset(dims)
            if key not in seen:
                seen.add(key)
                sets.append(dims)
    return sets


def estimated_fragment_space(
    num_selection_dims: int,
    num_ranking_dims: int,
    num_tuples: int,
    fragment_size: int,
) -> int:
    """Lemma 2's space bound, in tuple-entry units.

    ``O((S / F) * T * (2^F - 1) + (R + 2) * T)``: each of the ``S/F``
    fragments holds ``2^F - 1`` cuboids of ``T`` entries each, plus the base
    block table of ``T`` rows over ``R`` ranking dims, a bid and a tid.
    """
    num_fragments = -(-num_selection_dims // fragment_size)
    cuboid_entries = num_fragments * num_tuples * (2 ** fragment_size - 1)
    base_entries = (num_ranking_dims + 2) * num_tuples
    return cuboid_entries + base_entries


def realized_fragment_entries(
    fragments: Sequence[Sequence[str]],
    num_ranking_dims: int,
    num_tuples: int,
) -> int:
    """Entry count of a *concrete* fragment family, in Lemma 2's units.

    :func:`estimated_fragment_space` assumes every fragment has exactly
    ``F`` dimensions, but real groupings are uneven: even partitioning
    leaves a short tail when ``F`` does not divide ``S``, and workload
    co-occurrence grouping packs fragments by affinity, not size.  Each
    fragment of size ``f`` stores ``(2^f - 1) * T`` entries, so the
    realized total can undercut the nominal bound — the advisor compares
    designs by this number, not the bound.
    """
    cuboid_entries = sum(
        num_tuples * (2 ** len(fragment) - 1) for fragment in fragments
    )
    base_entries = (num_ranking_dims + 2) * num_tuples
    return cuboid_entries + base_entries


class FragmentedRankingCube(RankingCube):
    """A ranking cube materialized as ranking fragments."""

    def __init__(
        self,
        grid: BlockGrid,
        base_table,
        cuboids,
        block_size: int,
        fragments: Sequence[tuple[str, ...]],
    ):
        super().__init__(grid, base_table, cuboids, block_size)
        self.fragments = list(fragments)

    @classmethod
    def build_fragments(
        cls,
        table: Table,
        fragment_size: int = 2,
        ranking_dims: Sequence[str] | None = None,
        selection_dims: Sequence[str] | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        partitioner: Partitioner | None = None,
        fragments: Sequence[Sequence[str]] | None = None,
        compress: bool = False,
        workers: int = 1,
        tracer=None,
    ) -> "FragmentedRankingCube":
        """Materialize ranking fragments over a loaded table.

        ``fragments`` overrides the even grouping when the caller wants a
        workload-aware grouping (Section 6 discusses such criteria).
        ``workers`` parallelizes the grouping phase across the whole
        fragment family at once (the per-fragment cuboids are just more
        specs for the sharded builder — see :mod:`repro.core.parallel`).
        """
        schema = table.schema
        if selection_dims is None:
            selection_dims = schema.selection_names
        if fragments is None:
            fragments = evenly_partition(selection_dims, fragment_size)
        else:
            fragments = [tuple(f) for f in fragments]
            flattened = [dim for fragment in fragments for dim in fragment]
            if len(set(flattened)) != len(flattened):
                raise CubeError("fragments must be disjoint")
            missing = set(selection_dims) - set(flattened)
            if missing:
                raise CubeError(f"fragments omit selection dimensions {sorted(missing)}")
        base = RankingCube.build(
            table,
            ranking_dims=ranking_dims,
            selection_dims=selection_dims,
            block_size=block_size,
            partitioner=partitioner,
            cuboid_sets=fragment_cuboid_sets(fragments),
            compress=compress,
            workers=workers,
            tracer=tracer,
        )
        return cls(
            base.grid, base.base_table, base.cuboids, base.block_size, fragments
        )

    @property
    def fragment_size(self) -> int:
        return max(len(fragment) for fragment in self.fragments)

    def fragment_of(self, dim: str) -> tuple[str, ...]:
        """The fragment containing a selection dimension."""
        for fragment in self.fragments:
            if dim in fragment:
                return fragment
        raise CubeError(f"dimension {dim!r} is in no fragment")

    def covering_fragment_count(self, query_dims: Sequence[str]) -> int:
        """How many distinct fragments a query's dimensions touch."""
        return len({self.fragment_of(dim) for dim in query_dims})
