"""The ranking cube: the paper's primary contribution.

Geometry partitioning (Section 3.1.2), pseudo blocks and rank-aware
cuboids (Section 3.1.3), the progressive query algorithm (Section 3.2),
and ranking fragments for high-dimensional data (Section 4).
"""

from .advisor import FragmentDesign, Recommendation, recommend_fragments
from .anyk import AnyKCursor
from .base_table import BaseBlockTable
from .blocks import BlockGrid, GridError
from .chains import ChainStore
from .compaction import (
    COMPACTION_FAULT_POINTS,
    CompactionError,
    CompactionReport,
    CubeCompactor,
)
from .compressed import CompressedChainStore, decode_tid_list, encode_tid_list
from .cube import (
    DEFAULT_BLOCK_SIZE,
    CubeError,
    CubeSnapshot,
    RankingCube,
    full_cube_sets,
)
from .cuboid import CuboidError, RankingCuboid
from .estimate import (
    CostEstimate,
    estimate_baseline_cost,
    estimate_cube_cost,
    estimate_qualifying,
)
from .executor import (
    ExecutorTrace,
    ProgressiveSearch,
    QueryAbortedError,
    QueryPlan,
    RankingCubeExecutor,
)
from .fragments import (
    FragmentedRankingCube,
    estimated_fragment_space,
    evenly_partition,
    fragment_cuboid_sets,
)
from .hybrid import HybridExecutor
from .parallel import CuboidSpec, compute_build_groups, shard_ranges
from .grouping import (
    cooccurrence_counts,
    cooccurrence_grouping,
    expected_covering_fragments,
)
from .multigrid import MultiCubeRouter
from .partition import (
    EquiDepthPartitioner,
    EquiWidthPartitioner,
    Partitioner,
    QuantileGridPartitioner,
    bins_for,
    grid_from_boundaries,
)
from .pseudo import PseudoBlockMap, scale_factor
from .reverse import (
    ReverseTopKQuery,
    ReverseTopKResult,
    count_preceding,
    reverse_topk,
    simplex_grid_family,
)

__all__ = [
    "AnyKCursor",
    "BaseBlockTable",
    "BlockGrid",
    "COMPACTION_FAULT_POINTS",
    "ChainStore",
    "CompactionError",
    "CompactionReport",
    "CostEstimate",
    "CompressedChainStore",
    "CubeCompactor",
    "CubeError",
    "CubeSnapshot",
    "CuboidError",
    "CuboidSpec",
    "DEFAULT_BLOCK_SIZE",
    "EquiDepthPartitioner",
    "EquiWidthPartitioner",
    "ExecutorTrace",
    "FragmentDesign",
    "FragmentedRankingCube",
    "GridError",
    "HybridExecutor",
    "MultiCubeRouter",
    "Partitioner",
    "ProgressiveSearch",
    "PseudoBlockMap",
    "QueryAbortedError",
    "QueryPlan",
    "QuantileGridPartitioner",
    "RankingCube",
    "RankingCubeExecutor",
    "RankingCuboid",
    "Recommendation",
    "ReverseTopKQuery",
    "ReverseTopKResult",
    "bins_for",
    "count_preceding",
    "reverse_topk",
    "simplex_grid_family",
    "compute_build_groups",
    "decode_tid_list",
    "encode_tid_list",
    "estimate_baseline_cost",
    "estimate_cube_cost",
    "estimate_qualifying",
    "cooccurrence_counts",
    "cooccurrence_grouping",
    "estimated_fragment_space",
    "evenly_partition",
    "expected_covering_fragments",
    "fragment_cuboid_sets",
    "full_cube_sets",
    "grid_from_boundaries",
    "recommend_fragments",
    "scale_factor",
    "shard_ranges",
]
