"""Top-k query execution over a ranking cube (Section 3.2).

The algorithm runs the paper's four steps:

* **Pre-process** — pick the covering cuboid(s) for the query's selection
  dimensions (a single cuboid for a full cube; several, intersected, for
  ranking fragments — Section 4.2) and the base block table.
* **Search** — maintain the frontier ``H`` of candidate base blocks ordered
  by their lower bound ``f(bid)`` (minimum of the convex ranking function
  over the block's box).  The first candidate contains the global minimizer
  of ``f``; subsequent candidates come from Lemma 1's neighbor expansion.
* **Retrieve** — ``get_pseudo_block`` on each covering cuboid for the
  candidate bid's pid; results are buffered per pseudo block so sibling
  bids cost no further I/O; with several covering cuboids the tid lists are
  intersected (the semi-online computation of Section 4.2.2).
* **Evaluate** — ``get_base_block`` fetches real ranking values for the
  qualifying tids; exact scores feed the top-k list ``S``.

The loop stops when ``S_k <= S_unseen``, i.e. the k-th best seen score is
no worse than the best possible score of any unexamined block.

Beyond the paper, the executor composes with the serving layer
(:mod:`repro.serve`): it accepts an injected shared
:class:`~repro.serve.cache.PseudoBlockCache` (decoded tid lists reused
*across* queries, not just within one) and a shared
:class:`~repro.serve.cache.BoundMemo` (``f(bid)`` computed once per
ranking-function/grid pair across a whole query stream).  Both are
optional; a bare executor behaves exactly as the paper describes.
"""

from __future__ import annotations

import heapq
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..obs.tracing import Tracer, maybe_span
from ..relational.query import QueryResult, ResultRow, TopKQuery
from ..relational.table import Table
from ..storage.device import StorageError
from ..vector.kernels import (
    apply_selection,
    block_bounds,
    eval_scores,
    gather_tids,
    topk_select,
)
from ..vector.layout import ColumnarBlock
from .cube import CubeError, RankingCube
from .cuboid import RankingCuboid

#: Reusable inert context for untraced executions (stateless, shareable).
_NULL_CM = nullcontext()


def _measured(tracer: Tracer | None, span):
    """Attribute a block's watched-metric deltas to ``span`` when tracing."""
    return tracer.measure(span) if tracer is not None else _NULL_CM


class QueryAbortedError(StorageError):
    """A top-k query hit an unrecoverable storage fault mid-execution.

    Retries below the executor absorb transient faults; when they run out
    (or on-disk damage persists), the executor aborts with this error
    rather than a random traceback.  It is *partial-result-aware*: the
    best-first candidates scored before the fault are attached, ranked, so
    an any-time caller can degrade gracefully — but they are explicitly
    **not** a correct top-k answer (unexamined blocks may hold better
    tuples).

    Attributes
    ----------
    partial_rows:
        The top-k heap's contents at abort time, best score first.
    blocks_accessed:
        Actual block fetches issued before the fault.
    cause:
        The underlying typed storage error.
    """

    def __init__(
        self,
        message: str,
        *,
        partial_rows: list[ResultRow],
        blocks_accessed: int,
        cause: StorageError,
    ):
        super().__init__(message)
        self.partial_rows = partial_rows
        self.blocks_accessed = blocks_accessed
        self.cause = cause

    def __reduce__(self):
        # The default exception reduce replays ``cls(*args)`` and loses the
        # keyword-only payload: unpickling would raise TypeError.  Aborts
        # cross process boundaries in the sharded serving tier, so this
        # error is wire format and must round-trip with its payload.
        return (
            _rebuild_query_aborted,
            (str(self), self.partial_rows, self.blocks_accessed, self.cause),
        )


def _rebuild_query_aborted(message, partial_rows, blocks_accessed, cause):
    """Unpickle hook for :class:`QueryAbortedError` (kwargs-only ctor)."""
    return QueryAbortedError(
        message,
        partial_rows=partial_rows,
        blocks_accessed=blocks_accessed,
        cause=cause,
    )


@dataclass
class ExecutorTrace:
    """Optional per-query diagnostics (used by tests and ablations).

    The retrieve-step counters attribute each pseudo-block request to the
    layer that answered it, so ablations can credit I/O savings correctly:

    * ``pseudo_block_fetches`` — cold fetches that read and decoded pages,
    * ``pseudo_block_buffer_hits`` — answered by this query's own buffer,
    * ``shared_cache_hits`` — answered by the cross-query
      :class:`~repro.serve.cache.PseudoBlockCache`.

    ``bound_memo_hits`` counts frontier bounds served by the shared
    :class:`~repro.serve.cache.BoundMemo` instead of being minimized anew.
    """

    candidate_bids: list[int] = field(default_factory=list)
    pseudo_block_fetches: int = 0
    pseudo_block_buffer_hits: int = 0
    shared_cache_hits: int = 0
    bound_memo_hits: int = 0
    base_block_reads: int = 0
    empty_cells_skipped: int = 0
    frontier_peak: int = 0
    #: vector-path counters (zero on the row path): blocks scored through
    #: the batched kernels, and evaluate-step base blocks answered by the
    #: shared columnar cache instead of a fetch + decode
    vector_blocks: int = 0
    columnar_cache_hits: int = 0

    def cache_attribution(self) -> dict[str, int]:
        """Retrieve-step requests by answering layer (for ablation tables)."""
        return {
            "cold_fetches": self.pseudo_block_fetches,
            "query_buffer_hits": self.pseudo_block_buffer_hits,
            "shared_cache_hits": self.shared_cache_hits,
        }


@dataclass(frozen=True)
class _TraceBase:
    """Counter values at query start, so span attribution stays correct
    when a caller hands the executor an already-used :class:`ExecutorTrace`."""

    pseudo_block_fetches: int = 0
    pseudo_block_buffer_hits: int = 0
    shared_cache_hits: int = 0
    bound_memo_hits: int = 0
    base_block_reads: int = 0
    empty_cells_skipped: int = 0
    vector_blocks: int = 0
    columnar_cache_hits: int = 0

    @staticmethod
    def capture(trace: ExecutorTrace | None) -> "_TraceBase | None":
        if trace is None:
            return None
        return _TraceBase(
            pseudo_block_fetches=trace.pseudo_block_fetches,
            pseudo_block_buffer_hits=trace.pseudo_block_buffer_hits,
            shared_cache_hits=trace.shared_cache_hits,
            bound_memo_hits=trace.bound_memo_hits,
            base_block_reads=trace.base_block_reads,
            empty_cells_skipped=trace.empty_cells_skipped,
            vector_blocks=trace.vector_blocks,
            columnar_cache_hits=trace.columnar_cache_hits,
        )


@dataclass(frozen=True)
class QueryPlan:
    """The executor's resolved strategy for one query (see ``explain``)."""

    covering_cuboids: tuple[str, ...]
    intersection_required: bool
    start_bid: int
    start_bound: float
    grid_blocks: int
    scale_factors: tuple[int, ...]
    delta_tuples: int
    cache_layers: tuple[str, ...] = ()

    def describe(self) -> str:
        lines = [
            "RankingCube plan:",
            f"  covering cuboids: {', '.join(self.covering_cuboids) or '(none: base blocks only)'}",
        ]
        if self.intersection_required:
            lines.append("  retrieve step intersects tid lists across cuboids")
        lines.append(
            f"  start block: bid={self.start_bid} (bound {self.start_bound:.4f}) "
            f"of {self.grid_blocks} blocks"
        )
        if self.cache_layers:
            lines.append(f"  cache layers: {', '.join(self.cache_layers)}")
        if self.delta_tuples:
            lines.append(f"  + merge {self.delta_tuples} delta tuple(s)")
        return "\n".join(lines)


class RankingCubeExecutor:
    """Executes :class:`TopKQuery` objects against a :class:`RankingCube`.

    Parameters
    ----------
    cube:
        The materialized ranking cube (full or fragment family).
    relation:
        The original relation; only needed when queries project attributes
        beyond tid and score.
    buffer_pseudo_blocks:
        The paper's retrieve-step buffering.  Disabling it (ablation) makes
        every bid request re-read its pseudo block.
    pseudo_cache:
        Optional shared :class:`~repro.serve.cache.PseudoBlockCache`
        consulted between the per-query buffer and a cold fetch.  The
        executor only *inserts* fully decoded blocks, so an aborted query
        cannot poison it.
    bound_memo:
        Optional shared :class:`~repro.serve.cache.BoundMemo` for frontier
        lower bounds.
    use_vector:
        Route the evaluate step and frontier-bound computation through
        the batched columnar kernels of :mod:`repro.vector` instead of
        the per-tuple row loops.  **Answers are byte-identical either
        way** (the kernels' bitwise contract, property-tested in
        ``tests/properties/test_vector_equivalence.py``); only the work
        shape changes.  NumPy accelerates the kernels when available; a
        pure-stdlib fallback keeps the switch valid without it.
    columnar_cache:
        Optional shared :class:`~repro.serve.cache.ColumnarBlockCache`:
        decoded columnar base blocks reused across queries (vector path
        only).  Logical counters (``blocks_accessed`` etc.) are
        unaffected by hits — the cache saves page I/O and decode work,
        attributed in ``trace.columnar_cache_hits``.

    The executor keeps no per-query state on ``self``, so one instance may
    be shared by concurrent threads **provided** its buffer pool is the
    thread-safe read path (see ``repro.storage.buffer``) — this is how
    :class:`repro.serve.QueryService` drives it.
    """

    def __init__(
        self,
        cube: RankingCube,
        relation: Table | None = None,
        buffer_pseudo_blocks: bool = True,
        pseudo_cache=None,
        bound_memo=None,
        use_vector: bool = False,
        columnar_cache=None,
    ):
        self.cube = cube
        self.relation = relation
        self.buffer_pseudo_blocks = buffer_pseudo_blocks
        self.pseudo_cache = pseudo_cache
        self.bound_memo = bound_memo
        self.use_vector = bool(use_vector)
        self.columnar_cache = columnar_cache
        # registry-counter memo for the executor.vector.* series, keyed
        # by registry identity (the cached Counter pins its registry, so
        # the id cannot be recycled while the entry lives)
        self._vector_counter_memo: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    def execute(
        self,
        query: TopKQuery,
        trace: ExecutorTrace | None = None,
        tracer: Tracer | None = None,
    ) -> QueryResult:
        """Run one top-k query and return its ordered answer.

        ``trace`` collects per-query counters (cheap, always available);
        ``tracer`` additionally builds an observability span tree — plan →
        search (retrieve/evaluate aggregates) → delta-merge — with every
        retrieve attributed to the layer that answered it and per-span
        watched-metric I/O deltas (see :mod:`repro.obs.tracing`).  Span
        I/O attribution is exact for serial execution.
        """
        if tracer is not None and trace is None:
            trace = ExecutorTrace()
        attrs = dict(
            k=query.k,
            selections=dict(sorted(query.selections.items())),
            ranking=",".join(query.ranking.dims),
        )
        if self.use_vector:
            # only stamped in vector mode, so row-path golden traces keep
            # their exact historical attribute set
            attrs["executor"] = "vector"
        with maybe_span(tracer, "query", **attrs) as query_span:
            return self._execute_traced(query, trace, tracer, query_span)

    def open_search(
        self,
        query: TopKQuery,
        trace: ExecutorTrace | None = None,
        tracer: Tracer | None = None,
    ) -> "AnyKCursor":
        """Open a resumable any-k cursor over this executor.

        Unlike :meth:`execute`, nothing is computed eagerly beyond the
        delta merge: the returned cursor pins the current cube snapshot
        and yields results in certified ``(score, tid)`` rank order —
        past ``query.k``, on demand — via
        :meth:`~repro.core.anyk.AnyKCursor.next_batch`.
        """
        from .anyk import AnyKCursor

        return AnyKCursor(self, query, trace=trace, tracer=tracer)

    def _execute_traced(
        self,
        query: TopKQuery,
        trace: ExecutorTrace | None,
        tracer: Tracer | None,
        query_span,
    ) -> QueryResult:
        # One consistent snapshot per query: every read below (covering
        # cuboids, base blocks, delta) resolves against this view, so a
        # concurrent compaction swap cannot hand us a mix of old and new
        # state mid-execution.
        state = self.cube.snapshot()
        grid = state.grid
        fn = query.ranking

        # --- pre-process (plan): covering cuboids + start block ----------
        with maybe_span(tracer, "plan") as plan_span:
            missing = [d for d in fn.dims if d not in grid.dims]
            if missing:
                raise CubeError(f"ranking dimensions {missing} not in the cube")
            if self.relation is not None:
                query.validate_against(self.relation.schema)
            with maybe_span(tracer, "cuboid_selection") as cuboid_span:
                covering = state.covering_cuboids(query.selection_names)
                if cuboid_span is not None:
                    cuboid_span.attributes["covering"] = tuple(
                        c.name for c in covering
                    )
                    cuboid_span.add("covering_cuboids", len(covering))
            cell_values = [
                tuple(query.selections[d] for d in cuboid.dims) for cuboid in covering
            ]
            positions = grid.project(fn.dims)
            memo = (
                self.bound_memo.group(fn, grid) if self.bound_memo is not None else None
            )
            start_bid = self._start_block(query, grid)
            if plan_span is not None:
                plan_span.add("grid_blocks", grid.num_blocks)
                plan_span.attributes["start_bid"] = start_bid

        # --- search state -------------------------------------------------
        trace_base = _TraceBase.capture(trace)
        # top-k seen scores as a max-heap of (-score, -tid); see _push_topk
        # for the tie-breaking contract
        topk: list[tuple[float, int]] = []
        # frontier of candidate blocks as a min-heap of (f(bid), bid)
        frontier: list[tuple[float, int]] = [
            (self._block_bound(grid, start_bid, fn, positions, memo, trace), start_bid)
        ]
        inserted = {start_bid}
        # per-cuboid buffer: pid -> {bid: [tid, ...]}
        buffers: list[dict[int, dict[int, list[int]]]] = [{} for _ in covering]

        result = QueryResult()
        try:
            with maybe_span(tracer, "block_frontier") as search_span:
                retrieve_span = (
                    search_span.child("retrieve") if search_span is not None else None
                )
                # the vector path renames the aggregate so traces make the
                # executing engine explicit (and goldens can diff on it)
                evaluate_name = "evaluate_batch" if self.use_vector else "evaluate"
                evaluate_span = (
                    search_span.child(evaluate_name)
                    if search_span is not None
                    else None
                )
                while frontier:
                    s_unseen = frontier[0][0]
                    # strict <: a block whose lower bound *ties* the kth score
                    # may still hold an equal-score tuple with a smaller tid,
                    # which the tie-breaking contract requires us to keep
                    if len(topk) >= query.k and -topk[0][0] < s_unseen:
                        break
                    _bound, bid = heapq.heappop(frontier)
                    result.candidates_examined += 1
                    if trace is not None:
                        trace.candidate_bids.append(bid)

                    with _measured(tracer, retrieve_span):
                        qualifying = self._retrieve(
                            bid, covering, cell_values, buffers, result, trace
                        )
                    if qualifying is None or qualifying:
                        with _measured(tracer, evaluate_span):
                            self._evaluate(
                                state.base_table, bid, qualifying, fn, positions,
                                query.k, topk, result, trace,
                            )
                    elif trace is not None:
                        trace.empty_cells_skipped += 1

                    self._expand_neighbors(
                        grid, bid, fn, positions, memo, trace, frontier, inserted
                    )
                    if trace is not None:
                        trace.frontier_peak = max(trace.frontier_peak, len(frontier))
                if search_span is not None:
                    assert trace is not None and trace_base is not None
                    search_span.add_many(
                        candidates_examined=result.candidates_examined,
                        frontier_peak=trace.frontier_peak,
                        empty_cells_skipped=(
                            trace.empty_cells_skipped - trace_base.empty_cells_skipped
                        ),
                        bound_memo_hits=(
                            trace.bound_memo_hits - trace_base.bound_memo_hits
                        ),
                    )
                    retrieve_span.add_many(
                        cold_fetches=(
                            trace.pseudo_block_fetches
                            - trace_base.pseudo_block_fetches
                        ),
                        query_buffer_hits=(
                            trace.pseudo_block_buffer_hits
                            - trace_base.pseudo_block_buffer_hits
                        ),
                        shared_cache_hits=(
                            trace.shared_cache_hits - trace_base.shared_cache_hits
                        ),
                    )
                    evaluate_counts = dict(
                        base_block_reads=(
                            trace.base_block_reads - trace_base.base_block_reads
                        ),
                        tuples_examined=result.tuples_examined,
                    )
                    if self.use_vector:
                        # vector-only keys: row-path goldens never grow them
                        evaluate_counts["vector_blocks"] = (
                            trace.vector_blocks - trace_base.vector_blocks
                        )
                        evaluate_counts["columnar_cache_hits"] = (
                            trace.columnar_cache_hits
                            - trace_base.columnar_cache_hits
                        )
                    evaluate_span.add_many(**evaluate_counts)

            # Merge the cube's delta store: tuples appended after the build
            # are held in memory and scored against every query (see
            # RankingCube.refresh_delta).
            with maybe_span(tracer, "delta_merge") as delta_span:
                delta_examined = 0
                for tid, rank_values in state.delta_matches(
                    dict(query.selections)
                ):
                    point = [rank_values[d] for d in fn.dims]
                    score = fn.score(point)
                    result.tuples_examined += 1
                    delta_examined += 1
                    _push_topk(topk, query.k, score, tid)
                if delta_span is not None:
                    delta_span.add("delta_tuples_examined", delta_examined)
        except StorageError as exc:
            raise QueryAbortedError(
                f"query aborted after {result.blocks_accessed} block "
                f"fetch(es): {exc}",
                partial_rows=_rows_from_heap(topk),
                blocks_accessed=result.blocks_accessed,
                cause=exc,
            ) from exc

        rows = _rows_from_heap(topk)
        if query.projection:
            rows = [self._project(row, query) for row in rows]
        result.rows = rows
        if query_span is not None:
            query_span.add_many(
                blocks_accessed=result.blocks_accessed,
                candidates_examined=result.candidates_examined,
                tuples_examined=result.tuples_examined,
                rows_returned=len(rows),
            )
        return result

    def explain(self, query: TopKQuery) -> "QueryPlan":
        """Describe how the query would execute, without executing it.

        Resolves the covering cuboids, the start block, and the frontier's
        initial bound — the pre-process step plus the first search step —
        and packages them with cost-model context (block/cell geometry)
        plus the caching layers the retrieve step will consult.
        """
        state = self.cube.snapshot()
        grid = state.grid
        fn = query.ranking
        missing = [d for d in fn.dims if d not in grid.dims]
        if missing:
            raise CubeError(f"ranking dimensions {missing} not in the cube")
        covering = state.covering_cuboids(query.selection_names)
        positions = grid.project(fn.dims)
        start_bid = self._start_block(query, grid)
        layers = []
        if self.buffer_pseudo_blocks:
            layers.append("per-query pseudo-block buffer")
        if self.pseudo_cache is not None:
            layers.append("shared pseudo-block cache")
        if self.bound_memo is not None and fn.cache_key() is not None:
            layers.append("shared bound memo")
        return QueryPlan(
            covering_cuboids=tuple(c.name for c in covering),
            intersection_required=len(covering) > 1,
            start_bid=start_bid,
            start_bound=self._block_bound(grid, start_bid, fn, positions, None, None),
            grid_blocks=grid.num_blocks,
            scale_factors=tuple(c.scale_factor for c in covering),
            delta_tuples=state.delta_size,
            cache_layers=tuple(layers),
        )

    # ------------------------------------------------------------------
    # the four steps
    # ------------------------------------------------------------------
    def _start_block(self, query: TopKQuery, grid) -> int:
        """Block containing the global minimizer of the ranking function."""
        fn = query.ranking
        positions = grid.project(fn.dims)
        lower, upper = grid.full_box()
        sub_lower = [lower[p] for p in positions]
        sub_upper = [upper[p] for p in positions]
        minimizer = fn.argmin_over_box(sub_lower, sub_upper)
        point = list(lower)  # unranked dimensions start at the grid's low edge
        for value, p in zip(minimizer, positions):
            point[p] = value
        return grid.locate(point)

    def _block_bound(
        self,
        grid,
        bid: int,
        fn,
        positions: tuple[int, ...],
        memo: dict[int, float] | None = None,
        trace: ExecutorTrace | None = None,
    ) -> float:
        """``f(bid)``: minimum of the ranking function over the block box.

        With a shared bound memo attached, each (function, grid, bid)
        minimization happens once across the whole query stream.
        """
        if memo is not None:
            cached = self.bound_memo.lookup(memo, bid)
            if cached is not None:
                if trace is not None:
                    trace.bound_memo_hits += 1
                return cached
        lower, upper = grid.sub_box(bid, positions)
        bound = fn.min_over_box(lower, upper)
        if memo is not None:
            self.bound_memo.store(memo, bid, bound)
        return bound

    def _retrieve(
        self,
        bid: int,
        covering: list[RankingCuboid],
        cell_values: list[tuple[int, ...]],
        buffers: list[dict[int, dict[int, list[int]]]],
        result: QueryResult,
        trace: ExecutorTrace | None,
    ) -> set[int] | None:
        """Qualifying tids in ``bid``; ``None`` means "every tuple" (no
        selection conditions — the base block table answers directly).

        Three layers answer, cheapest first: the query's own buffer, the
        shared cross-query cache, a cold fetch.  Only the cold fetch costs
        I/O — it is the only path that bumps ``result.blocks_accessed``.
        Decoded maps are shared read-only between the layers; nothing here
        may mutate them.
        """
        if not covering:
            return None
        qualifying: set[int] | None = None
        for cuboid, values, buffer in zip(covering, cell_values, buffers):
            pid = cuboid.pid_of_bid(bid)
            by_bid = buffer.get(pid)
            if by_bid is None:
                # The epoch makes entries cached against a compacted-away
                # cuboid generation unreachable even if the invalidation
                # notification itself is lost (e.g. a crash between the
                # swap and the notify) — lookups with the new epoch simply
                # miss.  Name stays first: invalidate_cuboids matches on
                # key[0].
                cache_key = (cuboid.name, cuboid.epoch, values, pid)
                cached = (
                    self.pseudo_cache.get(cache_key)
                    if self.pseudo_cache is not None
                    else None
                )
                if cached is not None:
                    by_bid = cached
                    if trace is not None:
                        trace.shared_cache_hits += 1
                else:
                    by_bid = cuboid.decode_pseudo_block(values, pid)
                    result.blocks_accessed += 1
                    if trace is not None:
                        trace.pseudo_block_fetches += 1
                    if self.pseudo_cache is not None:
                        # insert only after a complete decode: a fault that
                        # aborts the query raises before reaching here, so
                        # the shared cache never sees partial state
                        self.pseudo_cache.put(cache_key, by_bid)
                if self.buffer_pseudo_blocks:
                    buffer[pid] = by_bid
            elif trace is not None:
                trace.pseudo_block_buffer_hits += 1
            tids = set(by_bid.get(bid, ()))
            qualifying = tids if qualifying is None else (qualifying & tids)
            if not qualifying:
                return set()
        assert qualifying is not None
        return qualifying

    def _evaluate(
        self,
        base_table,
        bid: int,
        qualifying: set[int] | None,
        fn,
        positions: tuple[int, ...],
        k: int,
        topk: list[tuple[float, int]],
        result: QueryResult,
        trace: ExecutorTrace | None,
    ) -> None:
        """Fetch the base block, score qualifying tuples, update top-k."""
        for score, tid in self._score_block(
            base_table, bid, qualifying, fn, positions, result, trace, k=k
        ):
            _push_topk(topk, k, score, tid)

    def _score_block(
        self,
        base_table,
        bid: int,
        qualifying: set[int] | None,
        fn,
        positions: tuple[int, ...],
        result: QueryResult,
        trace: ExecutorTrace | None,
        k: int | None = None,
    ) -> list[tuple[float, int]]:
        """Fetch one base block and return its qualifying ``(score, tid)``s.

        The evaluate step minus the top-k update: the serial path pushes
        the pairs into its own heap, while :class:`ProgressiveSearch`
        streams them out to a global merger that owns the heap.

        ``k`` lets the vector path truncate to the block-local best ``k``
        (sorted, ties tid-ascending) — answer-preserving, since at most
        the best ``k`` of any one block can reach a global top-k.  The
        row path ignores it and returns every pair, unordered, exactly as
        before.
        """
        if self.use_vector:
            return self._score_block_vector(
                base_table, bid, qualifying, fn, positions, result, trace, k
            )
        records = base_table.get_base_block(bid)
        result.blocks_accessed += 1
        if trace is not None:
            trace.base_block_reads += 1
        scored: list[tuple[float, int]] = []
        for tid, values in records:
            if qualifying is not None and tid not in qualifying:
                continue
            point = [values[p] for p in positions]
            score = fn.score(point)
            result.tuples_examined += 1
            scored.append((score, tid))
        return scored

    def _score_block_vector(
        self,
        base_table,
        bid: int,
        qualifying: set[int] | None,
        fn,
        positions: tuple[int, ...],
        result: QueryResult,
        trace: ExecutorTrace | None,
        k: int | None,
    ) -> list[tuple[float, int]]:
        """Columnar form of :meth:`_score_block` (same logical counters).

        The block is decoded once into struct-of-arrays form (possibly
        served by the shared columnar cache), the selection applied as a
        batched membership test, and every qualifying tuple scored in one
        ``eval_batch`` call.  ``blocks_accessed``/``base_block_reads``
        move in lockstep with the row path *even on a columnar cache
        hit* — the hit saves physical work, not a logical block visit —
        which is what keeps full :class:`QueryResult` equality exact.
        """
        block = self._columnar_block(base_table, bid, trace)
        result.blocks_accessed += 1
        if trace is not None:
            trace.base_block_reads += 1
        if len(block) == 0:
            return []
        indices = apply_selection(block, qualifying)
        tids = gather_tids(block, indices)
        n = len(tids)
        if n == 0:
            return []
        scores = eval_scores(fn, block, positions, indices)
        result.tuples_examined += n
        if trace is not None:
            trace.vector_blocks += 1
        self._bump_vector_counters(base_table, n)
        return topk_select(scores, tids, k)

    def _columnar_block(
        self, base_table, bid: int, trace: ExecutorTrace | None
    ) -> ColumnarBlock:
        """Decode ``bid`` to columnar form, via the shared cache if any.

        Cache keys pair the table's never-reused ``uid`` with the bid, so
        blocks decoded from a compacted-away table generation can never
        satisfy a lookup against its replacement.
        """
        cache = self.columnar_cache
        key = (base_table.uid, bid)
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                if trace is not None:
                    trace.columnar_cache_hits += 1
                return cached
        block = ColumnarBlock.from_records(
            base_table.get_base_block(bid), base_table.grid.num_dims
        )
        if cache is not None:
            cache.put(key, block)
        return block

    def _bump_vector_counters(self, base_table, tuples: int) -> None:
        """Advance the ``executor.vector.*`` registry series, if metered."""
        registry = getattr(base_table.pool, "registry", None)
        if registry is None:
            return
        counters = self._vector_counter_memo.get(id(registry))
        if counters is None:
            counters = (
                registry.counter("executor.vector.blocks"),
                registry.counter("executor.vector.tuples"),
            )
            self._vector_counter_memo[id(registry)] = counters
        counters[0].inc()
        counters[1].inc(tuples)

    def _expand_neighbors(
        self,
        grid,
        bid: int,
        fn,
        positions: tuple[int, ...],
        memo: dict[int, float] | None,
        trace: ExecutorTrace | None,
        frontier: list[tuple[float, int]],
        inserted: set[int],
    ) -> None:
        """Push ``bid``'s unseen neighbors onto the frontier (Lemma 1).

        The vector path memo-checks every fresh neighbor first, then
        computes the remaining bounds in one :func:`block_bounds` batch.
        Push order differs from the row path's one-at-a-time loop, but
        heap *pop* order is deterministic for a given entry set (bounds
        are pure functions of bid and ``(bound, bid)`` entries are
        unique), so the search examines identical block sequences.
        """
        fresh = [nb for nb in grid.neighbors(bid) if nb not in inserted]
        if not fresh:
            return
        inserted.update(fresh)
        if not self.use_vector:
            for neighbor in fresh:
                heapq.heappush(
                    frontier,
                    (
                        self._block_bound(grid, neighbor, fn, positions, memo, trace),
                        neighbor,
                    ),
                )
            return
        pending: list[int] = []
        for neighbor in fresh:
            cached = (
                self.bound_memo.lookup(memo, neighbor) if memo is not None else None
            )
            if cached is not None:
                if trace is not None:
                    trace.bound_memo_hits += 1
                heapq.heappush(frontier, (cached, neighbor))
            else:
                pending.append(neighbor)
        if not pending:
            return
        for neighbor, bound in zip(
            pending, block_bounds(grid, pending, fn, positions)
        ):
            if memo is not None:
                self.bound_memo.store(memo, neighbor, bound)
            heapq.heappush(frontier, (bound, neighbor))

    def _project(self, row: ResultRow, query: TopKQuery) -> ResultRow:
        """Fetch projected attribute values from the original relation."""
        if self.relation is None:
            raise CubeError("projection requires the original relation")
        record = self.relation.fetch_by_tid(row.tid)
        schema = self.relation.schema
        values = tuple(
            record[schema.position(name)] for name in (query.projection or ())
        )
        return ResultRow(tid=row.tid, score=row.score, values=values)


#: Sentinel: ``ProgressiveSearch(block_k=...)`` default, meaning
#: "truncate each block's scores to the query's k" (the top-k fast path).
_BLOCK_K_QUERY = object()


class ProgressiveSearch:
    """Stepwise form of the progressive search, shared by every consumer
    that needs the frontier as a *stream* rather than a finished top-k:
    scatter-gather shard merging, any-k enumeration cursors
    (:class:`repro.core.anyk.AnyKCursor`), and reverse top-k counting
    (:mod:`repro.core.reverse`).

    Wraps one executor + query as a stream of scored candidates: each
    :meth:`step` pops the frontier's best block, runs retrieve + evaluate
    on it, expands its neighbors (Lemma 1), and returns the ``(score,
    tid)`` pairs found there.  Between steps, :attr:`best_unseen` is a
    certified lower bound on the score of every tuple this search has not
    yet returned — except the delta store, whose rows carry no block
    bound and must be merged unconditionally via :meth:`delta_rows`.

    A global merger (see :class:`repro.serve.sharded.ShardedQueryService`)
    can therefore stop stepping a shard as soon as its k-th best seen
    score is strictly better than the shard's ``best_unseen``: any tuple
    still unreturned scores at least ``best_unseen`` and can never
    displace a kept entry under the tid-ascending tie-breaking contract.
    Stepping *more* than necessary only changes amortization, never the
    answer — scoring is deterministic and :func:`_push_topk` is
    insertion-order independent.

    ``block_k`` controls per-block truncation: the default keeps only
    each block's best ``query.k`` scores (sufficient for a top-k answer,
    and what the vector engine's batched ``topk_select`` exploits), while
    ``block_k=None`` returns *every* qualifying tuple of each block —
    required by consumers that rank past k (enumeration) or count
    arbitrary predecessors (reverse top-k).

    The search pins one consistent cube snapshot for its whole lifetime
    — later appends or compaction epoch bumps never leak in — and keeps
    all state on itself, so many instances may run concurrently over one
    (thread-safe) executor.  Storage faults propagate from :meth:`step`
    as typed :class:`~repro.storage.device.StorageError`\\ s; the search
    object stays consistent and the caller decides whether to abort the
    whole query.
    """

    def __init__(
        self,
        executor: RankingCubeExecutor,
        query: TopKQuery,
        trace: ExecutorTrace | None = None,
        block_k: int | None | object = _BLOCK_K_QUERY,
    ):
        self.executor = executor
        self.query = query
        self.trace = trace
        self.block_k = query.k if block_k is _BLOCK_K_QUERY else block_k
        state = executor.cube.snapshot()
        grid = state.grid
        fn = query.ranking
        missing = [d for d in fn.dims if d not in grid.dims]
        if missing:
            raise CubeError(f"ranking dimensions {missing} not in the cube")
        if executor.relation is not None:
            query.validate_against(executor.relation.schema)
        self._state = state
        self._grid = grid
        self._fn = fn
        self._covering = state.covering_cuboids(query.selection_names)
        self._cell_values = [
            tuple(query.selections[d] for d in cuboid.dims)
            for cuboid in self._covering
        ]
        self._positions = grid.project(fn.dims)
        self._memo = (
            executor.bound_memo.group(fn, grid)
            if executor.bound_memo is not None
            else None
        )
        start_bid = executor._start_block(query, grid)
        self._frontier: list[tuple[float, int]] = [
            (
                executor._block_bound(
                    grid, start_bid, fn, self._positions, self._memo, trace
                ),
                start_bid,
            )
        ]
        self._inserted = {start_bid}
        self._buffers: list[dict[int, dict[int, list[int]]]] = [
            {} for _ in self._covering
        ]
        self.result = QueryResult()

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """True once every block of this search's grid has been examined."""
        return not self._frontier

    @property
    def best_unseen(self) -> float:
        """Lower bound on every not-yet-returned block tuple (inf when done)."""
        return self._frontier[0][0] if self._frontier else float("inf")

    def step(self) -> list[tuple[float, int]]:
        """Examine the frontier's best block; return its scored tuples.

        Returns an empty list when the block held no qualifying tuples
        *or* the search is exhausted — check :attr:`exhausted` to tell
        the two apart.
        """
        if not self._frontier:
            return []
        executor = self.executor
        _bound, bid = heapq.heappop(self._frontier)
        self.result.candidates_examined += 1
        if self.trace is not None:
            self.trace.candidate_bids.append(bid)
        qualifying = executor._retrieve(
            bid, self._covering, self._cell_values, self._buffers,
            self.result, self.trace,
        )
        scored: list[tuple[float, int]] = []
        if qualifying is None or qualifying:
            scored = executor._score_block(
                self._state.base_table, bid, qualifying, self._fn,
                self._positions, self.result, self.trace, k=self.block_k,
            )
        elif self.trace is not None:
            self.trace.empty_cells_skipped += 1
        executor._expand_neighbors(
            self._grid, bid, self._fn, self._positions, self._memo,
            self.trace, self._frontier, self._inserted,
        )
        if self.trace is not None:
            self.trace.frontier_peak = max(
                self.trace.frontier_peak, len(self._frontier)
            )
        return scored

    def delta_rows(self) -> list[tuple[float, int]]:
        """Scored matches from the snapshot's delta store (no block bound)."""
        rows: list[tuple[float, int]] = []
        for tid, rank_values in self._state.delta_matches(
            dict(self.query.selections)
        ):
            point = [rank_values[d] for d in self._fn.dims]
            score = self._fn.score(point)
            self.result.tuples_examined += 1
            rows.append((score, tid))
        return rows


def _push_topk(topk: list[tuple[float, int]], k: int, score: float, tid: int) -> None:
    """Offer one scored tuple to the top-k max-heap.

    Entries are ``(-score, -tid)`` so the heap root is the *worst* kept
    tuple — largest score, and among equal scores the largest tid.  A new
    tuple displaces the root when it is strictly better under the same
    order, so ties on the k-th score break toward the smaller tid: the
    retained set and the presented order (see :func:`_unpack_topk`) agree
    on tid-ascending tie-breaking, the contract documented on
    :class:`~repro.relational.query.QueryResult`.
    """
    entry = (-score, -tid)
    if len(topk) < k:
        heapq.heappush(topk, entry)
    elif entry > topk[0]:
        heapq.heapreplace(topk, entry)


def _unpack_topk(topk: list[tuple[float, int]]) -> list[tuple[float, int]]:
    """(score, tid) pairs, best first, from the internal max-heap form."""
    return sorted((-neg_score, -neg_tid) for neg_score, neg_tid in topk)


# Re-expose with the right orientation for ResultRow construction.
def _rows_from_heap(topk: list[tuple[float, int]]) -> list[ResultRow]:
    return [ResultRow(tid=tid, score=score) for score, tid in _unpack_topk(topk)]
