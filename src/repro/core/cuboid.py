"""Ranking cuboids (Section 3.1.3).

A cuboid is named by its selection dimensions (the ranking dimensions are
fixed by the cube's base block table): cuboid ``A1 A2 | N1 N2`` organizes
``(tid, bid)`` pairs by cell key ``(a1, a2, pid)``, where *pid* is the
pseudo block id produced by scaling the base grid so each cell fills a
physical block.

The cuboid exposes the paper's first data access method,
``get_pseudo_block``: one call returns every ``(tid, bid)`` in a cell, and
the query executor buffers the result so later requests for sibling bids of
the same pseudo block cost no further I/O.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..storage.buffer import BufferPool
from ..storage.pages import RecordCodec
from .blocks import BlockGrid
from .pseudo import PseudoBlockMap, scale_factor


class CuboidError(Exception):
    """Raised for cuboid construction/access misuse."""


#: Pseudo blocks at or above this many pairs decode through the batched
#: group-by in :meth:`RankingCuboid.decode_pseudo_block`; below it the
#: plain dict loop wins (NumPy's per-call overhead dominates tiny cells).
_VECTOR_DECODE_THRESHOLD = 64


class RankingCuboid:
    """One materialized cuboid of a ranking cube.

    Parameters
    ----------
    pool:
        Buffer pool of the shared device.
    dims:
        Selection dimensions of this cuboid, in key order.
    cardinalities:
        Matching domain sizes (drive the pseudo-block scale factor).
    grid:
        The base block grid shared with the cube's base block table.
    """

    def __init__(
        self,
        pool: BufferPool,
        dims: Sequence[str],
        cardinalities: Sequence[int],
        grid: BlockGrid,
        scale_override: int | None = None,
        compress: bool = False,
        epoch: int = 0,
    ):
        if len(dims) != len(cardinalities):
            raise CuboidError("dims and cardinalities must align")
        if not dims:
            raise CuboidError(
                "a cuboid needs at least one selection dimension; apex "
                "queries read the base block table directly"
            )
        self.dims = tuple(dims)
        self.cardinalities = tuple(int(c) for c in cardinalities)
        self.grid = grid
        sf = (
            scale_factor(self.cardinalities, grid.num_dims)
            if scale_override is None
            else scale_override
        )
        self.pseudo = PseudoBlockMap(grid, sf)
        # local imports avoid a cycle at module load
        if compress:
            from .compressed import CompressedChainStore

            self._store = CompressedChainStore(pool)
        else:
            from .chains import ChainStore

            self._store = ChainStore(pool, RecordCodec("qi"))  # (tid, bid)
        self.compressed = compress
        self.access_count = 0
        #: maintenance generation: bumped each time compaction replaces
        #: this cuboid with a rebuilt one.  Part of serving-cache keys, so
        #: entries cached against an old generation can never satisfy a
        #: lookup against the new one — even if an invalidation
        #: notification is lost to a crash.
        self.epoch = int(epoch)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        pool: BufferPool,
        dims: Sequence[str],
        cardinalities: Sequence[int],
        grid: BlockGrid,
        rows: Iterable[tuple[tuple[int, ...], int, int]],
        scale_override: int | None = None,
        compress: bool = False,
    ) -> "RankingCuboid":
        """Materialize from ``(selection values, tid, bid)`` rows.

        ``selection values`` must already be projected to this cuboid's
        dimensions, in :attr:`dims` order.  ``scale_override`` replaces the
        computed pseudo-block scale factor (``1`` disables pseudo blocking
        entirely — the ablation of Section 3.1.3's design choice).
        """
        cuboid = cls(
            pool, dims, cardinalities, grid,
            scale_override=scale_override, compress=compress,
        )
        groups: dict[tuple, list[tuple[int, int]]] = {}
        for sel_values, tid, bid in rows:
            if len(sel_values) != len(cuboid.dims):
                raise CuboidError(
                    f"expected {len(cuboid.dims)} selection values, got {len(sel_values)}"
                )
            pid = cuboid.pseudo.pid_of_bid(bid)
            key = tuple(int(v) for v in sel_values) + (pid,)
            groups.setdefault(key, []).append((int(tid), int(bid)))
        cuboid._store.build(groups.items())
        return cuboid

    @classmethod
    def from_groups(
        cls,
        pool: BufferPool,
        dims: Sequence[str],
        cardinalities: Sequence[int],
        grid: BlockGrid,
        groups: dict[tuple, list[tuple[int, int]]],
        scale_override: int | None = None,
        compress: bool = False,
        epoch: int = 0,
    ) -> "RankingCuboid":
        """Materialize from an already-grouped ``cell key -> pairs`` map.

        Keys carry the full cell shape ``(sel values..., pid)`` and values
        the ``(tid, bid)`` pairs in tid order; the parallel builder and
        the compactor both produce exactly this.  The store layout is
        identical to :meth:`build`'s for equal map contents.
        """
        cuboid = cls(
            pool, dims, cardinalities, grid,
            scale_override=scale_override, compress=compress, epoch=epoch,
        )
        cuboid._store.build(groups.items())
        return cuboid

    # ------------------------------------------------------------------
    def cells(self):
        """Iterate ``(cell key, pairs)`` in key order (maintenance scans).

        Cell keys are ``(sel values..., pid)`` tuples; pairs are
        ``(tid, bid)``.  Unmetered for :attr:`access_count`.
        """
        for key, records in self._store.items():
            yield tuple(key), [(int(tid), int(bid)) for tid, bid in records]

    # ------------------------------------------------------------------
    def get_pseudo_block(
        self, sel_values: Sequence[int], pid: int
    ) -> list[tuple[int, int]]:
        """All ``(tid, bid)`` pairs in cell ``(sel_values..., pid)``.

        An absent cell returns an empty list: the directory probe still
        costs I/O but no block chain is read — the effect behind the
        high-cardinality robustness in Figure 8.
        """
        if len(sel_values) != len(self.dims):
            raise CuboidError(
                f"cuboid {self.name} takes {len(self.dims)} selection values"
            )
        self.access_count += 1
        key = tuple(int(v) for v in sel_values) + (int(pid),)
        return [(int(tid), int(bid)) for tid, bid in self._store.get(key)]

    def decode_pseudo_block(
        self, sel_values: Sequence[int], pid: int
    ) -> dict[int, list[int]]:
        """Pseudo block decoded to the retrieve step's working form.

        Groups :meth:`get_pseudo_block`'s ``(tid, bid)`` pairs by bid —
        the shape the executor's per-query buffer and the serving layer's
        shared :class:`~repro.serve.cache.PseudoBlockCache` both store.
        The grouping happens here so every caching layer shares one
        decoder (and pays it exactly once per cold fetch).
        """
        pairs = self.get_pseudo_block(sel_values, pid)
        by_bid: dict[int, list[int]] = {}
        if len(pairs) >= _VECTOR_DECODE_THRESHOLD:
            from ..vector.layout import numpy_or_none

            np = numpy_or_none()
            if np is not None:
                # batched group-by-bid: one stable sort + one split
                # instead of a per-pair dict probe.  Stability keeps each
                # bid's tid list in pair order, identical to the loop.
                arr = np.asarray(pairs, dtype=np.int64)
                order = np.argsort(arr[:, 1], kind="stable")
                bids = arr[order, 1]
                tids = arr[order, 0]
                cuts = np.nonzero(bids[1:] != bids[:-1])[0] + 1
                starts = [0, *cuts.tolist(), len(bids)]
                for i in range(len(starts) - 1):
                    lo, hi = starts[i], starts[i + 1]
                    by_bid[int(bids[lo])] = tids[lo:hi].tolist()
                return by_bid
        for tid, entry_bid in pairs:
            by_bid.setdefault(entry_bid, []).append(tid)
        return by_bid

    def pid_of_bid(self, bid: int) -> int:
        return self.pseudo.pid_of_bid(bid)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return "".join(self.dims) + "|" + "".join(self.grid.dims)

    @property
    def scale_factor(self) -> int:
        return self.pseudo.sf

    @property
    def num_entries(self) -> int:
        return self._store.num_records

    @property
    def size_in_bytes(self) -> int:
        return self._store.size_in_bytes

    def __repr__(self) -> str:
        return (
            f"RankingCuboid({self.name}, sf={self.scale_factor}, "
            f"entries={self.num_entries})"
        )
