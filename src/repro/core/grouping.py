"""Workload-aware fragment grouping (Section 6).

The even grouping of Section 4.1 ignores how queries actually combine
dimensions.  When a workload is available, dimensions that co-occur in
selection conditions should share a fragment so queries are covered by a
single cuboid instead of an online intersection (Figure 12 quantifies the
cost of each extra covering fragment).

:func:`cooccurrence_grouping` builds a weighted co-occurrence graph over
the selection dimensions and greedily merges the heaviest-edge groups
under the fragment-size cap — a standard greedy graph-partitioning
heuristic that is optimal when the workload's dimension sets are disjoint
cliques of size <= F.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence


def cooccurrence_counts(
    workload: Iterable[Sequence[str]],
) -> dict[frozenset, int]:
    """How often each dimension pair appears together in a query."""
    counts: dict[frozenset, int] = {}
    for dims in workload:
        for a, b in combinations(sorted(set(dims)), 2):
            key = frozenset((a, b))
            counts[key] = counts.get(key, 0) + 1
    return counts


def cooccurrence_grouping(
    dims: Sequence[str],
    workload: Iterable[Sequence[str]],
    fragment_size: int,
) -> list[tuple[str, ...]]:
    """Group ``dims`` into fragments of size <= ``fragment_size``.

    Greedy agglomeration: start from singletons, repeatedly merge the two
    groups joined by the heaviest total co-occurrence weight while the
    merged size fits.  Ties and zero-weight leftovers merge in dimension
    order, so the result is deterministic and every dimension is placed.
    """
    if fragment_size < 1:
        raise ValueError(f"fragment size must be >= 1, got {fragment_size}")
    dims = list(dims)
    if len(set(dims)) != len(dims):
        raise ValueError(f"duplicate dimensions: {dims}")
    workload = [list(q) for q in workload]
    unknown = {d for q in workload for d in q} - set(dims)
    if unknown:
        raise ValueError(f"workload uses unknown dimensions {sorted(unknown)}")
    counts = cooccurrence_counts(workload)

    groups: list[list[str]] = [[d] for d in dims]

    def weight_between(g1: list[str], g2: list[str]) -> int:
        return sum(
            counts.get(frozenset((a, b)), 0) for a in g1 for b in g2
        )

    while True:
        best = None
        best_weight = 0
        for i, j in combinations(range(len(groups)), 2):
            if len(groups[i]) + len(groups[j]) > fragment_size:
                continue
            weight = weight_between(groups[i], groups[j])
            if weight > best_weight:
                best, best_weight = (i, j), weight
        if best is None:
            break
        i, j = best
        groups[i] = groups[i] + groups[j]
        del groups[j]

    # pack zero-affinity leftovers to keep the fragment count minimal
    groups.sort(key=lambda g: (-len(g), g))
    packed: list[list[str]] = []
    for group in groups:
        for target in packed:
            if len(target) + len(group) <= fragment_size:
                target.extend(group)
                break
        else:
            packed.append(list(group))
    return [tuple(sorted(group)) for group in packed]


def expected_covering_fragments(
    fragments: Sequence[Sequence[str]],
    workload: Iterable[Sequence[str]],
) -> float:
    """Average number of fragments a workload's queries touch.

    The planning metric: lower is better (1.0 means every query is
    answered by a single fragment's cuboid, no intersection needed).
    """
    owner = {dim: i for i, fragment in enumerate(fragments) for dim in fragment}
    totals = 0
    count = 0
    for dims in workload:
        fragments_touched = {owner[d] for d in dims}
        totals += len(fragments_touched)
        count += 1
    return totals / count if count else 0.0
