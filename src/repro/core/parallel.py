"""Partitioned parallel cube construction.

The expensive part of :meth:`RankingCube.build` is pure CPU: locating
every tuple's base block and grouping ``(tid, bid)`` pairs under their
cuboid cell keys.  This module shards the scanned base table by tid range,
runs the per-shard grouping in a :class:`~concurrent.futures.ProcessPoolExecutor`
(workers return pickled partial group maps), and merges the partials in
shard order.

The merge preserves the *canonical layout guarantee*: a chain store's
on-page bytes depend only on the map ``key -> ordered record list`` (the
store sorts groups by key at build time), and per-key record order in the
serial build is scan order.  Sharding by contiguous tid ranges and
concatenating each key's partial lists in ascending shard order reproduces
scan order exactly, and all page allocation/writing still happens in the
parent process in the same sequence the serial build uses — so the device
image of a parallel build is byte-identical to the serial one (property
tested in ``tests/properties/test_build_equivalence.py``).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Sequence

from .blocks import BlockGrid
from .pseudo import PseudoBlockMap


def spawn_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context every worker process in this repo uses.

    ``spawn`` starts workers from a fresh interpreter instead of forking:
    a forked child inherits the parent's locks and threads mid-state (the
    serving layer runs background compactors and worker pools, so a fork
    taken at the wrong instant can deadlock on a held registry or buffer
    latch), while a spawned child re-imports and rebuilds its state from
    pickled payloads only.  Both the parallel cube builder and the
    process-per-shard serving tier boot workers from this context, so
    "what a worker sees" is always "what was explicitly shipped to it".
    """
    return multiprocessing.get_context("spawn")


@dataclass(frozen=True)
class CuboidSpec:
    """Grouping recipe for one cuboid, picklable for worker processes.

    ``positions`` index into the scanned selection row; ``scale`` is the
    already-resolved pseudo-block scale factor (workers apply policy-free
    arithmetic only, so parent and worker can never disagree on a pid).
    """

    dims: tuple[str, ...]
    positions: tuple[int, ...]
    scale: int


@dataclass
class ShardPartial:
    """One shard's contribution: per-bid base records + per-spec cell maps."""

    base_groups: dict
    cuboid_groups: list
    num_rows: int


@dataclass
class BuildGroups:
    """Merged grouping result handed back to the cube builder."""

    base_groups: dict
    cuboid_groups: list
    shards: int


def shard_ranges(count: int, shards: int) -> list[tuple[int, int]]:
    """Split ``[0, count)`` into up to ``shards`` contiguous ranges.

    Ranges are near-equal (first ``count % shards`` ranges take one extra
    element) and ascending, so concatenating per-shard results restores
    the original order.  Empty ranges are dropped.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, count) if count else 0
    if shards == 0:
        return []
    base, extra = divmod(count, shards)
    ranges = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def build_shard_partial(
    grid: BlockGrid,
    specs: Sequence[CuboidSpec],
    tids: Sequence[int],
    points: Sequence[Sequence[float]],
    sel_rows: Sequence[Sequence[int]],
) -> ShardPartial:
    """Group one shard's tuples: bid assignment + per-cuboid cell maps.

    Pure CPU over picklable inputs — this is the unit of work a pool
    worker runs.  Record coercions (``int`` tids/bids, ``float`` points)
    mirror the serial build exactly so merged groups are bit-compatible.
    """
    bids = grid.locate_many(points) if points else []
    base_groups: dict[int, list[tuple]] = {}
    for tid, point, bid in zip(tids, points, bids):
        base_groups.setdefault(bid, []).append((int(tid), *map(float, point)))

    # pid computation is per scale factor, not per cuboid: memoize bid->pid
    # once per distinct scale so wide cuboid families don't recompute it
    pid_maps: dict[int, dict[int, int]] = {}
    pseudo_by_scale = {
        spec.scale: PseudoBlockMap(grid, spec.scale) for spec in specs
    }

    cuboid_groups: list[dict[tuple, list[tuple[int, int]]]] = []
    for spec in specs:
        pseudo = pseudo_by_scale[spec.scale]
        pid_of = pid_maps.setdefault(spec.scale, {})
        groups: dict[tuple, list[tuple[int, int]]] = {}
        for row, tid, bid in zip(sel_rows, tids, bids):
            pid = pid_of.get(bid)
            if pid is None:
                pid = pseudo.pid_of_bid(bid)
                pid_of[bid] = pid
            key = tuple(int(row[p]) for p in spec.positions) + (pid,)
            groups.setdefault(key, []).append((int(tid), int(bid)))
        cuboid_groups.append(groups)
    return ShardPartial(
        base_groups=base_groups, cuboid_groups=cuboid_groups, num_rows=len(tids)
    )


def _shard_worker(payload) -> ShardPartial:
    """Top-level (picklable) pool entry point."""
    grid, specs, tids, points, sel_rows = payload
    return build_shard_partial(grid, specs, tids, points, sel_rows)


def merge_partials(
    partials: Sequence[ShardPartial], num_specs: int
) -> tuple[dict, list]:
    """Concatenate shard partials in shard order (== scan order)."""
    base_groups: dict[int, list[tuple]] = {}
    cuboid_groups: list[dict] = [{} for _ in range(num_specs)]
    for partial in partials:
        for bid, records in partial.base_groups.items():
            base_groups.setdefault(bid, []).extend(records)
        for merged, groups in zip(cuboid_groups, partial.cuboid_groups):
            for key, pairs in groups.items():
                merged.setdefault(key, []).extend(pairs)
    return base_groups, cuboid_groups


def compute_build_groups(
    grid: BlockGrid,
    specs: Sequence[CuboidSpec],
    tids: Sequence[int],
    points: Sequence[Sequence[float]],
    sel_rows: Sequence[Sequence[int]],
    workers: int = 1,
) -> BuildGroups:
    """Group the scanned relation for materialization, possibly in parallel.

    ``workers=1`` runs in-process (no pool, no pickling); ``workers>1``
    fans the tid range out over a process pool.  Both paths produce the
    same merged maps — the parallel one is the serial one, re-ordered only
    in wall-clock time.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    ranges = shard_ranges(len(tids), workers)
    if workers == 1 or len(ranges) <= 1:
        partial = build_shard_partial(grid, specs, tids, points, sel_rows)
        base_groups, cuboid_groups = merge_partials([partial], len(specs))
        return BuildGroups(base_groups, cuboid_groups, shards=1)

    from concurrent.futures import ProcessPoolExecutor

    payloads = [
        (grid, list(specs), tids[start:stop], points[start:stop], sel_rows[start:stop])
        for start, stop in ranges
    ]
    with ProcessPoolExecutor(
        max_workers=len(payloads), mp_context=spawn_context()
    ) as pool:
        partials = list(pool.map(_shard_worker, payloads))
    base_groups, cuboid_groups = merge_partials(partials, len(specs))
    return BuildGroups(base_groups, cuboid_groups, shards=len(payloads))
