"""Materialization advisor: choose fragment size and grouping.

Ranking fragments trade space for query coverage: larger fragments answer
more queries from a single cuboid (Figure 13) but cost exponentially more
space per fragment (Lemma 2's ``2^F - 1`` factor, Figure 11).  Given the
dataset shape, an optional query workload, and a space budget, the advisor
evaluates candidate designs and recommends the one minimizing expected
covering fragments within budget — the decision a DBA would otherwise make
by reading Section 5.3's charts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .fragments import evenly_partition, realized_fragment_entries
from .grouping import cooccurrence_grouping, expected_covering_fragments


@dataclass(frozen=True)
class FragmentDesign:
    """One evaluated candidate materialization."""

    fragment_size: int
    fragments: tuple[tuple[str, ...], ...]
    estimated_entries: int
    expected_covering: float
    within_budget: bool

    @property
    def num_cuboids(self) -> int:
        return sum(2 ** len(fragment) - 1 for fragment in self.fragments)


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict plus every candidate it considered."""

    best: FragmentDesign
    candidates: tuple[FragmentDesign, ...]

    def describe(self) -> str:
        lines = ["fragment design candidates (entries = realized fragment count):"]
        for design in self.candidates:
            marker = "->" if design is self.best else "  "
            budget = "" if design.within_budget else "  [over budget]"
            lines.append(
                f" {marker} F={design.fragment_size}: "
                f"{len(design.fragments)} fragments, "
                f"{design.num_cuboids} cuboids, "
                f"~{design.estimated_entries:,} entries, "
                f"avg covering {design.expected_covering:.2f}{budget}"
            )
        return "\n".join(lines)


def recommend_fragments(
    selection_dims: Sequence[str],
    num_ranking_dims: int,
    num_tuples: int,
    workload: Iterable[Sequence[str]] = (),
    max_fragment_size: int = 3,
    space_budget_entries: int | None = None,
) -> Recommendation:
    """Evaluate fragment sizes 1..``max_fragment_size`` and recommend one.

    Parameters
    ----------
    selection_dims / num_ranking_dims / num_tuples:
        Dataset shape (drives the Lemma 2 space estimate).
    workload:
        Optional query log as selection-dimension sets.  With a workload,
        each candidate uses co-occurrence grouping and is scored by the
        average covering-fragment count; without one, grouping is even and
        the score assumes Section 5's default 3-condition random queries.
    space_budget_entries:
        Cap on stored entries (tuple-entry units, as Lemma 2 counts them).
        ``None`` means unconstrained.  If no candidate fits, the smallest
        design — the candidate whose *realized* fragment family stores the
        fewest entries, ties broken toward smaller ``F`` — is returned
        with ``within_budget=False``.

    Each candidate's ``estimated_entries`` is
    :func:`~repro.core.fragments.realized_fragment_entries` of its actual
    fragment list, not the nominal Lemma 2 bound: uneven groupings (a
    short tail fragment, or workload-driven co-occurrence packing) store
    fewer entries than ``ceil(S/F) * (2^F - 1) * T`` predicts, and the
    budget check must count what would really be materialized.

    The recommendation minimizes ``(not within_budget, expected_covering,
    estimated_entries)`` — coverage first, space as tie-break.
    """
    selection_dims = tuple(selection_dims)
    if not selection_dims:
        raise ValueError("need at least one selection dimension")
    if max_fragment_size < 1:
        raise ValueError("max_fragment_size must be >= 1")
    workload = [tuple(q) for q in workload]

    candidates = []
    for fragment_size in range(1, min(max_fragment_size, len(selection_dims)) + 1):
        if workload:
            fragments = cooccurrence_grouping(selection_dims, workload, fragment_size)
            covering = expected_covering_fragments(fragments, workload)
        else:
            fragments = evenly_partition(selection_dims, fragment_size)
            covering = _default_covering_estimate(len(selection_dims), fragment_size)
        entries = realized_fragment_entries(
            fragments, num_ranking_dims, num_tuples
        )
        within = (
            space_budget_entries is None or entries <= space_budget_entries
        )
        candidates.append(
            FragmentDesign(
                fragment_size=fragment_size,
                fragments=tuple(tuple(f) for f in fragments),
                estimated_entries=entries,
                expected_covering=covering,
                within_budget=within,
            )
        )
    affordable = [d for d in candidates if d.within_budget]
    if affordable:
        best = min(
            affordable, key=lambda d: (d.expected_covering, d.estimated_entries)
        )
    else:
        # nothing fits: fall back to the least-space realized design,
        # ties toward smaller F (deterministic, and the cheaper rebuild)
        best = min(
            candidates, key=lambda d: (d.estimated_entries, d.fragment_size)
        )
    return Recommendation(best=best, candidates=tuple(candidates))


def _default_covering_estimate(num_dims: int, fragment_size: int, s: int = 3) -> float:
    """Expected fragments covering a random s-condition query.

    With fragments of size F over S dimensions, a uniformly random set of
    s distinct dimensions touches ``E = sum_g 1 - C(S-F_g, s)/C(S, s)``
    fragments (inclusion over each fragment's miss probability).
    """
    from math import comb

    s = min(s, num_dims)
    fragments = evenly_partition([str(i) for i in range(num_dims)], fragment_size)
    total = 0.0
    for fragment in fragments:
        size = len(fragment)
        miss = comb(num_dims - size, s) / comb(num_dims, s) if num_dims - size >= s else 0.0
        total += 1.0 - miss
    return total
