"""Pseudo blocks (Section 3.1.3).

Multi-dimensional cubing spreads each logical base block's tuples over many
cells, leaving cells far emptier than a physical block.  The pseudo block
re-aggregates: within a cuboid whose selection dimensions have
cardinalities ``c1..cs``, every ``sf`` adjacent bins per ranking dimension
merge into one pseudo block, with the scale factor chosen so a cell's
expected occupancy returns to the physical block size::

    (P / prod(c_j)) * sf ** R = P   =>   sf = ceil(prod(c_j) ** (1 / R))

The paper's Example 3 (cardinalities 2 and 2, R=2) gives ``sf = 2``, which
this module reproduces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .blocks import BlockGrid, GridError


def scale_factor(cardinalities: Sequence[int], num_ranking_dims: int) -> int:
    """Pseudo-block scale factor for a cuboid (Section 3.1.3)."""
    if num_ranking_dims <= 0:
        raise ValueError("need at least one ranking dimension")
    product = 1
    for cardinality in cardinalities:
        if cardinality < 1:
            raise ValueError(f"cardinality must be >= 1, got {cardinality}")
        product *= cardinality
    if product <= 1:
        return 1
    return max(1, math.ceil(product ** (1.0 / num_ranking_dims) - 1e-9))


@dataclass(frozen=True)
class PseudoBlockMap:
    """bid -> pid mapping for one cuboid.

    Merges every ``sf`` bins per dimension of ``grid``; pids enumerate the
    coarsened grid in the same row-major order as bids.
    """

    grid: BlockGrid
    sf: int

    def __post_init__(self) -> None:
        if self.sf < 1:
            raise GridError(f"scale factor must be >= 1, got {self.sf}")

    @property
    def pbins_per_dim(self) -> tuple[int, ...]:
        return tuple(-(-bins // self.sf) for bins in self.grid.bins_per_dim)

    @property
    def num_pseudo_blocks(self) -> int:
        total = 1
        for bins in self.pbins_per_dim:
            total *= bins
        return total

    def pid_of_bid(self, bid: int) -> int:
        """Pseudo block containing base block ``bid``."""
        coords = self.grid.coords_of(bid)
        pid = 0
        stride = 1
        for coord, pbins in zip(coords, self.pbins_per_dim):
            pid += (coord // self.sf) * stride
            stride *= pbins
        return pid

    def pcoords_of_pid(self, pid: int) -> tuple[int, ...]:
        if not 0 <= pid < self.num_pseudo_blocks:
            raise GridError(f"pid {pid} out of range [0, {self.num_pseudo_blocks})")
        coords = []
        for pbins in self.pbins_per_dim:
            coords.append(pid % pbins)
            pid //= pbins
        return tuple(coords)

    def bids_of_pid(self, pid: int) -> list[int]:
        """All base blocks merged into pseudo block ``pid``."""
        pcoords = self.pcoords_of_pid(pid)
        ranges = []
        for pcoord, bins in zip(pcoords, self.grid.bins_per_dim):
            start = pcoord * self.sf
            ranges.append(range(start, min(start + self.sf, bins)))
        bids: list[int] = []
        coords = [r.start for r in ranges]
        # odometer over the per-dimension coordinate ranges
        while True:
            bids.append(self.grid.bid_of(coords))
            for d in range(len(ranges)):
                coords[d] += 1
                if coords[d] < ranges[d].stop:
                    break
                coords[d] = ranges[d].start
            else:
                break
        return sorted(bids)

    @classmethod
    def for_cuboid(
        cls, grid: BlockGrid, cardinalities: Sequence[int]
    ) -> "PseudoBlockMap":
        """The map a cuboid with the given cell cardinalities should use."""
        return cls(grid, scale_factor(cardinalities, grid.num_dims))
