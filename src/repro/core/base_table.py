"""The base block table ``T`` of the ranking cube triple (Section 3.1.3).

Holds, per base block id, the tuples' real values on all ranking
dimensions: the target of the ``get_base_block`` access method.  The
original relation is decomposed into this table plus the selection
sub-database that the cuboids aggregate (Table 2 of the paper).
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..storage.buffer import BufferPool
from ..storage.pages import RecordCodec
from .blocks import BlockGrid
from .chains import ChainStore

#: Process-wide monotonic identity for base tables (see ``uid`` below).
_UIDS = itertools.count()


class BaseBlockTable:
    """bid -> [(tid, ranking values...)] storage with block-level access."""

    def __init__(self, pool: BufferPool, grid: BlockGrid):
        self.pool = pool
        self.grid = grid
        codec = RecordCodec("q" + "d" * grid.num_dims)
        self._store = ChainStore(pool, codec)
        self.access_count = 0
        #: Never-reused identity token.  The serving layer's columnar
        #: block cache keys entries by ``(uid, bid)``, so blocks decoded
        #: from a compacted-away table generation can never satisfy a
        #: lookup against its replacement (``id()`` could be recycled by
        #: the allocator; this cannot).
        self.uid = next(_UIDS)

    @classmethod
    def build(
        cls,
        pool: BufferPool,
        grid: BlockGrid,
        tids: Sequence[int],
        points: Sequence[Sequence[float]],
    ) -> tuple["BaseBlockTable", list[int]]:
        """Assign bids and materialize the table.

        Returns the table and the per-tuple bid assignment (the new block
        dimension ``B`` that the cuboids need).
        """
        if len(tids) != len(points):
            raise ValueError("tids and points must align")
        bids = grid.locate_many(points) if points else []
        groups: dict[int, list[tuple]] = {}
        for tid, point, bid in zip(tids, points, bids):
            groups.setdefault(bid, []).append((int(tid), *map(float, point)))
        return cls.from_groups(pool, grid, groups), bids

    @classmethod
    def from_groups(
        cls,
        pool: BufferPool,
        grid: BlockGrid,
        groups: dict[int, list[tuple]],
    ) -> "BaseBlockTable":
        """Materialize from an already-grouped ``bid -> records`` map.

        The parallel builder and the compactor both produce group maps
        up front; this path packs them with the exact store layout
        :meth:`build` uses (the chain store sorts groups by key, so the
        on-page image depends only on the map contents).
        """
        table = cls(pool, grid)
        table._store.build(((bid,), records) for bid, records in groups.items())
        return table

    # ------------------------------------------------------------------
    def blocks(self):
        """Iterate ``(bid, records)`` in key order (maintenance scans).

        Records carry the stored shape ``(tid, ranking values...)``;
        unmetered for :attr:`access_count` — this is a rebuild scan, not
        a query access.
        """
        for key, records in self._store.items():
            yield int(key[0]), [tuple(record) for record in records]

    # ------------------------------------------------------------------
    def get_base_block(self, bid: int) -> list[tuple[int, tuple[float, ...]]]:
        """Block-level access: all ``(tid, values)`` stored under ``bid``.

        This is the paper's second data access method; one call reads the
        block's full page chain.
        """
        self.access_count += 1
        return [
            (int(record[0]), tuple(record[1:]))
            for record in self._store.get((bid,))
        ]

    def block_tuple_count(self, bid: int) -> int:
        return len(self._store.get((bid,)))

    @property
    def num_tuples(self) -> int:
        return self._store.num_records

    @property
    def size_in_bytes(self) -> int:
        return self._store.size_in_bytes

    @property
    def dims(self) -> tuple[str, ...]:
        return self.grid.dims
