"""Compressed cuboid cell storage (Section 6's compression opportunity).

Cuboid cells hold ``(tid, bid)`` pairs; tids within a cell are stored
sorted, so gap + varint coding shrinks them dramatically, and bids —
small ints repeated across a pseudo block's few base blocks — also encode
in one or two bytes.  :class:`CompressedChainStore` exposes the same
build/get interface as :class:`~repro.core.chains.ChainStore` and plugs
into :class:`~repro.core.cuboid.RankingCuboid` via ``compress=True`` on
the cube builder.

The paper notes "a large portion of the space is used to store the cell
identifiers. We believe that the space requirement can be further
reduced"; this module quantifies that reduction (see the compression
ablation bench).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..storage.blobs import BlobStore
from ..storage.buffer import BufferPool
from ..storage.varint import (
    decode_uvarint,
    delta_decode_sorted,
    delta_encode_sorted,
    encode_uvarint,
)


def encode_tid_list(records: Sequence[tuple[int, int]]) -> bytes:
    """Compress ``(tid, bid)`` pairs: sorted-gap tids + varint bids."""
    ordered = sorted(records)
    blob = bytearray(delta_encode_sorted([tid for tid, _bid in ordered]))
    for _tid, bid in ordered:
        encode_uvarint(bid, blob)
    return bytes(blob)


def decode_tid_list(blob: bytes) -> list[tuple[int, int]]:
    """Inverse of :func:`encode_tid_list`."""
    tids, offset = delta_decode_sorted(blob)
    records = []
    for tid in tids:
        bid, offset = decode_uvarint(blob, offset)
        records.append((tid, bid))
    return records


class CompressedChainStore:
    """Drop-in ChainStore replacement storing compressed cell payloads."""

    def __init__(self, pool: BufferPool, codec=None, fanout: int = 32):
        # ``codec`` is accepted (and ignored) for interface parity with
        # ChainStore; the compressed layout fixes its own record format.
        self.pool = pool
        self._blobs = BlobStore(pool, fanout=fanout)
        self._num_records = 0

    # ------------------------------------------------------------------
    def build(self, groups: Iterable[tuple[tuple, Sequence[tuple]]]) -> None:
        encoded = []
        for key, records in groups:
            records = [(int(tid), int(bid)) for tid, bid in records]
            if not records:
                continue
            encoded.append((tuple(key), encode_tid_list(records)))
            self._num_records += len(records)
        self._blobs.build(encoded)

    def get(self, key: tuple) -> list[tuple[int, int]]:
        blob = self._blobs.get(tuple(key))
        if blob is None:
            return []
        return decode_tid_list(blob)

    def __contains__(self, key: tuple) -> bool:
        return tuple(key) in self._blobs

    def items(self) -> Iterable[tuple[tuple, list[tuple[int, int]]]]:
        """Iterate ``(key, records)`` in key order (maintenance scans)."""
        for key, _locator in self._blobs.directory.items():
            yield key, self.get(key)

    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        return self._num_records

    @property
    def num_chain_pages(self) -> int:
        return self._blobs.num_pages

    @property
    def directory(self):
        return self._blobs.directory

    @property
    def size_in_bytes(self) -> int:
        return self._blobs.size_in_bytes
