"""Reverse top-k queries over the ranking cube (Chester et al.).

A forward query asks "which k tuples are best for this ranking
function?"; the reverse query asks "**for which ranking functions** is
this tuple among the best k?" — the monomial-weight-vector variant of
Chester et al.'s *Indexing Reverse Top-k Queries*, generalized to any
family of convex ranking functions the cube can bound.

The cube answers it with the same geometry as the forward search, one
function at a time: the target's exact score ``t`` is a fixed threshold,
and a tuple *precedes* the target iff ``(score, tid) < (t, target_tid)``
under the usual tie-breaking order.  The Lemma-1 frontier visits blocks
in ascending bound order, so counting stops as soon as

* ``k`` predecessors were found (the target is out — early *reject*), or
* ``best_unseen > t`` (no unexamined block can contain a predecessor —
  early *accept*; note the *non-strict* continue condition
  ``best_unseen <= t``: a block whose bound ties ``t`` may still hold an
  equal-score, smaller-tid predecessor).

Blocks whose corner bound exceeds ``t`` are therefore never fetched —
the pruning the bench's ``pruning_effective`` gate measures.  The delta
store carries no bounds and is counted unconditionally first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..obs.tracing import Tracer, maybe_span
from ..ranking.functions import LinearFunction, RankingFunction
from ..relational.query import TopKQuery
from ..storage.device import StorageError
from .cube import CubeError
from .executor import (
    ExecutorTrace,
    ProgressiveSearch,
    QueryAbortedError,
    RankingCubeExecutor,
)

__all__ = [
    "ReverseTopKQuery",
    "ReverseTopKResult",
    "count_preceding",
    "reverse_topk",
    "simplex_grid_family",
]


@dataclass(frozen=True)
class ReverseTopKQuery:
    """For which of ``functions`` does tuple ``tid`` rank in the top-k?

    ``selections`` scope the competition exactly like a forward query's
    selections: only rows matching them compete, and a target that does
    not match them qualifies for no function at all.
    """

    tid: int
    k: int
    selections: Mapping[str, int]
    functions: tuple[RankingFunction, ...]

    def __post_init__(self):
        if self.tid < 0:
            raise CubeError(f"tid must be >= 0, got {self.tid}")
        if self.k < 1:
            raise CubeError(f"k must be >= 1, got {self.k}")
        object.__setattr__(self, "selections", dict(self.selections))
        object.__setattr__(self, "functions", tuple(self.functions))
        if not self.functions:
            raise CubeError("reverse top-k needs at least one function")


@dataclass
class ReverseTopKResult:
    """Answer plus the work accounting of one reverse top-k query.

    ``qualifying`` holds indices into the query's ``functions`` tuple,
    ascending; ``target_scores[i]`` is the target's exact score under
    ``functions[i]`` (always computed, even for non-qualifying
    functions).  ``target_matches`` is False when the target row fails
    the query selections — then nothing qualifies by definition.
    """

    qualifying: list[int] = field(default_factory=list)
    target_scores: list[float] = field(default_factory=list)
    target_matches: bool = True
    blocks_accessed: int = 0
    candidates_examined: int = 0
    tuples_examined: int = 0


def count_preceding(
    executor: RankingCubeExecutor,
    query: TopKQuery,
    t_score: float,
    tie_tid: int,
    trace: ExecutorTrace | None = None,
):
    """Count matching tuples with ``(score, tid) < (t_score, tie_tid)``,
    capped at ``query.k``.

    ``query.ranking`` is the candidate function and ``query.k`` the cap:
    once that many predecessors are seen the target provably misses the
    top-k and counting stops.  ``tie_tid`` is the tid threshold for
    score ties — shard-local callers pass the target's *rank position*
    within their tid order rather than the tid itself (any tuple at an
    earlier position precedes on ties).  Returns ``(count,
    search_result)`` where the result carries the usual counters.
    Storage faults propagate as raw ``StorageError``; callers wrap.
    """
    search = ProgressiveSearch(executor, query, trace, block_k=None)
    cap = query.k
    preceding = 0
    for score, tid in search.delta_rows():
        if (score, tid) < (t_score, tie_tid):
            preceding += 1
    while (
        preceding < cap
        and not search.exhausted
        and search.best_unseen <= t_score
    ):
        for score, tid in search.step():
            if (score, tid) < (t_score, tie_tid):
                preceding += 1
    return preceding, search.result


def reverse_topk(
    executor: RankingCubeExecutor,
    query: ReverseTopKQuery,
    trace: ExecutorTrace | None = None,
    tracer: Tracer | None = None,
) -> ReverseTopKResult:
    """Answer a reverse top-k query against one (unsharded) executor.

    Needs the executor's ``relation`` for the target point fetch.  Emits
    a ``reverse_query`` span with one ``reverse_function`` child per
    candidate function when ``tracer`` is given.  Storage faults abort
    the whole query as a typed
    :class:`~repro.core.executor.QueryAbortedError`.
    """
    relation = executor.relation
    if relation is None:
        raise CubeError("reverse top-k requires the executor's relation")
    if not 0 <= query.tid < relation.num_rows:
        raise CubeError(
            f"target tid {query.tid} outside relation "
            f"[0, {relation.num_rows})"
        )
    schema = relation.schema
    attrs = dict(
        tid=query.tid,
        k=query.k,
        selections=dict(sorted(query.selections.items())),
        functions=len(query.functions),
    )
    with maybe_span(tracer, "reverse_query", **attrs) as qspan:
        result = ReverseTopKResult()
        try:
            target = relation.fetch_by_tid(query.tid)
            matches = all(
                target[schema.position(name)] == value
                for name, value in query.selections.items()
            )
            result.target_matches = matches
            for index, fn in enumerate(query.functions):
                t_score = fn.score(
                    [target[schema.position(d)] for d in fn.dims]
                )
                result.target_scores.append(t_score)
                if not matches:
                    continue
                with maybe_span(
                    tracer, "reverse_function",
                    index=index, ranking=",".join(fn.dims),
                ) as fspan:
                    forward = TopKQuery(query.k, query.selections, fn)
                    preceding, sub = count_preceding(
                        executor, forward, t_score, query.tid, trace
                    )
                    result.blocks_accessed += sub.blocks_accessed
                    result.candidates_examined += sub.candidates_examined
                    result.tuples_examined += sub.tuples_examined
                    in_topk = preceding < query.k
                    if in_topk:
                        result.qualifying.append(index)
                    if fspan is not None:
                        fspan.add("preceding", preceding)
                        fspan.add("blocks_accessed", sub.blocks_accessed)
                        fspan.add(
                            "candidates_examined", sub.candidates_examined
                        )
                        fspan.add("in_topk", int(in_topk))
        except StorageError as exc:
            if isinstance(exc, QueryAbortedError):
                raise
            raise QueryAbortedError(
                f"reverse top-k aborted after "
                f"{result.blocks_accessed} block reads: {exc}",
                partial_rows=[],
                blocks_accessed=result.blocks_accessed,
                cause=exc,
            ) from exc
        if qspan is not None:
            qspan.add("qualifying", len(result.qualifying))
            qspan.add("blocks_accessed", result.blocks_accessed)
            qspan.add("candidates_examined", result.candidates_examined)
    return result


def simplex_grid_family(
    dims: Sequence[str], steps: int
) -> tuple[LinearFunction, ...]:
    """The monomial linear weight family: every non-negative integer
    composition of ``steps`` over ``dims``, normalized onto the weight
    simplex — ``steps + 1`` functions for two dims, C(steps+d-1, d-1)
    in general.  The canonical candidate set for reverse top-k over
    linear ranking (each vector is one hypothetical "user preference").
    """
    if steps < 1:
        raise CubeError(f"steps must be >= 1, got {steps}")
    dims = list(dims)
    if not dims:
        raise CubeError("simplex_grid_family needs at least one dim")
    functions = []
    for composition in _compositions(steps, len(dims)):
        weights = [part / steps for part in composition]
        functions.append(LinearFunction(dims, weights))
    return tuple(functions)


def _compositions(total: int, parts: int):
    """All non-negative integer tuples of length ``parts`` summing to
    ``total``, in lexicographic order (deterministic family order)."""
    if parts == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for rest in _compositions(total - head, parts - 1):
            yield (head,) + rest
