"""Block grids: the geometry partition underlying the ranking cube.

A :class:`BlockGrid` is the meta information ``M`` of Section 3.1.3: per
ranking dimension, a strictly increasing list of bin boundaries.  Base
blocks (Section 3.1.2) are the grid cells; block ids (*bid*) enumerate them
in row-major order with the first ranking dimension varying fastest, which
matches the paper's running example (the four blocks of the first row are
b1..b4, the next row b5..b8, ...).

The grid answers the geometric questions the query algorithm asks:

* which block contains a point (``locate``),
* what axis-aligned box a block covers (``box``),
* which blocks are (face-)adjacent to a block (``neighbors`` — the
  ``neighbor(b, c)`` relation of Lemma 1).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, Sequence


class GridError(Exception):
    """Raised for malformed grids or out-of-range block ids."""


@dataclass(frozen=True)
class BlockGrid:
    """An axis-aligned grid over the space of ranking dimensions.

    Parameters
    ----------
    dims:
        Names of the ranking dimensions, in storage order.
    boundaries:
        One strictly increasing boundary list per dimension; dimension ``d``
        with boundaries ``[e0, e1, .., eb]`` has ``b`` bins, bin ``i``
        covering ``[e_i, e_{i+1}]`` (closed boxes — the shared faces make
        Lemma 1's face-adjacent frontier sound for convex functions).
    """

    dims: tuple[str, ...]
    boundaries: tuple[tuple[float, ...], ...]

    def __post_init__(self) -> None:
        if len(self.dims) != len(self.boundaries):
            raise GridError("one boundary list per dimension required")
        if not self.dims:
            raise GridError("grid needs at least one dimension")
        for dim, edges in zip(self.dims, self.boundaries):
            if len(edges) < 2:
                raise GridError(f"dimension {dim!r} needs >= 2 boundaries")
            if any(a >= b for a, b in zip(edges, edges[1:])):
                raise GridError(f"boundaries of {dim!r} must be strictly increasing")

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def num_dims(self) -> int:
        return len(self.dims)

    @property
    def bins_per_dim(self) -> tuple[int, ...]:
        return tuple(len(edges) - 1 for edges in self.boundaries)

    @property
    def num_blocks(self) -> int:
        total = 1
        for bins in self.bins_per_dim:
            total *= bins
        return total

    def _strides(self) -> tuple[int, ...]:
        strides = []
        stride = 1
        for bins in self.bins_per_dim:
            strides.append(stride)
            stride *= bins
        return tuple(strides)

    # ------------------------------------------------------------------
    # bid <-> coordinates
    # ------------------------------------------------------------------
    def bid_of(self, coords: Sequence[int]) -> int:
        """Row-major block id of grid coordinates (dim 0 fastest)."""
        bins = self.bins_per_dim
        if len(coords) != len(bins):
            raise GridError(f"expected {len(bins)} coordinates, got {len(coords)}")
        bid = 0
        for coord, bin_count, stride in zip(coords, bins, self._strides()):
            if not 0 <= coord < bin_count:
                raise GridError(f"coordinate {coord} out of range [0, {bin_count})")
            bid += coord * stride
        return bid

    def coords_of(self, bid: int) -> tuple[int, ...]:
        """Grid coordinates of a block id."""
        if not 0 <= bid < self.num_blocks:
            raise GridError(f"bid {bid} out of range [0, {self.num_blocks})")
        coords = []
        for bins in self.bins_per_dim:
            coords.append(bid % bins)
            bid //= bins
        return tuple(coords)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def locate(self, point: Sequence[float]) -> int:
        """Block id of the bin containing ``point``.

        Points on an interior boundary go to the higher bin (half-open
        binning); points outside the grid clamp to the nearest edge bin, so
        every tuple gets a bid even if it strays past the boundaries the
        partitioner observed.
        """
        coords = []
        for value, edges in zip(point, self.boundaries):
            idx = bisect.bisect_right(edges, value) - 1
            idx = min(max(idx, 0), len(edges) - 2)
            coords.append(idx)
        return self.bid_of(coords)

    def locate_many(self, points) -> "list[int]":
        """Vectorized :meth:`locate` over many points.

        ``points`` is a sequence of R-tuples (or an ``(n, R)`` array);
        returns one bid per point with identical semantics to
        :meth:`locate` (half-open bins, clamped extremes).  Used by the
        bulk cube build, where per-tuple Python bisects dominate.
        """
        import numpy as np

        array = np.asarray(points, dtype=float)
        if array.ndim != 2 or array.shape[1] != self.num_dims:
            raise GridError(
                f"expected an (n, {self.num_dims}) point array, got {array.shape}"
            )
        bids = np.zeros(len(array), dtype=np.int64)
        stride = 1
        for d, edges in enumerate(self.boundaries):
            edges_arr = np.asarray(edges)
            coords = np.searchsorted(edges_arr, array[:, d], side="right") - 1
            np.clip(coords, 0, len(edges) - 2, out=coords)
            bids += coords * stride
            stride *= len(edges) - 1
        return [int(b) for b in bids]

    def box(self, bid: int) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Closed box ``(lower, upper)`` covered by a block."""
        coords = self.coords_of(bid)
        lower = tuple(
            edges[c] for c, edges in zip(coords, self.boundaries)
        )
        upper = tuple(
            edges[c + 1] for c, edges in zip(coords, self.boundaries)
        )
        return lower, upper

    def full_box(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """The box covering the whole grid."""
        return (
            tuple(edges[0] for edges in self.boundaries),
            tuple(edges[-1] for edges in self.boundaries),
        )

    def neighbors(self, bid: int) -> Iterator[int]:
        """Face-adjacent blocks (differ by one step along one dimension)."""
        coords = list(self.coords_of(bid))
        for d, bins in enumerate(self.bins_per_dim):
            for step in (-1, 1):
                coord = coords[d] + step
                if 0 <= coord < bins:
                    coords[d] = coord
                    yield self.bid_of(coords)
                    coords[d] = coords[d] - step

    def project(self, dims: Sequence[str]) -> tuple[int, ...]:
        """Positions of ``dims`` within the grid's dimension order."""
        positions = []
        for dim in dims:
            try:
                positions.append(self.dims.index(dim))
            except ValueError:
                raise GridError(f"grid has no dimension {dim!r}") from None
        return tuple(positions)

    def sub_box(
        self, bid: int, dim_positions: Sequence[int]
    ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """A block's box restricted to the given dimension positions.

        Used when a query ranks on a subset of the grid's dimensions
        (Figure 6's r < R setting): the lower bound of f over the block
        only involves the dimensions f reads.
        """
        lower, upper = self.box(bid)
        return (
            tuple(lower[p] for p in dim_positions),
            tuple(upper[p] for p in dim_positions),
        )
