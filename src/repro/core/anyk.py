"""Resumable any-k ranked enumeration over the ranking cube.

Ranked enumeration (Tziavelis et al., *Ranked Enumeration for Database
Queries*) generalizes top-k: instead of a fixed-size answer, the client
opens a cursor and pulls results one batch at a time, in certified rank
order, for as long as it wants — "give me the next 10" past any k.  The
cube geometry already supports this: :class:`ProgressiveSearch` streams
blocks in ascending ``f(bid)`` bound order, so a tuple may be *emitted*
as soon as its exact score is below the frontier's ``best_unseen`` bound
— no block that could beat it remains unexamined.

:class:`AnyKCursor` wraps a :class:`ProgressiveSearch` opened with
``block_k=None`` (no per-block truncation — enumeration runs past
``query.k``) plus a buffer heap of scored-but-uncertified tuples.  The
delta store is folded into the buffer at open time, since delta rows
carry no block bound.  Emission uses the *strict* test
``buffer_min < best_unseen``: a block whose bound ties the buffered
score could still contain an equal-score, smaller-tid tuple, and the
``(score, tid)`` tie-breaking contract documented on
:class:`~repro.relational.query.QueryResult` must hold at every depth.

Resumability contract: the cursor pins one cube snapshot at open time
(see :meth:`repro.core.cube.RankingCube.snapshot`) and enumerates that
snapshot to exhaustion.  Appends and compaction runs (cuboid epoch
bumps, delta drains, block-page swaps) that happen mid-enumeration
never change what the cursor returns — it answers as of its open point,
exactly like a single ``execute`` call does.
"""

from __future__ import annotations

import heapq

from ..obs.tracing import Tracer, maybe_span
from ..relational.query import ResultRow, TopKQuery
from ..storage.device import StorageError
from .executor import (
    ExecutorTrace,
    ProgressiveSearch,
    QueryAbortedError,
    RankingCubeExecutor,
)

__all__ = ["AnyKCursor"]


class AnyKCursor:
    """Pull-based ranked enumeration: certified ``(score, tid)`` order,
    arbitrarily far past ``query.k``.

    Obtain one via :meth:`RankingCubeExecutor.open_search` (or the
    serving layer's ``open_search`` front ends).  Not thread-safe; one
    consumer steps it.  Storage faults surface from :meth:`next_batch`
    as typed :class:`~repro.core.executor.QueryAbortedError` carrying
    the rows certified before the fault; the cursor is then dead.
    """

    def __init__(
        self,
        executor: RankingCubeExecutor,
        query: TopKQuery,
        trace: ExecutorTrace | None = None,
        tracer: Tracer | None = None,
    ):
        self.executor = executor
        self.query = query
        self.tracer = tracer
        self.search = ProgressiveSearch(executor, query, trace, block_k=None)
        #: scored but not yet certified tuples, min-heap on (score, tid)
        self._buffer: list[tuple[float, int]] = []
        #: rows emitted so far (== the rank of the last emitted row)
        self.rank = 0
        #: the first ``query.k`` emitted rows — the conventional top-k
        self._topk: list[ResultRow] = []
        #: serving-layer hook: runs once, on the first :meth:`close`
        self._on_close = None
        self.closed = False
        with maybe_span(tracer, "anyk_open") as span:
            delta = self.search.delta_rows()
            for pair in delta:
                heapq.heappush(self._buffer, pair)
            if span is not None:
                span.add("delta_rows", len(delta))

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """True once every matching tuple of the snapshot was emitted."""
        return self.search.exhausted and not self._buffer

    @property
    def result(self):
        """The conventional top-k view of this enumeration.

        Rows are the first ``query.k`` rows emitted so far (complete —
        and equal to a one-shot ``execute`` — once ``rank >= query.k``
        or the cursor is exhausted); counters are the underlying
        search's live I/O and work totals.
        """
        live = self.search.result
        return type(live)(
            rows=list(self._topk),
            tuples_examined=live.tuples_examined,
            blocks_accessed=live.blocks_accessed,
            candidates_examined=live.candidates_examined,
        )

    def next_batch(self, count: int) -> list[ResultRow]:
        """The next ``count`` rows in certified rank order.

        Returns fewer than ``count`` rows only when the snapshot is
        exhausted; an empty list means *done*, never *try again*.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        rows: list[ResultRow] = []
        live = self.search.result
        with maybe_span(self.tracer, "anyk_batch", requested=count) as span:
            steps_before = live.candidates_examined
            try:
                while len(rows) < count:
                    row = self._next_certified()
                    if row is None:
                        break
                    rows.append(row)
            except StorageError as exc:
                raise QueryAbortedError(
                    f"any-k enumeration aborted at rank {self.rank} "
                    f"after {live.blocks_accessed} block reads: {exc}",
                    partial_rows=rows,
                    blocks_accessed=live.blocks_accessed,
                    cause=exc,
                ) from exc
            if span is not None:
                span.add("rows", len(rows))
                span.add("steps", live.candidates_examined - steps_before)
        return rows

    def __iter__(self):
        """Iterate remaining rows one at a time (same certified order)."""
        while True:
            batch = self.next_batch(1)
            if not batch:
                return
            yield batch[0]

    def close(self) -> None:
        """Mark the cursor done (idempotent).

        Enumeration needs no teardown — the snapshot holds no locks —
        but serving front ends hang span retention off this point, so
        prefer ``with service.open_search(q) as cursor:`` over leaking.
        """
        if self.closed:
            return
        self.closed = True
        if self._on_close is not None:
            self._on_close()

    def __enter__(self) -> "AnyKCursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _next_certified(self) -> ResultRow | None:
        search, buffer = self.search, self._buffer
        while True:
            if buffer and (
                search.exhausted or buffer[0][0] < search.best_unseen
            ):
                score, tid = heapq.heappop(buffer)
                self.rank += 1
                row = ResultRow(tid=tid, score=score)
                if self.query.projection:
                    row = self.executor._project(row, self.query)
                if self.rank <= self.query.k:
                    self._topk.append(row)
                return row
            if search.exhausted:
                return None
            for pair in search.step():
                heapq.heappush(buffer, pair)
