"""Hybrid execution: cost-based choice between cube and baseline.

A production system would not route *every* top-k query through the
ranking cube: when a conjunction of conditions qualifies only a handful of
tuples, fetching them through a secondary index and sorting beats any
progressive search (the paper notes exactly this at s=4 in Figure 9).
:class:`HybridExecutor` estimates both paths with
:mod:`repro.core.estimate` and runs the cheaper one, recording its choice.
"""

from __future__ import annotations

from ..baselines.scan import BaselineExecutor
from ..relational.query import QueryResult, TopKQuery
from ..relational.table import Table
from .cube import RankingCube
from .estimate import CostEstimate, estimate_baseline_cost, estimate_cube_cost
from .executor import RankingCubeExecutor


class HybridExecutor:
    """Route each query to the estimated-cheaper access path.

    Parameters
    ----------
    cube / table:
        The materialized cube and its source relation.  Baseline plans use
        whatever secondary indexes the table already has (build them per
        dimension for the full effect).
    bias:
        Multiplier applied to the cube's estimate before comparison;
        values > 1 make the planner more conservative about choosing the
        cube (hedging against its coarser estimate).
    registry:
        Optional :class:`repro.obs.MetricsRegistry`; every decision bumps
        the ``route.decision`` counter labeled with the chosen path — the
        same series the adaptive router emits, so dashboards aggregate
        static and learned routing identically.
    """

    def __init__(
        self,
        cube: RankingCube,
        table: Table,
        bias: float = 1.0,
        registry=None,
    ):
        if bias <= 0:
            raise ValueError(f"bias must be positive, got {bias}")
        self.cube = cube
        self.table = table
        self.bias = bias
        self.registry = registry
        self._cube_executor = RankingCubeExecutor(cube, table)
        self._baseline_executor = BaselineExecutor(table)
        self.last_choice: str | None = None
        self.last_estimates: tuple[CostEstimate, CostEstimate] | None = None

    # ------------------------------------------------------------------
    def decide(self, query: TopKQuery) -> str:
        """Estimate both paths and record the choice.

        The single decision point: ``execute`` and ``explain`` both call
        it, so ``last_choice`` and ``last_estimates`` always describe the
        same query — an explain can no longer leave a stale choice behind.
        """
        cube_cost, baseline_cost = self.estimate(query)
        chosen = (
            "ranking_cube"
            if cube_cost.io_cost * self.bias <= baseline_cost.io_cost
            else "baseline"
        )
        self.last_choice = chosen
        if self.registry is not None:
            self.registry.counter("route.decision", path=chosen).inc()
        return chosen

    def execute(self, query: TopKQuery) -> QueryResult:
        if self.decide(query) == "ranking_cube":
            return self._cube_executor.execute(query)
        return self._baseline_executor.execute(query)

    def estimate(self, query: TopKQuery) -> tuple[CostEstimate, CostEstimate]:
        """(cube estimate, baseline estimate) for one query."""
        query.validate_against(self.table.schema)
        cube_cost = estimate_cube_cost(self.cube, self.table, query)
        baseline_cost = estimate_baseline_cost(self.table, query)
        self.last_estimates = (cube_cost, baseline_cost)
        return cube_cost, baseline_cost

    def explain(self, query: TopKQuery) -> str:
        """Human-readable routing decision."""
        chosen = self.decide(query)
        cube_cost, baseline_cost = self.last_estimates
        return (
            f"hybrid plan: ~{cube_cost.qualifying:.0f} qualifying tuples\n"
            f"  ranking_cube estimate: {cube_cost.pages:.1f} pages "
            f"(cost {cube_cost.io_cost:.0f})\n"
            f"  baseline estimate:     {baseline_cost.pages:.1f} pages "
            f"(cost {baseline_cost.io_cost:.0f})\n"
            f"  -> {chosen}"
        )
