"""Partitioning strategies for the geometry partition (Section 3.1.2).

A partitioner turns the ranking columns of a relation into a
:class:`~repro.core.blocks.BlockGrid`.  The paper demonstrates equi-depth
partitioning and notes the framework accepts others (Section 6); we
implement equi-depth (default), equi-width, and a hybrid quantile grid.

The number of bins per dimension follows the paper's sizing rule
``b = ceil((T / P) ** (1 / R))`` so the expected number of tuples per base
block is the configured block size ``P``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

from .blocks import BlockGrid, GridError


def bins_for(num_tuples: int, block_size: int, num_dims: int) -> int:
    """Bins per dimension so the expected block occupancy is ``block_size``."""
    if num_tuples <= 0:
        raise ValueError("need at least one tuple to size a grid")
    if block_size <= 0:
        raise ValueError(f"block size must be positive, got {block_size}")
    if num_dims <= 0:
        raise ValueError(f"need at least one ranking dimension, got {num_dims}")
    return max(1, math.ceil((num_tuples / block_size) ** (1.0 / num_dims)))


class Partitioner(ABC):
    """Builds a grid from per-dimension value columns."""

    @abstractmethod
    def build_grid(
        self,
        dims: Sequence[str],
        columns: Sequence[Sequence[float]],
        block_size: int,
    ) -> BlockGrid:
        """Partition ``columns`` (one value list per dim) into a grid."""


class EquiDepthPartitioner(Partitioner):
    """Quantile boundaries: each bin holds ~the same number of tuples.

    This is the paper's default.  Duplicate quantile edges (heavy value
    skew) are merged, so the realized bin count can be lower than requested
    — the grid never has empty *boundary* intervals, though multi-dim cells
    can of course still be empty.
    """

    def build_grid(
        self,
        dims: Sequence[str],
        columns: Sequence[Sequence[float]],
        block_size: int,
    ) -> BlockGrid:
        _check_inputs(dims, columns)
        num_tuples = len(columns[0])
        bins = bins_for(num_tuples, block_size, len(dims))
        boundaries = []
        for column in columns:
            ordered = sorted(column)
            edges = [ordered[0]]
            for i in range(1, bins):
                edges.append(ordered[min(num_tuples - 1, (i * num_tuples) // bins)])
            edges.append(ordered[-1])
            boundaries.append(_strictly_increasing(edges))
        return BlockGrid(tuple(dims), tuple(boundaries))


class EquiWidthPartitioner(Partitioner):
    """Uniform-width bins between the observed min and max per dimension."""

    def build_grid(
        self,
        dims: Sequence[str],
        columns: Sequence[Sequence[float]],
        block_size: int,
    ) -> BlockGrid:
        _check_inputs(dims, columns)
        num_tuples = len(columns[0])
        bins = bins_for(num_tuples, block_size, len(dims))
        boundaries = []
        for column in columns:
            lo, hi = min(column), max(column)
            if hi <= lo:
                hi = lo + 1.0  # constant column: one degenerate bin
            edges = [lo + (hi - lo) * i / bins for i in range(bins + 1)]
            boundaries.append(_strictly_increasing(edges))
        return BlockGrid(tuple(dims), tuple(boundaries))


class QuantileGridPartitioner(Partitioner):
    """Equi-depth boundaries computed on a sample, then snapped to a grid.

    A cheaper approximation of equi-depth for very large loads: quantiles
    come from a fixed-size sample rather than a full sort.
    """

    def __init__(self, sample_size: int = 10_000, seed: int = 7):
        if sample_size < 10:
            raise ValueError("sample_size must be >= 10")
        self.sample_size = sample_size
        self.seed = seed

    def build_grid(
        self,
        dims: Sequence[str],
        columns: Sequence[Sequence[float]],
        block_size: int,
    ) -> BlockGrid:
        import random

        _check_inputs(dims, columns)
        num_tuples = len(columns[0])
        bins = bins_for(num_tuples, block_size, len(dims))
        rng = random.Random(self.seed)
        boundaries = []
        for column in columns:
            if num_tuples > self.sample_size:
                sample = sorted(
                    column[i] for i in
                    (rng.randrange(num_tuples) for _ in range(self.sample_size))
                )
            else:
                sample = sorted(column)
            count = len(sample)
            edges = [min(column)]
            for i in range(1, bins):
                edges.append(sample[min(count - 1, (i * count) // bins)])
            edges.append(max(column))
            boundaries.append(_strictly_increasing(edges))
        return BlockGrid(tuple(dims), tuple(boundaries))


def grid_from_boundaries(
    dims: Sequence[str], boundaries: Sequence[Sequence[float]]
) -> BlockGrid:
    """Build a grid from explicit boundaries (paper's worked example)."""
    return BlockGrid(tuple(dims), tuple(tuple(edges) for edges in boundaries))


def _check_inputs(dims: Sequence[str], columns: Sequence[Sequence[float]]) -> None:
    if len(dims) != len(columns):
        raise GridError("one column per dimension required")
    if not dims:
        raise GridError("at least one ranking dimension required")
    lengths = {len(column) for column in columns}
    if len(lengths) != 1:
        raise GridError(f"columns have differing lengths: {sorted(lengths)}")
    if 0 in lengths:
        raise GridError("cannot partition an empty relation")


def _strictly_increasing(edges: Sequence[float]) -> tuple[float, ...]:
    """Drop duplicate edges; pad a degenerate list to one real interval."""
    result = [edges[0]]
    for edge in edges[1:]:
        if edge > result[-1]:
            result.append(edge)
    if len(result) == 1:
        result.append(result[0] + 1.0)
    return tuple(result)
