"""Many ranking dimensions (Section 6's extension).

The paper assumes few ranking dimensions (2-4) because the base block grid
is a product space over them.  Its Section 6 notes the method "can be
naturally extended to cases where the number of ranking dimensions is also
large" by the same fragmenting idea applied to ranking dimensions: build
one ranking cube per small *group* of ranking dimensions and route each
query to a cube whose grid covers the query's ranking function.

:class:`MultiCubeRouter` implements that extension.  Unlike selection
fragments — whose tid lists intersect exactly — ranking groups cannot be
combined for a single function, so the router requires some group to cover
the query's ranking dimensions; group membership is therefore a workload
design decision (``ranking_groups``), defaulting to all pairs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from ..relational.query import QueryResult, TopKQuery
from ..relational.table import Table
from .cube import DEFAULT_BLOCK_SIZE, CubeError, RankingCube
from .executor import RankingCubeExecutor


class MultiCubeRouter:
    """Routes top-k queries across cubes built on ranking-dim groups."""

    def __init__(self, cubes: Sequence[RankingCube], relation: Table | None = None):
        if not cubes:
            raise CubeError("MultiCubeRouter needs at least one cube")
        self.cubes = list(cubes)
        self.relation = relation
        self._executors = [
            RankingCubeExecutor(cube, relation) for cube in self.cubes
        ]

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        table: Table,
        ranking_groups: Sequence[Sequence[str]] | None = None,
        group_size: int = 2,
        selection_dims: Sequence[str] | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        **cube_kwargs,
    ) -> "MultiCubeRouter":
        """Build one ranking cube per ranking-dimension group.

        ``ranking_groups`` defaults to every ``group_size``-subset of the
        schema's ranking dimensions (all pairs for ``group_size=2``), which
        covers any query ranking on at most ``group_size`` dimensions.
        """
        all_ranking = table.schema.ranking_names
        if ranking_groups is None:
            if group_size >= len(all_ranking):
                ranking_groups = [all_ranking]
            else:
                ranking_groups = list(combinations(all_ranking, group_size))
        cubes = [
            RankingCube.build(
                table,
                ranking_dims=group,
                selection_dims=selection_dims,
                block_size=block_size,
                **cube_kwargs,
            )
            for group in ranking_groups
        ]
        return cls(cubes, relation=table)

    # ------------------------------------------------------------------
    def route(self, query: TopKQuery) -> RankingCubeExecutor:
        """The executor whose cube covers the query's ranking dimensions.

        Among covering cubes, prefers the one with the fewest extra grid
        dimensions (less projection, fewer tied blocks — the Figure 6
        effect).
        """
        wanted = set(query.ranking.dims)
        best = None
        best_extra = None
        for executor in self._executors:
            grid_dims = set(executor.cube.grid.dims)
            if not wanted <= grid_dims:
                continue
            extra = len(grid_dims - wanted)
            if best_extra is None or extra < best_extra:
                best, best_extra = executor, extra
        if best is None:
            raise CubeError(
                f"no cube covers ranking dimensions {sorted(wanted)}; "
                f"available grids: {[c.grid.dims for c in self.cubes]}"
            )
        return best

    def execute(self, query: TopKQuery) -> QueryResult:
        """Route and execute."""
        return self.route(query).execute(query)

    # ------------------------------------------------------------------
    @property
    def size_in_bytes(self) -> int:
        return sum(cube.size_in_bytes for cube in self.cubes)

    def grids(self) -> list[tuple[str, ...]]:
        return [cube.grid.dims for cube in self.cubes]
