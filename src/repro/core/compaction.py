"""Background delta compaction: merge the delta store into the cube.

:meth:`RankingCube.refresh_delta` absorbs appended tuples into an
in-memory side list that every query merges at answer time (the classic
delta-store strategy; the paper leaves maintenance as future work).
Unbounded, that list slows every query and survives only as long as the
process.  :class:`CubeCompactor` drains it back into the materialization:

1. **snapshot** the cube's queryable state (under the cube's state lock),
2. **classify** delta entries — a tuple whose ranking point lies inside
   the grid's full box is *absorbable*; an out-of-grid tuple stays
   *residual* in the delta, because :meth:`BlockGrid.locate` clamps to
   edge bins and a clamped tuple's real values can exceed its block's
   bounding box, which would break the frontier stop's lower-bound
   soundness,
3. **merge** — read every base block / cuboid cell of the old stores and
   append the absorbable entries (tid-ascending, matching scan order, so
   the merged image equals a from-scratch build over old + delta),
4. **rebuild** fresh :class:`BaseBlockTable` / :class:`RankingCuboid`
   objects on new pages (build-once stores are never mutated in place);
   cuboid epochs bump so serving-cache keys from the old generation can
   never satisfy new-generation lookups,
5. **flush** the buffer pool — the new pages must be durable *before*
   anything references them (write-ahead ordering: a crash after the
   flush but before the swap leaves the new pages unreferenced garbage,
   never a referenced hole),
6. **swap** the ``(base_table, cuboids, delta)`` triple atomically under
   the cube's state lock, keeping only residual delta entries (plus any
   appended concurrently),
7. **notify** the cube's invalidation listeners (outside the lock), the
   same protocol ``refresh_delta`` uses, so serving caches drop stale
   cells while query traffic keeps flowing.

Queries run against per-query snapshots (:meth:`RankingCube.snapshot`),
so a query started before the swap finishes against the old triple and a
query started after sees the new one — never a mix.

Crash consistency is exercised by ``tests/faults/test_compaction_crash.py``
through the :data:`COMPACTION_FAULT_POINTS` hook: killing the compactor
at any point leaves the cube answering from either the pre- or post-merge
state, never a partial one.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..obs.tracing import maybe_span
from .base_table import BaseBlockTable
from .cube import RankingCube
from .cuboid import RankingCuboid

#: Named instants where the crash harness may kill a compaction run, in
#: execution order.  None of them fires while the cube's state lock is
#: held (the harness's "kill" raises through compact_once, and a raise
#: under the lock would not model a process death — a dead process holds
#: no locks).
COMPACTION_FAULT_POINTS = (
    "drain",          # after snapshotting cube state
    "classify",       # after splitting absorbable vs residual
    "base-read",      # after reading the old base block groups
    "base-built",     # after materializing the new base table
    "cuboids-built",  # after materializing every new cuboid
    "flushed",        # after the pre-swap durability flush
    "swapped",        # after the atomic state swap
    "notified",       # after invalidation listeners ran
)


class CompactionError(Exception):
    """Raised on compactor misuse (start after close, bad config)."""


@dataclass
class CompactionReport:
    """What one :meth:`CubeCompactor.compact_once` run did."""

    absorbed: int = 0            #: delta tuples merged into the materialization
    residual: int = 0            #: out-of-grid tuples left in the delta
    cells_merged: int = 0        #: cuboid cells receiving new tuples
    cuboids_rebuilt: int = 0
    swapped: bool = False        #: False means a no-op (nothing absorbable)
    wall_s: float = 0.0
    epochs: dict = field(default_factory=dict)  #: cuboid name -> new epoch


class CubeCompactor:
    """Foreground and background delta compaction for one cube.

    Parameters
    ----------
    cube:
        The cube to maintain.
    pool:
        Buffer pool of the cube's device (supplies page allocation, the
        durability flush, and — when present — the metrics registry).
    min_delta:
        Background mode only: the worker compacts once the delta holds at
        least this many tuples (and on every explicit :meth:`wake`).
    tracer:
        Optional tracer; each run emits a ``compact`` span tree.
    fault_hook:
        Test seam: called with each :data:`COMPACTION_FAULT_POINTS` name
        as the run passes it; raising simulates a kill at that instant.
    on_swap:
        Optional callback invoked with the number of absorbed tuples
        after each successful swap (and after the ``swapped`` fault
        point, so a simulated kill models a crash *between* the swap and
        the callback).  The ingestion layer uses it to retire drained
        delta runs and advance the WAL checkpoint.
    """

    def __init__(
        self,
        cube: RankingCube,
        pool,
        min_delta: int = 256,
        tracer=None,
        fault_hook=None,
        on_swap=None,
    ):
        if min_delta < 1:
            raise CompactionError(f"min_delta must be >= 1, got {min_delta}")
        self.cube = cube
        self.pool = pool
        self.min_delta = min_delta
        self.tracer = tracer
        self.fault_hook = fault_hook
        self.on_swap = on_swap
        self.registry = getattr(pool, "registry", None)
        #: serializes compaction runs (foreground drain vs background worker)
        self._run_lock = threading.Lock()
        self._cond = threading.Condition()
        self._thread: threading.Thread | None = None
        self._closed = False
        self._wake_requested = False
        #: residual watermark: a delta of only unabsorbable tuples must not
        #: busy-loop the worker; it re-runs only when the delta grows past
        #: what the last run left behind
        self._last_residual = 0
        self.runs = 0
        self.last_report: CompactionReport | None = None
        self.last_error: BaseException | None = None

    # ------------------------------------------------------------------
    # one compaction run (foreground)
    # ------------------------------------------------------------------
    def compact_once(self) -> CompactionReport:
        """Drain the current delta into the materialization, atomically.

        Safe to call while queries run: the swap is a pointer flip under
        the cube's state lock, and queries execute against per-query
        snapshots.  Returns a report; ``swapped=False`` means nothing was
        absorbable (the delta was empty or entirely out-of-grid).
        """
        with self._run_lock:
            return self._compact_locked()

    def _compact_locked(self) -> CompactionReport:
        started = time.perf_counter()
        report = CompactionReport()
        cube = self.cube
        with maybe_span(self.tracer, "compact") as span:
            state = cube.snapshot()
            self._fault("drain")

            with maybe_span(self.tracer, "compact.classify"):
                lower, upper = state.grid.full_box()
                drained = len(state.delta)
                absorbable: list[tuple[int, dict, dict]] = []
                residual: list[tuple[int, dict, dict]] = []
                for entry in state.delta:
                    _tid, _sel, rank_values = entry
                    point = [rank_values[d] for d in state.grid.dims]
                    inside = all(
                        lo <= v <= hi for v, lo, hi in zip(point, lower, upper)
                    )
                    (absorbable if inside else residual).append(entry)
            self._fault("classify")

            if not absorbable:
                self._last_residual = len(residual)
                report.residual = len(residual)
                report.wall_s = time.perf_counter() - started
                self._record(report, noop=True)
                return report

            # --- merge: old groups + delta appends, in tid order ----------
            with maybe_span(self.tracer, "compact.merge"):
                base_groups: dict[int, list[tuple]] = {
                    bid: records for bid, records in state.base_table.blocks()
                }
                self._fault("base-read")
                ordered = sorted(absorbable, key=lambda entry: entry[0])
                new_bids: dict[int, int] = {}
                for tid, _sel, rank_values in ordered:
                    point = tuple(
                        float(rank_values[d]) for d in state.grid.dims
                    )
                    bid = state.grid.locate(point)
                    new_bids[tid] = bid
                    base_groups.setdefault(bid, []).append((int(tid), *point))

            # --- rebuild the stores on fresh pages ------------------------
            with maybe_span(self.tracer, "compact.rebuild"):
                new_base = BaseBlockTable.from_groups(
                    self.pool, state.grid, base_groups
                )
                self._fault("base-built")
                touched_cells = 0
                new_cuboids: dict[frozenset, RankingCuboid] = {}
                for key, cuboid in state.cuboids.items():
                    groups: dict[tuple, list[tuple[int, int]]] = {
                        cell: pairs for cell, pairs in cuboid.cells()
                    }
                    for tid, sel_values, _rank in ordered:
                        bid = new_bids[tid]
                        pid = cuboid.pid_of_bid(bid)
                        cell = tuple(
                            int(sel_values[d]) for d in cuboid.dims
                        ) + (pid,)
                        groups.setdefault(cell, []).append((int(tid), int(bid)))
                        touched_cells += 1
                    new_cuboids[key] = RankingCuboid.from_groups(
                        self.pool,
                        cuboid.dims,
                        cuboid.cardinalities,
                        state.grid,
                        groups,
                        scale_override=cuboid.scale_factor,
                        compress=cuboid.compressed,
                        epoch=cuboid.epoch + 1,
                    )
                self._fault("cuboids-built")

            # --- durability: new pages hit the device before the swap -----
            with maybe_span(self.tracer, "compact.flush"):
                self.pool.flush()
            self._fault("flushed")

            # --- atomic swap ----------------------------------------------
            with cube._state_lock:
                # Keep residual entries plus anything refresh_delta appended
                # after our snapshot; the snapshot's prefix is what we merged.
                survivors = residual + cube._delta[drained:]
                cube.base_table = new_base
                cube.cuboids = new_cuboids
                cube._delta = survivors
            self._last_residual = len(residual)
            self._fault("swapped")
            if self.on_swap is not None:
                self.on_swap(len(ordered))

            cube._notify_invalidation()
            self._fault("notified")

            report.absorbed = len(ordered)
            report.residual = len(residual)
            report.cells_merged = touched_cells
            report.cuboids_rebuilt = len(new_cuboids)
            report.swapped = True
            report.epochs = {c.name: c.epoch for c in new_cuboids.values()}
            report.wall_s = time.perf_counter() - started
            if span is not None:
                span.add_many(
                    absorbed=report.absorbed,
                    residual=report.residual,
                    cuboids_rebuilt=report.cuboids_rebuilt,
                )
        self._record(report, noop=False)
        return report

    def _fault(self, point: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point)

    def _record(self, report: CompactionReport, noop: bool) -> None:
        self.runs += 1
        self.last_report = report
        if self.registry is None:
            return
        self.registry.counter("compact.runs").inc()
        if noop:
            self.registry.counter("compact.noops").inc()
            return
        self.registry.counter("compact.swaps").inc()
        self.registry.counter("compact.tuples_absorbed").inc(report.absorbed)
        self.registry.counter("compact.tuples_residual").inc(report.residual)
        self.registry.counter("compact.cells_merged").inc(report.cells_merged)
        self.registry.counter("compact.cuboids_rebuilt").inc(
            report.cuboids_rebuilt
        )
        self.registry.histogram("compact.wall_s").observe(report.wall_s)

    # ------------------------------------------------------------------
    # background worker
    # ------------------------------------------------------------------
    def start(self) -> "CubeCompactor":
        """Start the background worker thread (idempotent)."""
        with self._cond:
            if self._closed:
                raise CompactionError("compactor is closed")
            if self._thread is not None:
                return self
            self._thread = threading.Thread(
                target=self._worker, name="cube-compactor", daemon=True
            )
            self._thread.start()
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def wake(self) -> None:
        """Ask the background worker to compact now, regardless of size."""
        with self._cond:
            self._wake_requested = True
            self._cond.notify_all()

    def drain(self) -> CompactionReport:
        """Foreground convenience: compact now and return the report."""
        return self.compact_once()

    def close(self, wait: bool = True) -> None:
        """Stop the background worker.  Idempotent; safe without start."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            thread = self._thread
        if wait and thread is not None:
            thread.join()

    def _pending(self) -> bool:
        if self._wake_requested:
            return True
        return self.cube.delta_size > max(self._last_residual, self.min_delta - 1)

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._closed and not self._pending():
                    self._cond.wait(timeout=0.05)
                if self._closed:
                    return
                self._wake_requested = False
            try:
                self.compact_once()
            except BaseException as exc:  # noqa: BLE001 - worker must survive
                self.last_error = exc
                if self.registry is not None:
                    self.registry.counter("compact.errors").inc()

    # ------------------------------------------------------------------
    def __enter__(self) -> "CubeCompactor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
