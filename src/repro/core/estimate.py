"""Analytic cost estimation for top-k access paths.

The paper's Figure 9 experiment ends with an observation the system itself
should act on: "with 4 selection conditions, the number of qualified
tuples is ~100.  Ranking is even not necessary in this case."  This module
provides the estimates a planner needs to make that call:

* :func:`estimate_qualifying` — expected qualifying tuples under the
  standard attribute-independence assumption over the table's exact
  per-value histograms;
* :func:`estimate_cube_cost` — expected page reads for the ranking cube's
  progressive search: to surface k qualifying tuples it must visit about
  ``k / (q * B)`` base blocks (each block holds ~B tuples of which a
  fraction ``q`` qualify), each costing a base-block read plus amortized
  pseudo-block and directory reads;
* :func:`estimate_baseline_cost` — the baseline's index-or-scan cost, the
  same model its planner uses.

These are *estimates*: coarse by design (independence, uniform spread of
qualifying tuples over blocks), good enough to separate the regimes — the
hybrid executor's tests check decisions, not digits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..relational.query import TopKQuery
from ..relational.table import Table
from ..storage.device import RANDOM_READ_WEIGHT, SEQ_READ_WEIGHT
from .cube import RankingCube


@dataclass(frozen=True)
class CostEstimate:
    """One access path's estimated cost."""

    method: str
    pages: float
    io_cost: float
    qualifying: float

    def __lt__(self, other: "CostEstimate") -> bool:
        return self.io_cost < other.io_cost


def estimate_qualifying(table: Table, query: TopKQuery) -> float:
    """Expected qualifying tuples (independence over exact histograms)."""
    fraction = 1.0
    for name, value in query.selections.items():
        fraction *= table.selectivity(name, value)
    return fraction * table.num_rows


def estimate_cube_cost(
    cube: RankingCube, table: Table, query: TopKQuery
) -> CostEstimate:
    """Expected cost of the progressive ranking-cube search."""
    qualifying = estimate_qualifying(table, query)
    total_blocks = cube.grid.num_blocks
    expected_blocks = expected_blocks_to_k(query.k, qualifying, total_blocks)
    # base blocks are only read where the cell is non-empty: when fewer
    # tuples qualify than blocks get visited, most probes skip the base
    # read entirely (the empty-cell optimization of Section 3.2.1)
    base_reads = min(expected_blocks, max(qualifying, 0.0))
    covering = cube.covering_cuboids(query.selection_names)
    # pseudo-block fetches amortize over the scale factor's merge window
    pseudo_reads = sum(
        max(1.0, expected_blocks / max(1, c.scale_factor ** cube.grid.num_dims))
        for c in covering
    )
    descent = 3.0 * max(1, len(covering))  # directory descents, mostly cached
    pages = base_reads + pseudo_reads + descent
    return CostEstimate(
        method="ranking_cube",
        pages=pages,
        io_cost=RANDOM_READ_WEIGHT * pages,
        qualifying=qualifying,
    )


def expected_heap_pages(rows: float, num_pages: int) -> float:
    """Expected distinct heap pages touched by ``rows`` random row fetches.

    Cardenas' formula: ``P * (1 - (1 - 1/P)^rows)``.  Multiple qualifying
    rows land on the same heap page once ``rows`` approaches the page
    count, so an index plan's cost saturates at one read per *page*, never
    one per *row*.  Charging per row (the old model) overstated the index
    path by up to ``records_per_page``× and biased the hybrid planner
    toward the cube exactly in the selective regime where the paper says
    the baseline should win (Figure 9, s=4).
    """
    if num_pages <= 0:
        raise ValueError(f"num_pages must be positive, got {num_pages}")
    if rows <= 0:
        return 0.0
    return num_pages * (1.0 - (1.0 - 1.0 / num_pages) ** rows)


def estimate_baseline_cost(table: Table, query: TopKQuery) -> CostEstimate:
    """Expected cost of the baseline's best plan (index or scan)."""
    qualifying = estimate_qualifying(table, query)
    scan_cost = SEQ_READ_WEIGHT * table.heap.num_pages
    best_io = scan_cost
    best_pages = float(table.heap.num_pages)
    for name, value in query.selections.items():
        if name not in table.secondary_indexes:
            continue
        rows = table.value_count(name, value)
        pages = expected_heap_pages(rows, table.heap.num_pages)
        index_io = RANDOM_READ_WEIGHT * pages
        if index_io < best_io:
            best_io = index_io
            best_pages = pages
    return CostEstimate(
        method="baseline",
        pages=best_pages,
        io_cost=best_io,
        qualifying=qualifying,
    )


def expected_blocks_to_k(
    k: int, qualifying: float, total_blocks: int
) -> float:
    """Blocks to visit before k qualifying tuples surface.

    The single formula behind the cube cost model: :func:`estimate_cube_cost`
    and the hybrid advisor's tests both call it, so the planner and its
    oracle can never round or clamp the same quantity differently.  Blocks
    come in whole units (``ceil``), at least one is always visited
    (``k >= 1`` forces the ceil to 1+), and the frontier can never visit
    more blocks than the grid holds.
    """
    if total_blocks <= 0:
        raise ValueError("total_blocks must be positive")
    if qualifying <= 0:
        return float(total_blocks)
    per_block = qualifying / total_blocks
    return min(float(total_blocks), math.ceil(k / per_block))
