"""Packed, keyed record runs with a B+-tree directory.

Both halves of the ranking cube's physical layout use the same pattern: a
set of variable-length record lists (one per base block / per cuboid cell)
located through a clustered B+-tree directory.  Groups are written in key
order and *packed*: a group that fits in the current page's free space
shares the page with its key-order neighbors (so reading a small cell is
one random page read, like a clustered-index leaf); a group larger than
the free space starts on a fresh page and spans consecutive pages (one
random read plus sequential reads).  Packing is what keeps the fragments'
space usage in the paper's ~1-2.5x band (Figure 11) instead of paying a
full page per sparse cell.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..index.bptree import BPlusTree
from ..storage.buffer import BufferPool
from ..storage.pages import RecordCodec, RecordPage


class ChainStore:
    """Keyed record runs over paged storage (build once, read many).

    Parameters
    ----------
    pool:
        Buffer pool of the shared device.
    codec:
        Record layout of stored entries.
    fanout:
        Directory B+-tree fanout.
    """

    def __init__(self, pool: BufferPool, codec: RecordCodec, fanout: int = 32):
        self.pool = pool
        self.codec = codec
        self.page_size = pool.device.page_size
        self.directory = BPlusTree(pool, fanout=fanout)
        self._page_ids: list[int] = []
        self._num_records = 0
        self._built = False

    # ------------------------------------------------------------------
    def build(self, groups: Iterable[tuple[tuple, Sequence[tuple]]]) -> None:
        """Bulk build from ``(key, records)`` groups (keys must be unique).

        Groups are laid out in sorted key order; the directory maps each
        key to ``(page_index, slot, count)`` packed into one integer.
        """
        if self._built:
            raise RuntimeError("ChainStore.build may only be called once")
        self._built = True
        capacity = self.codec.capacity(self.page_size)
        ordered = sorted(
            ((tuple(key), list(records)) for key, records in groups),
            key=lambda group: group[0],
        )

        pages: list[list[tuple]] = [[]]
        directory_pairs = []
        for key, records in ordered:
            if not records:
                continue
            free = capacity - len(pages[-1])
            if len(records) > free and len(records) <= capacity:
                # does not fit here but fits in one fresh page: avoid a split
                pages.append([])
            page_index = len(pages) - 1
            slot = len(pages[-1])
            directory_pairs.append(
                (key, _pack_locator(page_index, slot, len(records)))
            )
            remaining = list(records)
            while remaining:
                free = capacity - len(pages[-1])
                if free == 0:
                    pages.append([])
                    free = capacity
                pages[-1].extend(remaining[:free])
                remaining = remaining[free:]
            self._num_records += len(records)

        if pages == [[]]:
            pages = []
        self._page_ids = self.pool.device.allocate_many(len(pages))
        for page_id, records in zip(self._page_ids, pages):
            page = RecordPage(self.codec, self.page_size)
            page.extend(records)
            self.pool.put(page_id, page.to_bytes())
        self.directory.bulk_load(directory_pairs)

    def get(self, key: tuple) -> list[tuple]:
        """All records under ``key`` (empty list if the key is absent)."""
        locator = self.directory.get(tuple(key))
        if locator is None:
            return []
        page_index, slot, count = _unpack_locator(locator)
        capacity = self.codec.capacity(self.page_size)
        records: list[tuple] = []
        while count > 0:
            page = RecordPage.from_bytes(
                self.pool.get(self._page_ids[page_index]), self.codec, self.page_size
            )
            take = page.records[slot:slot + count]
            records.extend(take)
            count -= len(take)
            page_index += 1
            slot = 0
        return records

    def __contains__(self, key: tuple) -> bool:
        return self.directory.get(tuple(key)) is not None

    def items(self) -> Iterable[tuple[tuple, list[tuple]]]:
        """Iterate ``(key, records)`` in key order (maintenance scans)."""
        for key, _locator in self.directory.items():
            yield key, self.get(key)

    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        return self._num_records

    @property
    def num_chain_pages(self) -> int:
        return len(self._page_ids)

    @property
    def size_in_bytes(self) -> int:
        return (len(self._page_ids) * self.page_size) + self.directory.size_in_bytes


_SLOT_BITS = 12    # up to 4095 records per page
_COUNT_BITS = 24   # up to ~16M records per group


def _pack_locator(page_index: int, slot: int, count: int) -> int:
    if slot >= (1 << _SLOT_BITS) or count >= (1 << _COUNT_BITS):
        raise ValueError(f"locator out of range: slot={slot} count={count}")
    return (page_index << (_SLOT_BITS + _COUNT_BITS)) | (slot << _COUNT_BITS) | count


def _unpack_locator(locator: int) -> tuple[int, int, int]:
    count = locator & ((1 << _COUNT_BITS) - 1)
    slot = (locator >> _COUNT_BITS) & ((1 << _SLOT_BITS) - 1)
    page_index = locator >> (_SLOT_BITS + _COUNT_BITS)
    return page_index, slot, count
