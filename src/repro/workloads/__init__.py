"""Workload generation: synthetic datasets, random queries, CoverType stand-in."""

from .drifting import DriftingQueryStream, WorkloadPhase, shifted_rows
from .covertype import (
    RANKING_PROFILE,
    SELECTION_PROFILE,
    CoverTypeSpec,
    covertype_schema,
    generate_covertype,
)
from .oracle import (
    brute_force_ranked,
    brute_force_reverse_topk,
    brute_force_rows,
    brute_force_topk,
)
from .queries import QueryGenerator, QuerySpec, skewed_weights
from .synthetic import SyntheticDataset, SyntheticSpec, generate

__all__ = [
    "CoverTypeSpec",
    "DriftingQueryStream",
    "QueryGenerator",
    "QuerySpec",
    "brute_force_ranked",
    "brute_force_reverse_topk",
    "brute_force_rows",
    "brute_force_topk",
    "RANKING_PROFILE",
    "SELECTION_PROFILE",
    "SyntheticDataset",
    "SyntheticSpec",
    "WorkloadPhase",
    "covertype_schema",
    "generate",
    "generate_covertype",
    "shifted_rows",
    "skewed_weights",
]
