"""Random query workloads (Section 5.1.3).

Queries are parameterized by ``s`` (number of selection conditions), ``r``
(dimensions in the ranking function), ``k`` and the *query skewness*
``u = min|alpha| / max|alpha|`` of a linear ranking function's weights —
``u = 1`` is a balanced query, small ``u`` a highly skewed one.  Paper
defaults: s=2, r=2, k=10, u=1 (linear functions throughout the
evaluation); generators for distance-style functions are included for the
extension experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..ranking.functions import LinearFunction, LpDistance, RankingFunction
from ..relational.query import TopKQuery
from ..relational.schema import Schema


@dataclass(frozen=True)
class QuerySpec:
    """Parameters of one random query workload."""

    k: int = 10
    num_selections: int = 2
    num_ranking_dims: int = 2
    skewness: float = 1.0
    function_family: str = "linear"
    p: float = 2.0
    seed: int = 101

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.num_selections < 0:
            raise ValueError("num_selections must be >= 0")
        if self.num_ranking_dims < 1:
            raise ValueError("num_ranking_dims must be >= 1")
        if not 0 < self.skewness <= 1:
            raise ValueError("skewness u must be in (0, 1]")
        if self.function_family not in ("linear", "lp"):
            raise ValueError(f"unknown function family {self.function_family!r}")


class QueryGenerator:
    """Draws random top-k queries against a schema."""

    def __init__(self, schema: Schema, spec: QuerySpec):
        self.schema = schema
        self.spec = spec
        self._rng = random.Random(spec.seed)
        if spec.num_selections > len(schema.selection_names):
            raise ValueError(
                f"schema has {len(schema.selection_names)} selection dims, "
                f"cannot place {spec.num_selections} conditions"
            )
        if spec.num_ranking_dims > len(schema.ranking_names):
            raise ValueError(
                f"schema has {len(schema.ranking_names)} ranking dims, "
                f"cannot rank on {spec.num_ranking_dims}"
            )

    # ------------------------------------------------------------------
    def generate(self) -> TopKQuery:
        """One random query."""
        spec = self.spec
        rng = self._rng
        sel_dims = rng.sample(list(self.schema.selection_names), spec.num_selections)
        selections = {}
        for dim in sel_dims:
            cardinality = self.schema.attribute(dim).cardinality
            assert cardinality is not None
            selections[dim] = rng.randrange(cardinality)
        rank_dims = rng.sample(list(self.schema.ranking_names), spec.num_ranking_dims)
        return TopKQuery(spec.k, selections, self._ranking_function(rank_dims))

    def batch(self, count: int) -> list[TopKQuery]:
        return [self.generate() for _ in range(count)]

    def stream(self) -> Iterator[TopKQuery]:
        while True:
            yield self.generate()

    def constrained(
        self, selection_dims: Sequence[str], seed_offset: int = 0
    ) -> TopKQuery:
        """A query whose selection conditions fall on exactly these dims.

        Used by the covering-fragments experiment (Figure 12), which needs
        queries intentionally covered by one, two or three fragments.
        """
        rng = random.Random(self.spec.seed + 7919 * (seed_offset + 1))
        selections = {}
        for dim in selection_dims:
            cardinality = self.schema.attribute(dim).cardinality
            assert cardinality is not None
            selections[dim] = rng.randrange(cardinality)
        rank_dims = list(self.schema.ranking_names)[: self.spec.num_ranking_dims]
        return TopKQuery(self.spec.k, selections, self._ranking_function(rank_dims, rng))

    # ------------------------------------------------------------------
    def _ranking_function(
        self, dims: Sequence[str], rng: random.Random | None = None
    ) -> RankingFunction:
        spec = self.spec
        rng = rng or self._rng
        if spec.function_family == "lp":
            target = [rng.random() for _ in dims]
            return LpDistance(dims, target, p=spec.p)
        weights = skewed_weights(len(dims), spec.skewness, rng)
        return LinearFunction(dims, weights)


def skewed_weights(count: int, skewness: float, rng: random.Random) -> list[float]:
    """Linear weights with ``min/max`` ratio exactly ``skewness``.

    One dimension gets weight 1, another gets ``skewness``; the rest draw
    uniformly in between — so ``u = min/max`` matches the requested value
    (for ``count == 1`` the single weight is 1 and u is vacuously 1).
    """
    if count == 1:
        return [1.0]
    weights = [1.0, skewness]
    weights.extend(rng.uniform(skewness, 1.0) for _ in range(count - 2))
    rng.shuffle(weights)
    return weights
