"""Synthetic stand-in for the UCI Forest CoverType dataset (Section 5.1.1).

The paper's real-data experiment uses Forest CoverType: 581,012 rows, from
which it takes 3 quantitative attributes (cardinalities 1989, 5787 and
5827) as ranking dimensions and 12 attributes with cardinalities
(55, 7, 2, 85, 67, 7, 2, 2, 2, 2, 2, 2) as selection dimensions, then
duplicates the data 5 times (3,486,072 tuples).

The UCI repository is unreachable offline, so this module *synthesizes* a
dataset with the same schema statistics.  The properties that drive the
paper's Figure 15 observations are preserved:

* many selection dimensions have cardinality 2 (the binarized wilderness
  and soil-type flags) and skewed value frequencies, so equality conditions
  filter poorly — which is why the Baseline outperforms Rank Mapping on
  this data in the paper;
* ranking attributes are integer-valued with large but finite domains
  (duplicate values exist, exercising the equi-depth duplicate-edge path);
* ranking attributes are correlated (elevation-like gradients), not
  independent uniforms.

The substitution is recorded in DESIGN.md section 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..relational.schema import Schema, ranking_attr, selection_attr
from .synthetic import SyntheticDataset, SyntheticSpec

#: (name, cardinality) of the 12 selection attributes the paper selects.
SELECTION_PROFILE: tuple[tuple[str, int], ...] = (
    ("slope", 55),
    ("hillshade_band", 7),
    ("wilderness_1", 2),
    ("aspect_band", 85),
    ("horiz_dist_band", 67),
    ("cover_class", 7),
    ("wilderness_2", 2),
    ("soil_a", 2),
    ("soil_b", 2),
    ("soil_c", 2),
    ("soil_d", 2),
    ("soil_e", 2),
)

#: (name, distinct values) of the 3 quantitative ranking attributes.
RANKING_PROFILE: tuple[tuple[str, int], ...] = (
    ("elevation", 1989),
    ("horiz_dist_road", 5787),
    ("horiz_dist_fire", 5827),
)


@dataclass(frozen=True)
class CoverTypeSpec:
    """Size and seed of the synthesized stand-in.

    ``num_tuples`` defaults far below the paper's 3.48M for bench-friendly
    runtimes; pass the full size to reproduce at paper scale.
    """

    num_tuples: int = 20_000
    seed: int = 4242

    def __post_init__(self) -> None:
        if self.num_tuples < 1:
            raise ValueError("num_tuples must be >= 1")


def covertype_schema() -> Schema:
    return Schema.of(
        [selection_attr(name, card) for name, card in SELECTION_PROFILE]
        + [ranking_attr(name) for name, _ in RANKING_PROFILE]
    )


def generate_covertype(spec: CoverTypeSpec = CoverTypeSpec()) -> SyntheticDataset:
    """Synthesize the CoverType-like dataset."""
    rng = np.random.default_rng(spec.seed)
    n = spec.num_tuples

    # A latent "terrain" factor correlates everything, mimicking the
    # geography-driven correlations of the real data.
    terrain = rng.beta(2.0, 2.0, size=n)

    selection_columns = []
    for _name, cardinality in SELECTION_PROFILE:
        if cardinality == 2:
            # binary flags: skewed ON-probability tied to terrain
            threshold = rng.uniform(0.2, 0.8)
            flips = rng.random(n) < 0.15
            column = ((terrain > threshold) ^ flips).astype(np.int64)
        else:
            # banded quantitative attributes: terrain-driven with noise,
            # leaving some bands rare (real bands are far from uniform)
            noisy = np.clip(terrain + rng.normal(0, 0.25, size=n), 0, 1)
            column = np.minimum(
                (noisy * cardinality).astype(np.int64), cardinality - 1
            )
        selection_columns.append(column)

    ranking_columns = []
    for _name, distinct in RANKING_PROFILE:
        noisy = np.clip(terrain + rng.normal(0, 0.2, size=n), 0, 1)
        # integer-quantize to the attribute's distinct-value count, then
        # rescale to [0, 1]: duplicates survive, as in the real data
        quantized = np.floor(noisy * (distinct - 1)) / max(1, distinct - 1)
        ranking_columns.append(quantized)

    columns = selection_columns + ranking_columns
    num_sel = len(SELECTION_PROFILE)
    rows = [
        tuple(
            int(col[i]) if j < num_sel else float(col[i])
            for j, col in enumerate(columns)
        )
        for i in range(n)
    ]
    # Reuse SyntheticDataset as the container; the spec slot records sizes.
    carrier = SyntheticSpec(
        num_selection_dims=num_sel,
        num_ranking_dims=len(RANKING_PROFILE),
        num_tuples=n,
        cardinality=max(card for _name, card in SELECTION_PROFILE),
        seed=spec.seed,
    )
    return SyntheticDataset(spec=carrier, schema=covertype_schema(), rows=rows)
