"""Brute-force oracles for differential testing of every query scenario.

Each oracle answers a query by scanning the raw rows with the same
:class:`~repro.relational.query.TopKQuery` scoring/matching helpers the
row executor uses — identical float operations in identical order — so
exact (bitwise) equality against the cube executors is the expected
outcome, not an approximation.  The property suites, the golden bench
gates, and the sharded differential tests all share these definitions;
there is deliberately exactly one statement of what "correct" means per
scenario.

Ordering contract (shared with the executors, documented on
:class:`~repro.relational.query.QueryResult`): results ascend by
``(score, tid)`` — ties on score break toward the smaller tid.
"""

from __future__ import annotations

from typing import Sequence

from ..relational.query import ResultRow, TopKQuery

__all__ = [
    "brute_force_ranked",
    "brute_force_reverse_topk",
    "brute_force_rows",
    "brute_force_topk",
]


def _scored_pairs(schema, rows, query: TopKQuery) -> list[tuple[float, int]]:
    """All matching rows as ``(score, tid)`` pairs in certified order."""
    return sorted(
        (query.score_row(schema, row), tid)
        for tid, row in enumerate(rows)
        if query.matches(schema, row)
    )


def brute_force_topk(schema, rows, query: TopKQuery) -> list[tuple[float, int]]:
    """Top-k oracle: the first ``query.k`` ``(score, tid)`` pairs.

    Drop-in replacement for the ad-hoc ``brute_force`` helpers the early
    test suites carried; returns bare pairs because most call sites
    compare against ``[(r.score, r.tid) for r in result.rows]``.
    """
    return _scored_pairs(schema, rows, query)[: query.k]


def brute_force_ranked(
    schema, rows, query: TopKQuery, depth: int | None = None
) -> list[ResultRow]:
    """Any-k oracle: the full certified ranking, optionally truncated.

    ``depth=None`` ranks every matching row — this is what an exhausted
    :class:`~repro.core.anyk.AnyKCursor` must have emitted, in order.
    ``query.k`` is ignored here; enumeration runs past k by design.
    """
    ordered = _scored_pairs(schema, rows, query)
    if depth is not None:
        ordered = ordered[:depth]
    return [ResultRow(tid=tid, score=score) for score, tid in ordered]


def brute_force_rows(schema, rows, query: TopKQuery) -> list[ResultRow]:
    """Top-k oracle returning full ``ResultRow`` dataclasses."""
    return [
        ResultRow(tid=tid, score=score)
        for score, tid in brute_force_topk(schema, rows, query)
    ]


def brute_force_reverse_topk(schema, rows, query) -> list[int]:
    """Reverse top-k oracle: indices of the qualifying ranking functions.

    ``query`` is a :class:`~repro.core.reverse.ReverseTopKQuery` (duck
    typed: ``tid``, ``k``, ``selections``, ``functions``).  Function ``i``
    qualifies iff the target row matches the selections and fewer than
    ``k`` other matching rows precede it under the ``(score, tid)``
    order for ``functions[i]`` — i.e. the target would appear in that
    function's top-k result.
    """
    target = rows[query.tid]
    if not _matches(schema, target, query.selections):
        return []
    qualifying = []
    for index, fn in enumerate(query.functions):
        t_score = fn.score([target[schema.position(d)] for d in fn.dims])
        preceding = 0
        for tid, row in enumerate(rows):
            if tid == query.tid or not _matches(schema, row, query.selections):
                continue
            score = fn.score([row[schema.position(d)] for d in fn.dims])
            if (score, tid) < (t_score, query.tid):
                preceding += 1
        if preceding < query.k:
            qualifying.append(index)
    return qualifying


def _matches(schema, row: Sequence, selections) -> bool:
    return all(
        row[schema.position(name)] == value
        for name, value in selections.items()
    )
