"""Synthetic data generation (Section 5.1.1).

The paper's synthetic datasets are parameterized by S (selection
dimensions), R (ranking dimensions), T (tuples) and C (cardinality of each
selection dimension); defaults there are S=3 (cube experiments) / 12
(fragment experiments), R=2, T=3M, C=10.  We expose the same knobs plus
value-distribution choices (uniform / zipf / gaussian / correlated) so
skew-sensitivity can be explored, and return data ready for
:meth:`Database.load_table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..relational.database import Database
from ..relational.schema import Schema, ranking_attr, selection_attr
from ..relational.table import Table


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic dataset.

    ``selection_distribution`` / ``ranking_distribution`` choose how values
    are drawn:

    * selection: ``"uniform"`` or ``"zipf"`` (skewed category popularity),
    * ranking: ``"uniform"``, ``"gaussian"`` (clustered mid-space) or
      ``"correlated"`` (dimensions positively correlated, the hard case for
      independence assumptions).
    """

    num_selection_dims: int = 3
    num_ranking_dims: int = 2
    num_tuples: int = 10_000
    cardinality: int = 10
    selection_distribution: str = "uniform"
    ranking_distribution: str = "uniform"
    zipf_skew: float = 1.2
    seed: int = 13

    def __post_init__(self) -> None:
        if self.num_selection_dims < 0:
            raise ValueError("num_selection_dims must be >= 0")
        if self.num_ranking_dims < 1:
            raise ValueError("num_ranking_dims must be >= 1")
        if self.num_tuples < 1:
            raise ValueError("num_tuples must be >= 1")
        if self.cardinality < 1:
            raise ValueError("cardinality must be >= 1")
        if self.selection_distribution not in ("uniform", "zipf"):
            raise ValueError(f"unknown selection distribution {self.selection_distribution!r}")
        if self.ranking_distribution not in ("uniform", "gaussian", "correlated"):
            raise ValueError(f"unknown ranking distribution {self.ranking_distribution!r}")

    @property
    def selection_names(self) -> tuple[str, ...]:
        return tuple(f"a{i}" for i in range(1, self.num_selection_dims + 1))

    @property
    def ranking_names(self) -> tuple[str, ...]:
        return tuple(f"n{i}" for i in range(1, self.num_ranking_dims + 1))

    def schema(self) -> Schema:
        return Schema.of(
            [selection_attr(name, self.cardinality) for name in self.selection_names]
            + [ranking_attr(name) for name in self.ranking_names]
        )


@dataclass
class SyntheticDataset:
    """Generated rows plus their schema and spec."""

    spec: SyntheticSpec
    schema: Schema
    rows: list[tuple] = field(repr=False, default_factory=list)

    def load_into(self, db: Database, name: str = "R") -> Table:
        """Load into a database and return the table."""
        return db.load_table(name, self.schema, self.rows)


def generate(spec: SyntheticSpec, workers: int = 1) -> SyntheticDataset:
    """Generate a dataset according to ``spec`` (deterministic per seed).

    ``workers > 1`` generates the tuple range in shards, one independent
    RNG stream per shard.  Child streams derive from
    ``np.random.SeedSequence(spec.seed).spawn(...)`` — spawn keys, not
    ``seed ^ worker_id`` arithmetic, because XOR-derived seeds collide
    across datasets (worker 1 of seed 0 equals worker 0 of seed 1) and
    correlated streams would silently deflate the dataset's entropy.
    The output is deterministic per ``(seed, workers)`` pair; shard
    results are concatenated in shard order.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        rows = _generate_rows(spec, np.random.default_rng(spec.seed), spec.num_tuples)
        return SyntheticDataset(spec=spec, schema=spec.schema(), rows=rows)

    from ..core.parallel import shard_ranges

    ranges = shard_ranges(spec.num_tuples, workers)
    children = np.random.SeedSequence(spec.seed).spawn(len(ranges))
    rows = []
    for child, (start, stop) in zip(children, ranges):
        rows.extend(_generate_rows(spec, np.random.default_rng(child), stop - start))
    return SyntheticDataset(spec=spec, schema=spec.schema(), rows=rows)


def _generate_rows(
    spec: SyntheticSpec, rng: np.random.Generator, count: int
) -> list[tuple]:
    """``count`` rows from one RNG stream (column draws in fixed order)."""
    columns: list[np.ndarray] = []
    for _ in range(spec.num_selection_dims):
        columns.append(_selection_column(spec, rng, count))
    ranking = _ranking_columns(spec, rng, count)
    columns.extend(ranking)
    return [
        tuple(
            int(col[i]) if j < spec.num_selection_dims else float(col[i])
            for j, col in enumerate(columns)
        )
        for i in range(count)
    ]


def _selection_column(
    spec: SyntheticSpec, rng: np.random.Generator, count: int
) -> np.ndarray:
    if spec.selection_distribution == "uniform":
        return rng.integers(0, spec.cardinality, size=count)
    # zipf: rank-skewed popularity over the fixed domain
    ranks = np.arange(1, spec.cardinality + 1, dtype=float)
    weights = ranks ** (-spec.zipf_skew)
    weights /= weights.sum()
    return rng.choice(spec.cardinality, size=count, p=weights)


def _ranking_columns(
    spec: SyntheticSpec, rng: np.random.Generator, count: int
) -> list[np.ndarray]:
    shape = (count, spec.num_ranking_dims)
    if spec.ranking_distribution == "uniform":
        data = rng.random(shape)
    elif spec.ranking_distribution == "gaussian":
        data = np.clip(rng.normal(0.5, 0.15, size=shape), 0.0, 1.0)
    else:  # correlated
        base = rng.random(count)
        noise = rng.normal(0.0, 0.1, size=shape)
        data = np.clip(base[:, None] + noise, 0.0, 1.0)
    return [data[:, j] for j in range(spec.num_ranking_dims)]
