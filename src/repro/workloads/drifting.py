"""Drifting workloads: phased query streams and shifted-row appends.

The adaptive-routing bench (``python -m repro.bench adaptive``) needs a
workload whose *shape* changes mid-stream — that is what an adaptive
planner exists for and what any single static configuration loses to.
Two generators cover the two kinds of drift:

* :class:`DriftingQueryStream` — a phased, zipf-skewed query stream.
  Each :class:`WorkloadPhase` names which selection-dimension sets are
  hot and how selective they are; within a phase, queries draw their
  selection set from the phase's sets and their values zipf-skewed, so
  popularity counters (router cost book, cuboid advisor) see a stable
  regime that then *rotates* at the phase boundary.
* :func:`shifted_rows` — appended tuples whose ranking values are pushed
  into a narrow high band, the canonical distribution drift that
  unbalances an equi-depth grid (new data piles into the top bins) and
  should trip :class:`~repro.route.drift.DriftDetector`.

Everything is seeded and deterministic: the bench replays the exact same
stream for the adaptive and every static configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..ranking.functions import LinearFunction
from ..relational.query import TopKQuery
from ..relational.schema import Schema


@dataclass(frozen=True)
class WorkloadPhase:
    """One stable regime of a drifting query stream.

    Parameters
    ----------
    selection_sets:
        The selection-dimension combinations queries in this phase use,
        e.g. ``(("a1",), ("a1", "a2"))``.  Draws cycle deterministically
        (query ``i`` uses set ``i mod len(sets)``) so every set gets a
        fixed share regardless of phase length.
    queries:
        How many queries the phase emits.
    k:
        Top-k depth for the phase's queries.
    zipf_s:
        Skew of the per-dimension value draw: value ``v`` is drawn with
        weight ``1 / (v + 1)**zipf_s``.  ``0`` is uniform; ``>= 1`` makes
        a few values hot — hot values repeat query shapes, which is what
        lets observed costs accumulate.
    """

    selection_sets: tuple = ()
    queries: int = 50
    k: int = 10
    zipf_s: float = 1.0

    def __post_init__(self) -> None:
        if not self.selection_sets:
            raise ValueError("a phase needs at least one selection set")
        if self.queries < 1:
            raise ValueError("queries must be >= 1")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")


@dataclass
class DriftingQueryStream:
    """A deterministic phased query stream over ``schema``.

    Ranking is a balanced linear function over the first two ranking
    dimensions (the paper's default query family); selection values draw
    zipf-skewed per the active phase.
    """

    schema: Schema
    phases: Sequence[WorkloadPhase]
    seed: int = 211
    num_ranking_dims: int = 2
    _weights_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("need at least one phase")
        for phase in self.phases:
            for dims in phase.selection_sets:
                for dim in dims:
                    if dim not in self.schema.selection_names:
                        raise ValueError(f"unknown selection dimension {dim!r}")
        if self.num_ranking_dims > len(self.schema.ranking_names):
            raise ValueError("not enough ranking dimensions in schema")

    @property
    def total_queries(self) -> int:
        return sum(phase.queries for phase in self.phases)

    def _zipf_value(self, rng: random.Random, cardinality: int, s: float) -> int:
        if s == 0:
            return rng.randrange(cardinality)
        key = (cardinality, s)
        weights = self._weights_cache.get(key)
        if weights is None:
            weights = [1.0 / (v + 1) ** s for v in range(cardinality)]
            self._weights_cache[key] = weights
        return rng.choices(range(cardinality), weights=weights, k=1)[0]

    def __iter__(self) -> Iterator[TopKQuery]:
        rng = random.Random(self.seed)
        rank_dims = list(self.schema.ranking_names)[: self.num_ranking_dims]
        ranking = LinearFunction(rank_dims, [1.0] * len(rank_dims))
        for phase in self.phases:
            sets = phase.selection_sets or ((),)
            for i in range(phase.queries):
                dims = sets[i % len(sets)]
                selections = {}
                for dim in dims:
                    cardinality = self.schema.attribute(dim).cardinality
                    assert cardinality is not None
                    selections[dim] = self._zipf_value(
                        rng, cardinality, phase.zipf_s
                    )
                yield TopKQuery(phase.k, selections, ranking)


def shifted_rows(
    schema: Schema,
    count: int,
    seed: int = 977,
    low: float = 0.85,
    high: float = 1.0,
) -> list[tuple]:
    """Appended rows whose ranking values sit in a narrow high band.

    Selection values stay uniform (the categorical marginals do not
    drift); ranking values draw uniformly from ``[low, high)`` instead of
    ``[0, 1)``, concentrating the appended mass in the top equi-depth
    bins — the drift :func:`~repro.route.drift.repartition_cube` exists
    to repair.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if not low < high:
        raise ValueError("need low < high")
    rng = random.Random(seed)
    rows = []
    for _ in range(count):
        row = []
        for attribute in schema.attributes:
            if attribute.is_selection:
                assert attribute.cardinality is not None
                row.append(rng.randrange(attribute.cardinality))
            else:
                row.append(low + (high - low) * rng.random())
        rows.append(tuple(row))
    return rows
