"""Workspace persistence: save/load a database with its cubes.

Everything in this library lives over an in-memory simulated device, so
"persistence" means snapshotting: a :class:`Workspace` bundles a database,
its source table name, and any materialized cubes, and serializes to a
single checksummed file.  Loading restores the exact object graph — page
images, directories, delta stores — so a saved cube answers queries
identically without rebuilding.

The format is a small header (magic, version, payload length, SHA-256)
followed by a pickle of the workspace.  The checksum catches truncation
and bit rot; the version gate prevents silently unpickling a layout from
a different release.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path

from .core.cube import RankingCube
from .relational.database import Database
from .storage.device import PageCorruptionError, StorageError

_MAGIC = b"RCUBEWS\n"
FORMAT_VERSION = 1


class PersistError(Exception):
    """Raised on malformed, corrupted, or incompatible snapshot files."""


def _fsync_directory(directory: Path) -> None:
    """Flush a directory's metadata (the rename itself) to stable storage.

    Platforms without directory fds (Windows) skip this; the rename is
    still atomic there, only its durability ordering is weaker.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_replace(target: str | Path, data: bytes) -> int:
    """Crash-atomic, durable file write: temp + fsync + rename + dir fsync.

    The claim :meth:`Workspace.save` makes — a crash leaves the previous
    file or the new one, never a torn one — needs all four steps: writing
    the sibling temp file, fsyncing it *before* the rename (otherwise the
    rename can reach disk ahead of the data and a crash exposes a
    garbage-filled target), the atomic :func:`os.replace`, and an fsync of
    the parent directory so the rename itself is durable.  A failure at
    any point removes the temp file, so a retry never collides with (or
    silently succeeds against) a half-written leftover.

    This is the **single** durability helper: workspace snapshots, shard
    snapshots, manifest (re)writes, and WAL segment rotations
    (:mod:`repro.ingest.wal`) all land through it, so every on-disk
    artifact shares one crash discipline.
    """
    target = Path(target)
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_directory(target.parent)
    return len(data)


#: Backwards-compatible alias (pre-unification name).
atomic_write_bytes = atomic_replace


@dataclass
class Workspace:
    """A database plus its materialized ranking cubes, as one unit.

    Parameters
    ----------
    db:
        The database owning the shared device (tables, indexes, and cube
        storage all live on it).
    cubes:
        Named cubes over tables of ``db`` (name -> cube); names are free
        form, conventionally the table name they index.
    """

    db: Database
    cubes: dict[str, RankingCube] = field(default_factory=dict)

    def add_cube(self, name: str, cube: RankingCube) -> None:
        if name in self.cubes:
            raise PersistError(f"workspace already has a cube named {name!r}")
        self.cubes[name] = cube

    def cube(self, name: str) -> RankingCube:
        try:
            return self.cubes[name]
        except KeyError:
            raise PersistError(f"no cube named {name!r} in workspace") from None

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> int:
        """Write the workspace snapshot; returns bytes written.

        The write is atomic *and durable* (temp file + fsync + rename +
        parent-directory fsync — see :func:`atomic_replace`): a crash
        mid-save leaves either the previous snapshot or the new one, never
        a torn one, and a failed attempt leaves no ``.tmp`` residue behind.
        A storage fault while flushing dirty pages aborts the save with a
        typed :class:`PersistError` — the dirty frames keep their state, so
        the save can be retried once the fault clears.
        """
        # flush buffered pages so the device holds the complete state
        try:
            self.db.pool.flush()
        except StorageError as exc:
            raise PersistError(
                f"cannot snapshot: flushing dirty pages failed ({exc})"
            ) from exc
        payload = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).digest()
        header = (
            _MAGIC
            + FORMAT_VERSION.to_bytes(4, "little")
            + len(payload).to_bytes(8, "little")
            + digest
        )
        return atomic_replace(path, header + payload)

    def compact(self, name: str, **kwargs) -> "object":
        """Run one foreground delta compaction on the named cube.

        Merges the cube's delta store into its materialization (see
        :class:`~repro.core.compaction.CubeCompactor`) and returns the
        :class:`~repro.core.compaction.CompactionReport`.  Extra keyword
        arguments pass through to the compactor.  The swap is atomic with
        respect to :meth:`save`: the cube pickles its state under the same
        lock the compactor swaps under, so a snapshot taken concurrently
        captures the pre- or post-merge cube, never a mix.
        """
        from .core.compaction import CubeCompactor

        cube = self.cube(name)
        return CubeCompactor(cube, self.db.pool, **kwargs).compact_once()

    def verify_integrity(self) -> list[int]:
        """Read every device page, returning the ids that are damaged.

        The crash-consistency check: after reopening a workspace (or after
        a simulated crash dropped unflushed pages), every page must be
        readable or *detectably* invalid.  Detection is by typed error;
        anything else propagates as the bug it would be.
        """
        device = self.db.device
        corrupt: list[int] = []
        for page_id in range(device.num_pages):
            try:
                device.read(page_id)
            except (PageCorruptionError, StorageError):
                corrupt.append(page_id)
        return corrupt

    @classmethod
    def load(cls, path: str | Path) -> "Workspace":
        """Read and validate a snapshot written by :meth:`save`."""
        try:
            data = Path(path).read_bytes()
        except OSError as exc:
            raise PersistError(f"cannot read snapshot: {exc}") from exc
        stream = io.BytesIO(data)
        magic = stream.read(len(_MAGIC))
        if magic != _MAGIC:
            raise PersistError("not a ranking-cube workspace snapshot")
        version = int.from_bytes(stream.read(4), "little")
        if version != FORMAT_VERSION:
            raise PersistError(
                f"snapshot format v{version} is not supported "
                f"(this build reads v{FORMAT_VERSION})"
            )
        length = int.from_bytes(stream.read(8), "little")
        digest = stream.read(32)
        payload = stream.read()
        if len(payload) != length:
            raise PersistError(
                f"snapshot truncated: header promises {length} bytes, "
                f"found {len(payload)}"
            )
        if hashlib.sha256(payload).digest() != digest:
            raise PersistError("snapshot checksum mismatch (corrupted file)")
        workspace = pickle.loads(payload)
        if not isinstance(workspace, cls):
            raise PersistError(
                f"snapshot holds a {type(workspace).__name__}, not a Workspace"
            )
        return workspace


def save_workspace(
    db: Database, cubes: dict[str, RankingCube], path: str | Path
) -> int:
    """Convenience wrapper: bundle and save in one call."""
    return Workspace(db=db, cubes=dict(cubes)).save(path)


def load_workspace(path: str | Path) -> Workspace:
    """Convenience wrapper around :meth:`Workspace.load`."""
    return Workspace.load(path)


# ----------------------------------------------------------------------
# sharded workspaces
# ----------------------------------------------------------------------

SHARD_MANIFEST = "manifest.json"
SHARD_MANIFEST_VERSION = 1


@dataclass
class ShardedWorkspace:
    """A sharded deployment (:class:`~repro.shard.builder.ShardedCube`)
    persisted as one :class:`Workspace` snapshot per shard plus a JSON
    manifest.

    Layout under the target directory::

        shard_0000.rcube   # Workspace: shard 0's database + cube
        shard_0001.rcube
        ...
        manifest.json      # shard map, tid maps, per-file SHA-256

    Crash consistency is two-level: every file lands via
    :func:`atomic_replace` (temp + fsync + rename + dir fsync), and
    the manifest — written *last* — pins the exact shard-file contents
    by SHA-256.  A crash between shard saves leaves a mix of old and new
    shard files, but the old manifest then fails its checksum pins and
    :meth:`load` reports the torn state as a typed :class:`PersistError`
    instead of silently serving a cross-version deployment.
    """

    cube: "object"  # ShardedCube (typed loosely: persist must not import shard)

    def _write_shard_snapshot(self, directory: Path, shard) -> dict:
        """Persist one shard's snapshot; return its manifest entry."""
        cube = self.cube
        filename = f"shard_{shard.shard_id:04d}.rcube"
        cubes = {cube.name: shard.cube} if shard.cube is not None else {}
        Workspace(db=shard.db, cubes=cubes).save(directory / filename)
        digest = hashlib.sha256((directory / filename).read_bytes())
        return {
            "shard_id": shard.shard_id,
            "file": filename,
            "sha256": digest.hexdigest(),
            "rows": len(shard.tid_map),
            "epoch": 0 if shard.cube is None else shard.cube.epoch,
            "tid_map": list(shard.tid_map),
            "build_kwargs": {
                k: v
                for k, v in shard.build_kwargs.items()
                if isinstance(v, (int, float, str, bool))
            },
        }

    def _write_manifest(self, directory: Path, shard_entries: list) -> dict:
        """Assemble and durably land the manifest (atomic_replace)."""
        cube = self.cube
        manifest = {
            "format_version": SHARD_MANIFEST_VERSION,
            "name": cube.name,
            "shard_map": cube.shard_map.to_manifest(),
            "num_rows": cube.num_rows,
            "shards": shard_entries,
        }
        atomic_replace(
            directory / SHARD_MANIFEST,
            json.dumps(manifest, indent=2).encode() + b"\n",
        )
        return manifest

    def save(self, directory: str | Path) -> dict:
        """Write every shard snapshot, then the manifest; returns it."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        shard_entries = [
            self._write_shard_snapshot(directory, shard)
            for shard in self.cube.shards
        ]
        return self._write_manifest(directory, shard_entries)

    def save_shard(self, directory: str | Path, shard_id: int) -> dict:
        """Re-persist one shard and re-pin it in the manifest.

        The maintenance path (:mod:`repro.ingest`) calls this after a
        shard's compaction bumps its cuboid epochs: only the changed
        shard's snapshot is rewritten, then the manifest — both through
        :func:`atomic_replace`, the same fsync-temp + fsync-dir
        discipline as a full :meth:`save`.  A crash between the two
        writes leaves the *old* manifest pinning the *old* shard file's
        hash against a new shard file, which :meth:`load` reports as a
        typed torn-save :class:`PersistError` instead of silently mixing
        generations.  Returns the updated manifest.
        """
        directory = Path(directory)
        try:
            manifest = json.loads((directory / SHARD_MANIFEST).read_text())
        except OSError as exc:
            raise PersistError(
                f"save_shard needs an existing manifest: {exc}"
            ) from exc
        shards = {int(e["shard_id"]): e for e in manifest["shards"]}
        if shard_id not in shards:
            raise PersistError(f"manifest has no shard {shard_id}")
        shard = self.cube.shards[shard_id]
        shards[shard_id] = self._write_shard_snapshot(directory, shard)
        return self._write_manifest(
            directory, [shards[sid] for sid in sorted(shards)]
        )

    @classmethod
    def load(cls, directory: str | Path) -> "ShardedWorkspace":
        """Reload a sharded deployment saved by :meth:`save`."""
        from .shard.builder import CubeShard, ShardedCube
        from .shard.map import ShardMap

        directory = Path(directory)
        try:
            manifest = json.loads((directory / SHARD_MANIFEST).read_text())
        except OSError as exc:
            raise PersistError(f"cannot read shard manifest: {exc}") from exc
        except ValueError as exc:
            raise PersistError(f"malformed shard manifest: {exc}") from exc
        version = manifest.get("format_version")
        if version != SHARD_MANIFEST_VERSION:
            raise PersistError(
                f"shard manifest v{version} is not supported "
                f"(this build reads v{SHARD_MANIFEST_VERSION})"
            )
        name = manifest["name"]
        shard_map = ShardMap.from_manifest(manifest["shard_map"])
        shards = []
        for entry in manifest["shards"]:
            path = directory / entry["file"]
            try:
                data = path.read_bytes()
            except OSError as exc:
                raise PersistError(
                    f"missing shard snapshot {entry['file']!r}: {exc}"
                ) from exc
            if hashlib.sha256(data).hexdigest() != entry["sha256"]:
                raise PersistError(
                    f"shard snapshot {entry['file']!r} does not match the "
                    "manifest (torn multi-file save or corruption)"
                )
            workspace = Workspace.load(path)
            table = workspace.db.table(name)
            shards.append(
                CubeShard(
                    shard_id=int(entry["shard_id"]),
                    db=workspace.db,
                    table=table,
                    cube=workspace.cubes.get(name),
                    tid_map=[int(t) for t in entry["tid_map"]],
                    build_kwargs=dict(entry.get("build_kwargs", {})),
                )
            )
        shards.sort(key=lambda s: s.shard_id)
        schema = shards[0].table.schema if shards else None
        if schema is None:
            raise PersistError("shard manifest lists no shards")
        cube = ShardedCube(schema, name, shard_map, shards)
        if cube.num_rows != int(manifest["num_rows"]):
            raise PersistError(
                f"manifest promises {manifest['num_rows']} rows, "
                f"tid maps hold {cube.num_rows}"
            )
        return cls(cube=cube)


def save_sharded_workspace(cube, directory: str | Path) -> dict:
    """Convenience wrapper: persist a :class:`ShardedCube` deployment."""
    return ShardedWorkspace(cube=cube).save(directory)


def load_sharded_workspace(directory: str | Path):
    """Convenience wrapper: returns the reloaded :class:`ShardedCube`."""
    return ShardedWorkspace.load(directory).cube
