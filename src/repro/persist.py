"""Workspace persistence: save/load a database with its cubes.

Everything in this library lives over an in-memory simulated device, so
"persistence" means snapshotting: a :class:`Workspace` bundles a database,
its source table name, and any materialized cubes, and serializes to a
single checksummed file.  Loading restores the exact object graph — page
images, directories, delta stores — so a saved cube answers queries
identically without rebuilding.

The format is a small header (magic, version, payload length, SHA-256)
followed by a pickle of the workspace.  The checksum catches truncation
and bit rot; the version gate prevents silently unpickling a layout from
a different release.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path

from .core.cube import RankingCube
from .relational.database import Database
from .storage.device import PageCorruptionError, StorageError

_MAGIC = b"RCUBEWS\n"
FORMAT_VERSION = 1


class PersistError(Exception):
    """Raised on malformed, corrupted, or incompatible snapshot files."""


@dataclass
class Workspace:
    """A database plus its materialized ranking cubes, as one unit.

    Parameters
    ----------
    db:
        The database owning the shared device (tables, indexes, and cube
        storage all live on it).
    cubes:
        Named cubes over tables of ``db`` (name -> cube); names are free
        form, conventionally the table name they index.
    """

    db: Database
    cubes: dict[str, RankingCube] = field(default_factory=dict)

    def add_cube(self, name: str, cube: RankingCube) -> None:
        if name in self.cubes:
            raise PersistError(f"workspace already has a cube named {name!r}")
        self.cubes[name] = cube

    def cube(self, name: str) -> RankingCube:
        try:
            return self.cubes[name]
        except KeyError:
            raise PersistError(f"no cube named {name!r} in workspace") from None

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> int:
        """Write the workspace snapshot; returns bytes written.

        The write is atomic (temp file + rename): a crash mid-save leaves
        either the previous snapshot or none, never a torn one.  A storage
        fault while flushing dirty pages aborts the save with a typed
        :class:`PersistError` — the dirty frames keep their state, so the
        save can be retried once the fault clears.
        """
        # flush buffered pages so the device holds the complete state
        try:
            self.db.pool.flush()
        except StorageError as exc:
            raise PersistError(
                f"cannot snapshot: flushing dirty pages failed ({exc})"
            ) from exc
        payload = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).digest()
        header = (
            _MAGIC
            + FORMAT_VERSION.to_bytes(4, "little")
            + len(payload).to_bytes(8, "little")
            + digest
        )
        data = header + payload
        target = Path(path)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, target)
        return len(data)

    def compact(self, name: str, **kwargs) -> "object":
        """Run one foreground delta compaction on the named cube.

        Merges the cube's delta store into its materialization (see
        :class:`~repro.core.compaction.CubeCompactor`) and returns the
        :class:`~repro.core.compaction.CompactionReport`.  Extra keyword
        arguments pass through to the compactor.  The swap is atomic with
        respect to :meth:`save`: the cube pickles its state under the same
        lock the compactor swaps under, so a snapshot taken concurrently
        captures the pre- or post-merge cube, never a mix.
        """
        from .core.compaction import CubeCompactor

        cube = self.cube(name)
        return CubeCompactor(cube, self.db.pool, **kwargs).compact_once()

    def verify_integrity(self) -> list[int]:
        """Read every device page, returning the ids that are damaged.

        The crash-consistency check: after reopening a workspace (or after
        a simulated crash dropped unflushed pages), every page must be
        readable or *detectably* invalid.  Detection is by typed error;
        anything else propagates as the bug it would be.
        """
        device = self.db.device
        corrupt: list[int] = []
        for page_id in range(device.num_pages):
            try:
                device.read(page_id)
            except (PageCorruptionError, StorageError):
                corrupt.append(page_id)
        return corrupt

    @classmethod
    def load(cls, path: str | Path) -> "Workspace":
        """Read and validate a snapshot written by :meth:`save`."""
        try:
            data = Path(path).read_bytes()
        except OSError as exc:
            raise PersistError(f"cannot read snapshot: {exc}") from exc
        stream = io.BytesIO(data)
        magic = stream.read(len(_MAGIC))
        if magic != _MAGIC:
            raise PersistError("not a ranking-cube workspace snapshot")
        version = int.from_bytes(stream.read(4), "little")
        if version != FORMAT_VERSION:
            raise PersistError(
                f"snapshot format v{version} is not supported "
                f"(this build reads v{FORMAT_VERSION})"
            )
        length = int.from_bytes(stream.read(8), "little")
        digest = stream.read(32)
        payload = stream.read()
        if len(payload) != length:
            raise PersistError(
                f"snapshot truncated: header promises {length} bytes, "
                f"found {len(payload)}"
            )
        if hashlib.sha256(payload).digest() != digest:
            raise PersistError("snapshot checksum mismatch (corrupted file)")
        workspace = pickle.loads(payload)
        if not isinstance(workspace, cls):
            raise PersistError(
                f"snapshot holds a {type(workspace).__name__}, not a Workspace"
            )
        return workspace


def save_workspace(
    db: Database, cubes: dict[str, RankingCube], path: str | Path
) -> int:
    """Convenience wrapper: bundle and save in one call."""
    return Workspace(db=db, cubes=dict(cubes)).save(path)


def load_workspace(path: str | Path) -> Workspace:
    """Convenience wrapper around :meth:`Workspace.load`."""
    return Workspace.load(path)
