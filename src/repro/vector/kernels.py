"""Batched kernels over columnar blocks.

Every kernel is *bitwise-equivalent* to the row executor's scalar code —
same IEEE-754 operations in the same order per element — so the vector
executor can substitute them under the byte-identical-answers contract.
The one place where naive vectorization would break that contract is
``pow``: NumPy's vectorized ``power`` is not bit-compatible with
CPython's ``**`` (measured ~0.1% one-ulp drift on this class of inputs),
which is why :class:`repro.ranking.functions.LpDistance` computes its
p=1/p=2 families with plain abs/multiply in both forms and falls back to
a scalar loop for general exponents.

Kernels dispatch on the active backend at call time (see
:func:`repro.vector.layout.numpy_or_none`): NumPy arrays when available,
stdlib buffers + loops otherwise.  Either backend returns the same
logical values.
"""

from __future__ import annotations

from typing import Sequence

from .layout import ColumnarBlock, numpy_or_none


def decode_block(records, num_dims: int) -> ColumnarBlock:
    """Row records -> columnar block (see :meth:`ColumnarBlock.from_records`)."""
    return ColumnarBlock.from_records(records, num_dims)


def apply_selection(block: ColumnarBlock, qualifying) -> "object | None":
    """Positions of ``block.tids`` that survive a tid-set selection.

    ``qualifying=None`` (no selection conditions) returns ``None`` —
    "every tuple", with no mask materialized.  Otherwise returns the
    indices of qualifying tuples in block order (an ``int64`` array under
    NumPy, a list under the fallback); the bitmask itself is an
    implementation detail of the NumPy path (``isin`` + ``nonzero``).
    """
    if qualifying is None:
        return None
    np = numpy_or_none()
    tids = block.tids
    if np is not None and isinstance(tids, np.ndarray):
        if not qualifying:
            return np.empty(0, dtype=np.int64)
        wanted = np.fromiter(qualifying, dtype=np.int64, count=len(qualifying))
        mask = np.isin(tids, wanted)
        return np.nonzero(mask)[0]
    return [i for i, tid in enumerate(tids) if tid in qualifying]


def gather_columns(
    block: ColumnarBlock, positions: Sequence[int], indices=None
) -> list:
    """The ranking-dimension columns of a block, optionally row-filtered."""
    np = numpy_or_none()
    cols = [block.columns[p] for p in positions]
    if indices is None:
        return cols
    if np is not None and isinstance(block.tids, np.ndarray):
        return [col[indices] for col in cols]
    return [[col[i] for i in indices] for col in cols]


def gather_tids(block: ColumnarBlock, indices=None):
    """The tid column, row-filtered to match :func:`gather_columns`."""
    np = numpy_or_none()
    if indices is None:
        return block.tids
    if np is not None and isinstance(block.tids, np.ndarray):
        return block.tids[indices]
    return [block.tids[i] for i in indices]


def eval_scores(fn, block: ColumnarBlock, positions: Sequence[int], indices=None):
    """Batched ranking-function evaluation over one block.

    Returns one score per (selected) tuple, bitwise-identical to scoring
    each tuple with ``fn.score`` — the delegation target,
    :meth:`repro.ranking.functions.RankingFunction.eval_batch`, owns that
    contract per function family.
    """
    return fn.eval_batch(gather_columns(block, positions, indices))


def block_bounds(
    grid, bids: Sequence[int], fn, positions: Sequence[int]
) -> list[float]:
    """Batched corner bounds ``f(bid)`` for many blocks at once.

    Builds the sub-boxes of every bid (restricted to the ranking
    dimensions, as :meth:`BlockGrid.sub_box` does) with array arithmetic
    and hands them to ``fn.min_over_boxes``.  The box edges are gathered,
    not recomputed, so they match the scalar path bit for bit.
    """
    if not bids:
        return []
    np = numpy_or_none()
    if np is None:
        return [
            float(fn.min_over_box(*grid.sub_box(bid, positions))) for bid in bids
        ]
    bins = grid.bins_per_dim
    strides = []
    stride = 1
    for count in bins:
        strides.append(stride)
        stride *= count
    bid_arr = np.asarray(bids, dtype=np.int64)
    lowers, uppers = [], []
    for p in positions:
        edges = np.asarray(grid.boundaries[p], dtype=np.float64)
        coords = (bid_arr // strides[p]) % bins[p]
        lowers.append(edges[coords])
        uppers.append(edges[coords + 1])
    bounds = fn.min_over_boxes(lowers, uppers)
    return [float(b) for b in bounds]


def topk_select(scores, tids, k: int | None) -> list[tuple[float, int]]:
    """The block's best ``k`` ``(score, tid)`` pairs, ties tid-ascending.

    Implements the frontier-scoring tie contract with a *stable* batched
    sort: ``lexsort`` with tid as the secondary key, so tuples sharing a
    score come out smallest-tid-first — exactly the order the row
    executor's heap retains (see ``_push_topk``).  ``k=None`` returns
    every pair, still fully ordered.

    Only the best ``k`` of a block can ever enter the global top-k, so
    truncation here never changes an answer — it only spares the merger
    per-tuple heap work.
    """
    np = numpy_or_none()
    if np is not None and isinstance(scores, np.ndarray):
        n = len(scores)
        if n == 0:
            return []
        order = np.lexsort((tids, scores))
        if k is not None and k < n:
            order = order[:k]
        return list(zip(scores[order].tolist(), tids[order].tolist()))
    pairs = sorted(zip(scores, tids))
    if k is not None:
        pairs = pairs[:k]
    return [(float(score), int(tid)) for score, tid in pairs]
