"""Vectorized columnar block execution (ROADMAP open item 1).

The per-tuple Python loops in block decode, bound evaluation, and
frontier scoring are the system's hot path everywhere the benchmarks
look.  This package batches them: a struct-of-arrays *columnar* layout
for base blocks (:mod:`repro.vector.layout`) plus batched kernels over
whole blocks (:mod:`repro.vector.kernels`) — decode, selection masking,
score evaluation, corner-bound computation, and top-k selection.

NumPy accelerates every kernel when available; a pure-stdlib fallback
(``array``/``memoryview`` buffers, plain loops) keeps the package fully
functional without it.  Either way the kernels are **bitwise-identical**
to the row executor's scalar arithmetic — that equivalence contract is
what lets ``use_vector=True`` switch the executor's evaluate step over
wholesale while the row format stays behind as the property-tested
oracle (see ``tests/properties/test_vector_equivalence.py``).
"""

from .layout import HAVE_NUMPY, ColumnarBlock, numpy_or_none
from .kernels import (
    apply_selection,
    block_bounds,
    decode_block,
    eval_scores,
    topk_select,
)

__all__ = [
    "HAVE_NUMPY",
    "ColumnarBlock",
    "numpy_or_none",
    "apply_selection",
    "block_bounds",
    "decode_block",
    "eval_scores",
    "topk_select",
]
