"""Columnar (struct-of-arrays) layout for base blocks.

A :class:`ColumnarBlock` holds one base block's tuples decomposed into a
tid column plus one value column per ranking dimension, instead of the
row format's ``[(tid, (v0, v1, ...)), ...]`` list of per-tuple objects.
The batched kernels in :mod:`repro.vector.kernels` operate on these
columns directly, so scoring a block touches R contiguous buffers
instead of N boxed tuples.

Backend selection happens once at import: NumPy when importable (columns
are ``float64``/``int64`` ndarrays), otherwise stdlib ``array`` buffers
with plain-Python kernels.  Tests force the fallback by monkeypatching
:data:`_np` to ``None`` — every call site re-reads it through
:func:`numpy_or_none` rather than binding the module at import time.

Both backends decode to *identical logical content*: the round-trip
``ColumnarBlock.from_records(rs).to_records() == rs`` holds exactly
(float64 columns preserve every bit of the stored binary64 values).
"""

from __future__ import annotations

from array import array
from typing import Iterable, Sequence

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - the stdlib-only environment
    _np = None

#: True when the NumPy backend is active by default.
HAVE_NUMPY = _np is not None


def numpy_or_none():
    """The active NumPy module, or ``None`` under the stdlib fallback.

    Call-time indirection (not an import-time ``from``-binding) so tests
    can flip the backend per-test by monkeypatching ``layout._np``.
    """
    return _np


class ColumnarBlock:
    """One base block in struct-of-arrays form.

    Attributes
    ----------
    tids:
        Tuple ids, in the block's storage order (``int64`` ndarray or
        ``array('q')``).
    columns:
        One value buffer per ranking dimension, aligned with ``tids``
        (``float64`` ndarrays or ``array('d')``), ordered as the grid's
        dimensions.
    """

    __slots__ = ("tids", "columns")

    def __init__(self, tids, columns: Sequence):
        self.tids = tids
        self.columns = tuple(columns)

    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls, records: Iterable[tuple[int, tuple[float, ...]]], num_dims: int
    ) -> "ColumnarBlock":
        """Decode the row format of ``BaseBlockTable.get_base_block``.

        ``num_dims`` fixes the column count so an empty block still has
        the right shape.
        """
        records = records if isinstance(records, list) else list(records)
        np = numpy_or_none()
        if np is not None:
            n = len(records)
            tids = np.fromiter((r[0] for r in records), dtype=np.int64, count=n)
            if n:
                values = np.array([r[1] for r in records], dtype=np.float64)
                columns = [np.ascontiguousarray(values[:, d]) for d in range(num_dims)]
            else:
                columns = [np.empty(0, dtype=np.float64) for _ in range(num_dims)]
            return cls(tids, columns)
        tids_arr = array("q")
        columns_arr = [array("d") for _ in range(num_dims)]
        for tid, values in records:
            tids_arr.append(int(tid))
            for d in range(num_dims):
                columns_arr[d].append(values[d])
        return cls(tids_arr, columns_arr)

    def to_records(self) -> list[tuple[int, tuple[float, ...]]]:
        """The row format back out (exact inverse of :meth:`from_records`)."""
        tids = self.tids.tolist() if hasattr(self.tids, "tolist") else list(self.tids)
        cols = [
            col.tolist() if hasattr(col, "tolist") else list(col)
            for col in self.columns
        ]
        return [
            (int(tid), tuple(col[i] for col in cols))
            for i, tid in enumerate(tids)
        ]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tids)

    @property
    def num_dims(self) -> int:
        return len(self.columns)

    @property
    def nbytes(self) -> int:
        """Approximate resident size (what the columnar cache bounds)."""
        total = getattr(self.tids, "nbytes", len(self.tids) * 8)
        for col in self.columns:
            total += getattr(col, "nbytes", len(col) * 8)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarBlock(n={len(self)}, dims={self.num_dims})"
