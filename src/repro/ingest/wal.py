"""Write-ahead log for streaming ingestion.

Every append batch is logged — and fsynced — *before* it touches the
table heap or the cube's delta store, so a crash at any instant loses at
most rows the caller was never acknowledged for.  Recovery replays the
log suffix past the last snapshot into a reconstructed delta
(:mod:`repro.ingest.stream`).

On-disk format
--------------
A WAL file is a flat sequence of records.  Each record reuses the
:mod:`repro.serve.wire` framing discipline — a 5-byte header of magic
byte ``W`` plus a little-endian ``uint32`` payload length — followed by
a 32-byte SHA-256 digest of the payload, then the payload itself (a
pickled :class:`WalRecord`)::

    +---+----------+--------------------+---------------------+
    | W | len: u32 | sha256(payload)×32 | payload (pickle)    |
    +---+----------+--------------------+---------------------+

The checksum makes torn tails *detectable*: a crash mid-append leaves a
final record with a short header, a short payload, or a digest mismatch,
and :meth:`WriteAheadLog.replay` recovers exactly the longest valid
prefix — never a partially-applied batch, never garbage rows.  The
Hypothesis suite (``tests/properties/test_wal_roundtrip.py``) pins this
for arbitrary interleavings and arbitrary single-byte truncations.

Durability discipline: record bytes are buffered-written then fsynced
(:meth:`WriteAheadLog.sync`); log rewrites (checkpoint truncation,
torn-tail repair) land through :func:`repro.persist.atomic_replace`,
the same temp + fsync + rename + dir-fsync helper every other on-disk
artifact uses.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path

from ..serve.wire import FRAME_HEADER

WAL_MAGIC = b"W"
_DIGEST_SIZE = 32
_RECORD_OVERHEAD = FRAME_HEADER.size + _DIGEST_SIZE


class WalError(Exception):
    """Raised on WAL misuse (closed log, unpicklable rows)."""


@dataclass(frozen=True)
class WalRecord:
    """One logged append batch.

    ``first_tid`` is the global tid the batch's first row receives;
    successive rows take successive tids (exactly how
    ``Table.insert_rows`` / ``ShardedCube.append_rows`` assign them), so
    replay can tell already-applied records (``first_tid`` below the
    snapshot's row count) from the suffix that must be re-applied.
    """

    first_tid: int
    rows: tuple

    @property
    def last_tid(self) -> int:
        return self.first_tid + len(self.rows) - 1


def encode_record(record: WalRecord) -> bytes:
    """Frame one record: header + digest + pickled payload."""
    payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).digest()
    return FRAME_HEADER.pack(WAL_MAGIC, len(payload)) + digest + payload


def decode_records(data: bytes) -> tuple[list[WalRecord], int]:
    """Parse ``data`` into records plus the valid-prefix length.

    Stops at the first record that is short (torn tail), fails its
    checksum, or carries the wrong magic — everything before it is
    returned, and the second element is the byte offset where the valid
    prefix ends.  ``valid_len == len(data)`` means the log is clean.
    """
    records: list[WalRecord] = []
    offset = 0
    while offset + _RECORD_OVERHEAD <= len(data):
        magic, length = FRAME_HEADER.unpack_from(data, offset)
        if magic != WAL_MAGIC:
            break
        start = offset + _RECORD_OVERHEAD
        end = start + length
        if end > len(data):
            break
        digest = data[offset + FRAME_HEADER.size : start]
        payload = data[start:end]
        if hashlib.sha256(payload).digest() != digest:
            break
        record = pickle.loads(payload)
        if not isinstance(record, WalRecord):
            break
        records.append(record)
        offset = end
    return records, offset


class WriteAheadLog:
    """Append-only, checksummed record log over one file.

    Parameters
    ----------
    path:
        The log file; created empty on first append if missing.
    fault_hook:
        Test seam: called with ``"wal-append"`` after a record's bytes
        are handed to the OS (buffered, *not yet durable* — the kill
        harness models a torn write here) and with ``"wal-fsync"`` after
        the fsync makes them durable.  Raising simulates a kill.
    """

    def __init__(self, path: str | Path, fault_hook=None):
        self.path = Path(path)
        self.fault_hook = fault_hook
        self._fh = None
        self._closed = False
        self.appended_records = 0
        self.synced_bytes = 0

    # ------------------------------------------------------------------
    def _handle(self):
        if self._closed:
            raise WalError(f"WAL {self.path} is closed")
        if self._fh is None:
            self._fh = open(self.path, "ab")
        return self._fh

    def append(self, record: WalRecord) -> int:
        """Buffer-write one record; returns its encoded size in bytes.

        The record is **not durable** until :meth:`sync` returns — the
        ingestor always pairs the two before applying the batch, which
        is the whole write-ahead invariant.
        """
        data = encode_record(record)
        fh = self._handle()
        fh.write(data)
        fh.flush()
        self._fault("wal-append")
        self.appended_records += 1
        return len(data)

    def sync(self) -> None:
        """fsync buffered records to stable storage."""
        if self._fh is not None:
            os.fsync(self._fh.fileno())
            self.synced_bytes = self._fh.tell()
        self._fault("wal-fsync")

    def append_durable(self, record: WalRecord) -> int:
        """Convenience: :meth:`append` + :meth:`sync` as one call."""
        size = self.append(record)
        self.sync()
        return size

    def _fault(self, point: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point)

    # ------------------------------------------------------------------
    def replay(self) -> list[WalRecord]:
        """All records in the longest valid prefix (empty if no file)."""
        records, _valid = self.scan()
        return records

    def scan(self) -> tuple[list[WalRecord], int]:
        """Records plus valid-prefix byte length (0 records if no file)."""
        self._flush_buffered()
        try:
            data = self.path.read_bytes()
        except OSError:
            return [], 0
        return decode_records(data)

    def torn_tail_bytes(self) -> int:
        """How many trailing bytes fail validation (0 for a clean log)."""
        self._flush_buffered()
        try:
            size = self.path.stat().st_size
        except OSError:
            return 0
        _records, valid = self.scan()
        return size - valid

    def _flush_buffered(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    # ------------------------------------------------------------------
    def rewrite(self, records: list[WalRecord]) -> int:
        """Atomically replace the log's contents with ``records``.

        Used by checkpoints (drop records the snapshot already covers)
        and by recovery (chop a torn tail so later appends land on a
        clean boundary).  Goes through
        :func:`repro.persist.atomic_replace`, so a crash mid-rewrite
        leaves the old log or the new one, never a torn file.  Returns
        the new log size in bytes.
        """
        from ..persist import atomic_replace

        self.close_handle()
        data = b"".join(encode_record(r) for r in records)
        size = atomic_replace(self.path, data)
        self._closed = False
        return size

    def close_handle(self) -> None:
        """Drop the append handle (reopened lazily on next append)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def close(self) -> None:
        self.close_handle()
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
