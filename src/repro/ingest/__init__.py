"""Durable streaming ingestion for ranking cubes.

The paper assumes a static base table; this package makes the
incremental-maintenance path (``refresh_delta`` + ``CubeCompactor``)
production-shaped: a checksummed write-ahead log ahead of the delta
store, LSM-style tiered delta runs driving compaction, checkpoints that
bound recovery time, and crash recovery that replays the WAL suffix
into a reconstructed delta.  See DESIGN.md §16.
"""

from .stream import (
    INGEST_FAULT_POINTS,
    DeltaRun,
    DeltaTiers,
    IngestError,
    ShardedStreamIngestor,
    StreamIngestor,
)
from .wal import WalError, WalRecord, WriteAheadLog, decode_records, encode_record

__all__ = [
    "INGEST_FAULT_POINTS",
    "DeltaRun",
    "DeltaTiers",
    "IngestError",
    "ShardedStreamIngestor",
    "StreamIngestor",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "decode_records",
    "encode_record",
]
