"""Durable streaming ingestion: WAL → delta tiers → compaction.

:class:`StreamIngestor` wraps one :class:`~repro.persist.Workspace` and
turns batch appends into a crash-safe pipeline:

1. **log** — the batch is framed into the write-ahead log and fsynced
   (:class:`~repro.ingest.wal.WriteAheadLog`) *before* anything else
   sees it; the caller is only acknowledged once the record is durable,
2. **apply** — rows land in the table heap and
   :meth:`RankingCube.refresh_delta` absorbs them into the in-memory
   delta store, immediately visible to query snapshots,
3. **tier** — :class:`DeltaTiers` accounts the batch as an L0 run and
   cascades LSM-style merges (``fanout`` runs of a level fold into one
   run a level up), so compaction pressure is measured in *runs*, not
   just raw tuples,
4. **compact** — once the tiers cross ``compact_threshold`` tuples, the
   ingestor drains the delta through
   :class:`~repro.core.compaction.CubeCompactor`; the compactor's
   ``on_swap`` callback retires the drained runs,
5. **checkpoint** — :meth:`StreamIngestor.checkpoint` compacts, saves a
   workspace snapshot, and truncates the WAL to records the snapshot
   does not cover — which is what bounds recovery time: replay work is
   proportional to rows appended since the last checkpoint, never to
   the table's lifetime.

Crash recovery (:meth:`StreamIngestor.recover`) loads the last snapshot,
replays the WAL suffix whose tids the snapshot does not already hold
(asserting tid contiguity), repairs any torn tail by rewriting the valid
prefix, and returns a ready ingestor whose state is bit-identical to a
synchronous oracle that applied exactly the durable batches — the
invariant the kill matrix (``tests/faults/test_ingest_crash.py``)
checks at ≥100 seeds per fault point.

:class:`ShardedStreamIngestor` is the same pipeline over a
:class:`~repro.shard.builder.ShardedCube`: one global WAL, per-shard
compactors, per-shard snapshot refresh through
:meth:`~repro.persist.ShardedWorkspace.save_shard` (so a compaction
epoch bump re-pins just that shard in the manifest), and a per-row
replay that routes each logged tuple to its shard and skips tids a
fresher per-shard snapshot already covers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from ..core.compaction import CubeCompactor
from ..core.cube import RankingCube
from ..persist import PersistError, ShardedWorkspace, Workspace
from .wal import WalError, WalRecord, WriteAheadLog

#: Named instants where the ingestion kill matrix may kill a run, in
#: pipeline order.  ``wal-append`` fires with the record buffered but
#: not durable (the harness models a torn write by chopping the file
#: tail); ``wal-fsync`` fires with the record durable; the last two
#: fire after apply, so recovery must replay the batch from the log.
INGEST_FAULT_POINTS = (
    "wal-append",       # record buffered to the OS, not yet fsynced
    "wal-fsync",        # record durable on stable storage
    "delta-tier-flush", # batch flushed into the L0 run list
    "compaction-swap",  # compactor swapped the merged materialization in
)


class IngestError(Exception):
    """Raised on ingestor misuse or snapshot/WAL mismatch at recovery."""


@dataclass
class DeltaRun:
    """One tier run: a contiguous tid range of not-yet-compacted rows."""

    level: int
    rows: int
    first_tid: int
    last_tid: int


class DeltaTiers:
    """LSM-style accounting of the cube's delta store as tiered runs.

    The delta itself stays one flat list inside the cube (queries merge
    it wholesale); the tiers track *how it got there* — every append
    batch is an L0 run, and ``fanout`` runs of any level merge into one
    run a level above.  That gives the ingestor an LSM-shaped signal for
    compaction pressure (run count and tier depth, not just tuple
    count) and gives the kill matrix its ``delta-tier-flush`` instant.
    """

    def __init__(self, fanout: int = 4, fault_hook=None):
        if fanout < 2:
            raise IngestError(f"tier fanout must be >= 2, got {fanout}")
        self.fanout = fanout
        self.fault_hook = fault_hook
        #: level -> runs at that level, oldest (lowest tid) first.
        self.levels: dict[int, list[DeltaRun]] = {}
        self.flushes = 0
        self.merges = 0

    def add_run(self, first_tid: int, rows: int) -> None:
        """Flush one append batch into L0 and cascade fanout merges."""
        if rows <= 0:
            return
        run = DeltaRun(0, rows, first_tid, first_tid + rows - 1)
        self.levels.setdefault(0, []).append(run)
        self.flushes += 1
        if self.fault_hook is not None:
            self.fault_hook("delta-tier-flush")
        level = 0
        while len(self.levels.get(level, ())) >= self.fanout:
            merged_runs = self.levels.pop(level)
            merged = DeltaRun(
                level + 1,
                sum(r.rows for r in merged_runs),
                min(r.first_tid for r in merged_runs),
                max(r.last_tid for r in merged_runs),
            )
            self.levels.setdefault(level + 1, []).append(merged)
            self.levels[level + 1].sort(key=lambda r: r.first_tid)
            self.merges += 1
            level += 1

    def drain(self, absorbed: int) -> None:
        """Retire ``absorbed`` rows, oldest tids first (compaction ran)."""
        remaining = absorbed
        runs = sorted(
            (r for rs in self.levels.values() for r in rs),
            key=lambda r: r.first_tid,
        )
        survivors: list[DeltaRun] = []
        for run in runs:
            if remaining >= run.rows:
                remaining -= run.rows
                continue
            if remaining:
                run = DeltaRun(
                    run.level,
                    run.rows - remaining,
                    run.first_tid + remaining,
                    run.last_tid,
                )
                remaining = 0
            survivors.append(run)
        self.levels = {}
        for run in survivors:
            self.levels.setdefault(run.level, []).append(run)

    @property
    def total_rows(self) -> int:
        return sum(r.rows for rs in self.levels.values() for r in rs)

    @property
    def run_count(self) -> int:
        return sum(len(rs) for rs in self.levels.values())

    @property
    def depth(self) -> int:
        return 1 + max(self.levels, default=-1)

    def describe(self) -> dict:
        return {
            "runs": self.run_count,
            "rows": self.total_rows,
            "depth": self.depth,
            "flushes": self.flushes,
            "merges": self.merges,
        }


class StreamIngestor:
    """Durable append pipeline for one unsharded workspace.

    Parameters
    ----------
    workspace:
        The workspace holding the table and its cube (same ``name``).
    name:
        Table/cube name inside the workspace.
    wal_path:
        The write-ahead log file.
    compact_threshold:
        Compact once the tiers hold at least this many tuples.
    tier_fanout:
        Runs per level before an LSM merge cascades upward.
    fault_hook:
        Test seam forwarded to the WAL, the tiers, and (translated) the
        compactor — see :data:`INGEST_FAULT_POINTS`.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    def __init__(
        self,
        workspace: Workspace,
        name: str,
        wal_path: str | Path,
        *,
        compact_threshold: int = 256,
        tier_fanout: int = 4,
        fault_hook=None,
        tracer=None,
        registry=None,
    ):
        self.workspace = workspace
        self.name = name
        self.table = workspace.db.table(name)
        self.cube = workspace.cube(name)
        self.compact_threshold = compact_threshold
        self.fault_hook = fault_hook
        self.registry = registry
        self.wal = WriteAheadLog(wal_path, fault_hook=fault_hook)
        self.tiers = DeltaTiers(tier_fanout, fault_hook=fault_hook)
        self.compactor = CubeCompactor(
            self.cube,
            workspace.db.pool,
            min_delta=compact_threshold,
            tracer=tracer,
            fault_hook=self._compactor_fault,
            on_swap=self.tiers.drain,
        )
        self.snapshot_path: Path | None = None
        self.last_checkpoint_rows = self.table.num_rows
        self.recovered_rows = 0
        self.repaired_tail_bytes = 0

    # ------------------------------------------------------------------
    def _compactor_fault(self, point: str) -> None:
        # The matrix names the post-swap instant "compaction-swap"; the
        # compactor's finer-grained points stay available to its own
        # crash suite and are not re-exported here.
        if point == "swapped" and self.fault_hook is not None:
            self.fault_hook("compaction-swap")

    def _count(self, name: str, value: int = 1) -> None:
        if self.registry is not None:
            self.registry.counter(name).inc(value)

    # ------------------------------------------------------------------
    def append(self, rows) -> int:
        """Durably log then apply one batch; returns rows appended.

        Write-ahead ordering: the WAL record is fsynced before the
        table heap or delta store change, so an acknowledged batch
        survives any crash and an unacknowledged one is at worst a torn
        tail that recovery chops.
        """
        rows = [tuple(row) for row in rows]
        if not rows:
            return 0
        record = WalRecord(first_tid=self.table.num_rows, rows=tuple(rows))
        self.wal.append_durable(record)
        self._count("ingest.wal.records")
        self.table.insert_rows(rows)
        self.cube.refresh_delta(self.table)
        self.tiers.add_run(record.first_tid, len(rows))
        self._count("ingest.rows", len(rows))
        self._count("ingest.batches")
        if self.tiers.total_rows >= self.compact_threshold:
            self.compact()
        return len(rows)

    def compact(self):
        """Drain the delta through the compactor; retires tier runs."""
        report = self.compactor.compact_once()
        if report.swapped:
            self._count("ingest.compactions")
        return report

    # ------------------------------------------------------------------
    def checkpoint(self, snapshot_path: str | Path | None = None) -> dict:
        """Compact, snapshot the workspace, truncate the WAL.

        After a checkpoint the WAL holds only records the snapshot does
        not cover (normally none), so recovery replay work is bounded
        by rows appended since this call.  Returns checkpoint stats.
        """
        path = Path(snapshot_path) if snapshot_path else self.snapshot_path
        if path is None:
            raise IngestError("checkpoint needs a snapshot path")
        self.snapshot_path = path
        self.compact()
        bytes_written = self.workspace.save(path)
        covered = self.table.num_rows
        keep = [r for r in self.wal.replay() if r.last_tid >= covered]
        wal_bytes = self.wal.rewrite(keep)
        self.last_checkpoint_rows = covered
        self._count("ingest.checkpoints")
        return {
            "rows": covered,
            "snapshot_bytes": bytes_written,
            "wal_bytes": wal_bytes,
            "wal_records": len(keep),
        }

    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        snapshot_path: str | Path,
        name: str,
        wal_path: str | Path,
        **kwargs,
    ) -> "StreamIngestor":
        """Reload the last snapshot and replay the WAL suffix.

        Torn tails are chopped (the valid prefix is rewritten in place
        via ``atomic_replace``) so subsequent appends land on a clean
        record boundary.  Replayed records must be tid-contiguous with
        the snapshot; a gap means the WAL and snapshot are from
        different histories and raises :class:`IngestError`.
        """
        started = time.perf_counter()
        workspace = Workspace.load(snapshot_path)
        wal = WriteAheadLog(wal_path)
        records, _valid = wal.scan()
        torn = wal.torn_tail_bytes()
        if torn:
            wal.rewrite(records)
        ingestor = cls(workspace, name, wal_path, **kwargs)
        ingestor.snapshot_path = Path(snapshot_path)
        ingestor.repaired_tail_bytes = torn
        table = ingestor.table
        replayed = 0
        for record in records:
            if record.last_tid < table.num_rows:
                continue  # snapshot already covers the whole batch
            if record.first_tid > table.num_rows:
                raise IngestError(
                    f"WAL gap: snapshot holds {table.num_rows} rows, next "
                    f"record starts at tid {record.first_tid}"
                )
            suffix = record.rows[table.num_rows - record.first_tid :]
            first = table.num_rows
            table.insert_rows(suffix)
            ingestor.tiers.add_run(first, len(suffix))
            replayed += len(suffix)
        ingestor.cube.refresh_delta(table)
        ingestor.recovered_rows = replayed
        ingestor.last_checkpoint_rows = table.num_rows - replayed
        ingestor.recovery_wall_s = time.perf_counter() - started
        ingestor._count("ingest.recover.rows", replayed)
        return ingestor

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "StreamIngestor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardedStreamIngestor:
    """The durable append pipeline over a sharded deployment.

    One global WAL logs every batch under global tids; application
    routes rows through the shard map exactly like
    :meth:`ShardedCube.append_rows`.  Compaction is per shard, and when
    the deployment has been checkpointed to a directory, each shard's
    epoch bump is re-persisted through
    :meth:`~repro.persist.ShardedWorkspace.save_shard` — only that
    shard's snapshot plus the manifest are rewritten, both via
    ``atomic_replace``.

    Recovery is per-row: a shard refreshed by ``save_shard`` after the
    last full checkpoint already holds tids the other shards' snapshots
    lack, so replay routes every logged row to its shard and skips tids
    that shard already owns.
    """

    def __init__(
        self,
        cube,
        wal_path: str | Path,
        *,
        directory: str | Path | None = None,
        compact_threshold: int = 256,
        tier_fanout: int = 4,
        fault_hook=None,
        registry=None,
    ):
        self.cube = cube  # ShardedCube
        self.directory = Path(directory) if directory else None
        self.compact_threshold = compact_threshold
        self.fault_hook = fault_hook
        self.registry = registry
        self.wal = WriteAheadLog(wal_path, fault_hook=fault_hook)
        self.tiers = DeltaTiers(tier_fanout, fault_hook=fault_hook)
        self._workspace = ShardedWorkspace(cube=cube)
        self.last_checkpoint_rows = cube.num_rows
        self.recovered_rows = 0
        self.repaired_tail_bytes = 0

    def _count(self, name: str, value: int = 1, **labels) -> None:
        if self.registry is not None:
            self.registry.counter(name, **labels).inc(value)

    # ------------------------------------------------------------------
    def append(self, rows) -> int:
        """Durably log then route one batch across the shards."""
        rows = [tuple(row) for row in rows]
        if not rows:
            return 0
        record = WalRecord(first_tid=self.cube.num_rows, rows=tuple(rows))
        self.wal.append_durable(record)
        self._count("ingest.wal.records")
        self.cube.append_rows(rows)
        self.tiers.add_run(record.first_tid, len(rows))
        self._count("ingest.rows", len(rows))
        for shard in self.cube.shards:
            if (
                shard.cube is not None
                and shard.cube.delta_size >= self.compact_threshold
            ):
                self.compact_shard(shard.shard_id)
        return len(rows)

    def compact_shard(self, shard_id: int):
        """Compact one shard; re-pin its snapshot if checkpointed.

        The compactor's swap bumps the shard's cuboid epochs; when the
        deployment has a manifest on disk the new generation is
        persisted immediately through ``save_shard`` so a reload serves
        the compacted materialization instead of replaying the delta.
        """
        shard = self.cube.shards[shard_id]
        if shard.cube is None:
            return None
        compactor = CubeCompactor(
            shard.cube,
            shard.db.pool,
            min_delta=1,
            fault_hook=self._compactor_fault,
        )
        report = compactor.compact_once()
        if report.swapped:
            self._count("ingest.compactions", shard=shard_id)
            if self.directory is not None:
                self._workspace.save_shard(self.directory, shard_id)
        return report

    def _compactor_fault(self, point: str) -> None:
        if point == "swapped" and self.fault_hook is not None:
            self.fault_hook("compaction-swap")

    # ------------------------------------------------------------------
    def checkpoint(self, directory: str | Path | None = None) -> dict:
        """Compact every shard, save all snapshots, truncate the WAL."""
        target = Path(directory) if directory else self.directory
        if target is None:
            raise IngestError("checkpoint needs a snapshot directory")
        self.directory = target
        for shard in self.cube.shards:
            if shard.cube is not None and shard.cube.delta_size:
                compactor = CubeCompactor(
                    shard.cube,
                    shard.db.pool,
                    min_delta=1,
                    fault_hook=self._compactor_fault,
                )
                compactor.compact_once()
        self.tiers.drain(self.tiers.total_rows)
        self._workspace.save(target)
        covered = self.cube.num_rows
        keep = [r for r in self.wal.replay() if r.last_tid >= covered]
        wal_bytes = self.wal.rewrite(keep)
        self.last_checkpoint_rows = covered
        self._count("ingest.checkpoints")
        return {
            "rows": covered,
            "wal_bytes": wal_bytes,
            "wal_records": len(keep),
        }

    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        directory: str | Path,
        wal_path: str | Path,
        **kwargs,
    ) -> "ShardedStreamIngestor":
        """Reload the sharded deployment and replay the WAL per row.

        Every logged row routes to its shard via the shard map; rows
        whose global tid the shard already owns (a ``save_shard``
        refresh beat the full checkpoint) are skipped, everything else
        is re-applied in tid order, preserving the sorted tid maps the
        serving layer's binary searches rely on.
        """
        started = time.perf_counter()
        sworkspace = ShardedWorkspace.load(directory)
        cube = sworkspace.cube
        wal = WriteAheadLog(wal_path)
        records, _valid = wal.scan()
        torn = wal.torn_tail_bytes()
        if torn:
            wal.rewrite(records)
        ingestor = cls(cube, wal_path, directory=directory, **kwargs)
        ingestor.repaired_tail_bytes = torn
        replayed = 0
        touched: set[int] = set()
        for record in records:
            for offset, row in enumerate(record.rows):
                gtid = record.first_tid + offset
                if gtid in cube._owner:
                    continue  # a per-shard refresh already covers it
                shard_id = cube.shard_map.shard_of_append_row(
                    gtid, row, cube.schema
                )
                shard = cube.shards[shard_id]
                shard.table.insert_rows([row])
                cube._owner[gtid] = (shard_id, len(shard.tid_map))
                shard.tid_map.append(gtid)
                cube._num_rows += 1
                touched.add(shard_id)
                replayed += 1
        # Global tids must come out contiguous: snapshots plus the
        # replayed suffix cover 0..num_rows-1 exactly, or the WAL and
        # snapshot directory are from different histories.
        if cube.num_rows and max(cube._owner) != cube.num_rows - 1:
            raise IngestError(
                f"WAL gap: deployment holds {cube.num_rows} rows but the "
                f"highest covered tid is {max(cube._owner)}"
            )
        for shard_id in sorted(touched):
            shard = cube.shards[shard_id]
            if shard.cube is None:
                shard.cube = RankingCube.build(
                    shard.table, **shard.build_kwargs
                )
            else:
                shard.cube.refresh_delta(shard.table)
        if replayed:
            ingestor.tiers.add_run(cube.num_rows - replayed, replayed)
        ingestor.recovered_rows = replayed
        ingestor.last_checkpoint_rows = cube.num_rows - replayed
        ingestor.recovery_wall_s = time.perf_counter() - started
        return ingestor

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "ShardedStreamIngestor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
