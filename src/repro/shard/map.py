"""Shard routing: which shard owns a row, and which shards a query needs.

Two modes, chosen at build time and frozen into the map:

* ``tid_range`` — contiguous near-equal global-tid ranges (the same
  :func:`~repro.core.parallel.shard_ranges` split the parallel builder
  uses).  Every query fans out to all shards; appended rows spread
  round-robin by global tid so no shard becomes the append hot spot.
* ``selection_key`` — rows hash by one selection dimension's encoded
  value (``value % num_shards``).  A query that pins the key dimension
  with an equality selection routes to exactly one shard; all other
  queries fan out.  Appends follow the same hash.

The map is a value object: it round-trips through the sharded
workspace manifest (:meth:`to_manifest` / :meth:`from_manifest`) so a
reloaded deployment routes exactly as the one that saved it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.parallel import shard_ranges
from ..relational.schema import Schema

MODES = ("tid_range", "selection_key")


class ShardError(Exception):
    """Raised for invalid shard configuration or routing requests."""


@dataclass(frozen=True)
class ShardMap:
    """Immutable routing policy for one sharded relation.

    Parameters
    ----------
    num_shards:
        Shard count (``>= 1``); shard ids are ``0..num_shards-1``.
    mode:
        ``"tid_range"`` or ``"selection_key"`` (see module docstring).
    key_dim:
        The hashing selection dimension (``selection_key`` mode only).
    ranges:
        Per-shard ``[lo, hi)`` global-tid ranges of the *initial* build
        (``tid_range`` mode only); shards past the row count get empty
        ranges so every shard id stays addressable.
    replication_factor:
        Copies of each shard the serving tier keeps (``1`` = primary
        only, no failover — the pre-replication behaviour).  ``N > 1``
        asks :class:`~repro.serve.sharded.ShardedQueryService` to hold
        ``N - 1`` warm replicas per shard and fail queries over to them
        when the primary dies instead of aborting.
    """

    num_shards: int
    mode: str = "tid_range"
    key_dim: str | None = None
    ranges: tuple[tuple[int, int], ...] = ()
    replication_factor: int = 1

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ShardError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.replication_factor < 1:
            raise ShardError(
                f"replication_factor must be >= 1, got {self.replication_factor}"
            )
        if self.mode not in MODES:
            raise ShardError(f"unknown shard mode {self.mode!r} (want one of {MODES})")
        if self.mode == "selection_key" and not self.key_dim:
            raise ShardError("selection_key mode needs a key_dim")
        if self.mode == "tid_range" and len(self.ranges) != self.num_shards:
            raise ShardError(
                f"tid_range mode needs one range per shard "
                f"({len(self.ranges)} ranges for {self.num_shards} shards)"
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def tid_range(
        cls, num_rows: int, num_shards: int, replication_factor: int = 1
    ) -> "ShardMap":
        """Contiguous near-equal ranges over ``[0, num_rows)`` global tids."""
        ranges = shard_ranges(num_rows, num_shards)
        while len(ranges) < num_shards:  # more shards than rows: empty tails
            tail = ranges[-1][1] if ranges else 0
            ranges.append((tail, tail))
        return cls(
            num_shards=num_shards,
            mode="tid_range",
            ranges=tuple(ranges),
            replication_factor=replication_factor,
        )

    @classmethod
    def selection_key(
        cls,
        schema: Schema,
        key_dim: str,
        num_shards: int,
        replication_factor: int = 1,
    ) -> "ShardMap":
        """Hash rows by one selection dimension's encoded value."""
        attr = schema.attribute(key_dim)
        if not attr.is_selection:
            raise ShardError(f"{key_dim!r} is not a selection attribute")
        return cls(
            num_shards=num_shards,
            mode="selection_key",
            key_dim=key_dim,
            replication_factor=replication_factor,
        )

    @property
    def replicas_per_shard(self) -> int:
        """Warm standbys per shard (0 when replication is off)."""
        return self.replication_factor - 1

    def with_replication(self, replication_factor: int) -> "ShardMap":
        """A copy of this map at a different replication factor."""
        return ShardMap(
            num_shards=self.num_shards,
            mode=self.mode,
            key_dim=self.key_dim,
            ranges=self.ranges,
            replication_factor=replication_factor,
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of_build_row(
        self, tid: int, row: Sequence, schema: Schema
    ) -> int:
        """Owner of one initial-load row (``tid`` = its global tid)."""
        if self.mode == "selection_key":
            assert self.key_dim is not None
            return int(row[schema.position(self.key_dim)]) % self.num_shards
        for shard_id, (lo, hi) in enumerate(self.ranges):
            if lo <= tid < hi:
                return shard_id
        raise ShardError(f"tid {tid} outside every build range")

    def shard_of_append_row(
        self, tid: int, row: Sequence, schema: Schema
    ) -> int:
        """Owner of one appended row (spread round-robin in tid mode)."""
        if self.mode == "selection_key":
            return self.shard_of_build_row(tid, row, schema)
        return tid % self.num_shards

    def shards_for_query(self, selections: Mapping[str, int]) -> tuple[int, ...]:
        """Shard ids a query with these selections must consult.

        Only an equality selection on the ``selection_key`` dimension
        prunes — tid ranges carry no selection information, so every
        other case fans out to all shards.
        """
        if self.mode == "selection_key" and self.key_dim in selections:
            return (int(selections[self.key_dim]) % self.num_shards,)
        return tuple(range(self.num_shards))

    # ------------------------------------------------------------------
    # manifest round-trip
    # ------------------------------------------------------------------
    def to_manifest(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "mode": self.mode,
            "key_dim": self.key_dim,
            "ranges": [list(r) for r in self.ranges],
            "replication_factor": self.replication_factor,
        }

    @classmethod
    def from_manifest(cls, data: Mapping) -> "ShardMap":
        return cls(
            num_shards=int(data["num_shards"]),
            mode=str(data["mode"]),
            key_dim=data.get("key_dim"),
            ranges=tuple((int(lo), int(hi)) for lo, hi in data.get("ranges", ())),
            # pre-replication manifests carry no factor; they mean 1
            replication_factor=int(data.get("replication_factor", 1)),
        )
