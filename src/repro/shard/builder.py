"""Per-shard cube construction and the sharded-relation facade.

:func:`build_sharded` routes an initial load through a
:class:`~repro.shard.map.ShardMap`, builds one fully independent stack
per shard — device, buffer pool, table, :class:`RankingCube` (reusing
the partitioned parallel builder per shard via ``workers``) — and wraps
them in a :class:`ShardedCube` that preserves *global* tid semantics:
global tids are assigned sequentially in load order, exactly as a
single-table :meth:`~repro.relational.table.Table.insert_rows` would,
so a sharded deployment and an unsharded one agree on every tid a query
answer names.

Each shard's table stores rows under shard-local tids (its own device
knows nothing of the others); :class:`CubeShard.tid_map` translates
local back to global, and :meth:`ShardedCube.locate_tid` routes a
global tid to its owning shard for projections and point fetches.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..core.cube import DEFAULT_BLOCK_SIZE, RankingCube
from ..relational.database import Database
from ..relational.schema import Schema
from ..relational.table import Table
from .map import ShardError, ShardMap


@dataclass
class CubeShard:
    """One shard's independent stack: device + table + cube + tid map.

    ``cube`` is ``None`` while the shard is empty (a cube cannot be
    built over zero rows — e.g. a hash bucket no build row landed in);
    the first append materializes it from the stored build arguments.
    """

    shard_id: int
    db: Database
    table: Table
    cube: RankingCube | None
    #: shard-local tid -> global tid, in insertion order.
    tid_map: list[int] = field(default_factory=list)
    #: RankingCube.build kwargs, kept for deferred first-append builds.
    build_kwargs: dict = field(default_factory=dict)

    def to_global(self, local_tid: int) -> int:
        return self.tid_map[local_tid]

    @property
    def num_rows(self) -> int:
        return len(self.tid_map)


def clone_shard(shard: CubeShard) -> CubeShard:
    """Deep-copy one shard's entire stack — a warm replica.

    The pickle round-trip is the same serialization a
    :class:`~repro.persist.Workspace` snapshot uses, so the clone holds
    its own device, buffer pool, table, and cube with identical page
    images and delta state; object identity inside the stack (the table
    registered in the database, the shared pool) is preserved by the
    pickle memo.  The thread-mode serving tier promotes such clones
    when a primary's device dies mid-query.  Note a clone of a shard
    whose device is a :class:`~repro.storage.faults.FaultyBlockDevice`
    copies the *injector state too* — failure tests must arm kill rules
    on the primary only after cloning.
    """
    db, table, cube = pickle.loads(
        pickle.dumps(
            (shard.db, shard.table, shard.cube),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    )
    return CubeShard(
        shard_id=shard.shard_id,
        db=db,
        table=table,
        cube=cube,
        tid_map=list(shard.tid_map),
        build_kwargs=dict(shard.build_kwargs),
    )


class ShardedCube:
    """A relation + ranking cube split over N independent shards.

    Construct via :func:`build_sharded`.  The facade owns global tid
    assignment (sequential in load/append order) and the global→shard
    lookup; everything else — storage, cube maintenance, query I/O — is
    per-shard and fully isolated, which is what lets one shard's device
    fail without corrupting another's state.
    """

    def __init__(
        self,
        schema: Schema,
        name: str,
        shard_map: ShardMap,
        shards: Sequence[CubeShard],
    ):
        if len(shards) != shard_map.num_shards:
            raise ShardError(
                f"{len(shards)} shards for a {shard_map.num_shards}-way map"
            )
        self.schema = schema
        self.name = name
        self.shard_map = shard_map
        self.shards = list(shards)
        # global tid -> (shard_id, local tid)
        self._owner: dict[int, tuple[int, int]] = {}
        self._num_rows = 0
        for shard in self.shards:
            for local, gtid in enumerate(shard.tid_map):
                self._owner[gtid] = (shard.shard_id, local)
            self._num_rows += len(shard.tid_map)

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.shard_map.num_shards

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def locate_tid(self, gtid: int) -> tuple[CubeShard, int]:
        """The shard owning a global tid, plus its local tid there."""
        try:
            shard_id, local = self._owner[gtid]
        except KeyError:
            raise ShardError(f"no shard owns tid {gtid}") from None
        return self.shards[shard_id], local

    def fetch_by_tid(self, gtid: int) -> tuple:
        """Point-fetch one row by global tid (projection support)."""
        shard, local = self.locate_tid(gtid)
        return shard.table.fetch_by_tid(local)

    def cold_cache(self) -> None:
        """Drop every shard's buffered pages (per-query cold start)."""
        for shard in self.shards:
            shard.db.cold_cache()

    def replace_shard(self, shard_id: int, replacement: CubeShard) -> None:
        """Swap a shard's stack for a replica (failover promotion).

        The replacement must cover exactly the same global tids as the
        shard it replaces — a stale clone (rows appended after it was
        taken) is rejected rather than silently losing rows.  The owner
        map is keyed by shard id, so it stays valid across the swap.
        """
        current = self.shards[shard_id]
        if replacement.shard_id != shard_id:
            raise ShardError(
                f"replica is for shard {replacement.shard_id}, "
                f"not {shard_id}"
            )
        if replacement.tid_map != current.tid_map:
            raise ShardError(
                f"replica of shard {shard_id} covers {len(replacement.tid_map)} "
                f"row(s), the shard holds {len(current.tid_map)} — stale clone"
            )
        self.shards[shard_id] = replacement

    # ------------------------------------------------------------------
    def append_rows(self, rows: Iterable[Sequence]) -> int:
        """Append rows with fresh sequential global tids; returns count.

        Rows route per :meth:`ShardMap.shard_of_append_row`; each
        touched shard bulk-inserts its slice and refreshes its cube's
        delta store, so the next query snapshot on every shard sees the
        new tuples (under local tids — the serving layer translates).
        """
        buckets: dict[int, list[tuple[int, Sequence]]] = {}
        count = 0
        for row in rows:
            gtid = self._num_rows + count
            shard_id = self.shard_map.shard_of_append_row(gtid, row, self.schema)
            buckets.setdefault(shard_id, []).append((gtid, row))
            count += 1
        for shard_id in sorted(buckets):
            shard = self.shards[shard_id]
            pairs = buckets[shard_id]
            shard.table.insert_rows([row for _gtid, row in pairs])
            if shard.cube is None:
                # deferred first build: the shard was empty until now, so
                # the fresh cube already covers every row — no delta needed
                shard.cube = RankingCube.build(shard.table, **shard.build_kwargs)
            else:
                shard.cube.refresh_delta(shard.table)
            for gtid, _row in pairs:
                self._owner[gtid] = (shard.shard_id, len(shard.tid_map))
                shard.tid_map.append(gtid)
        self._num_rows += count
        return count


def build_sharded(
    schema: Schema,
    rows: Iterable[Sequence],
    num_shards: int = 2,
    *,
    name: str = "R",
    mode: str = "tid_range",
    key_dim: str | None = None,
    replication_factor: int = 1,
    block_size: int = DEFAULT_BLOCK_SIZE,
    workers: int = 1,
    buffer_capacity: int = 4096,
    database_factory: Callable[[int], Database] | None = None,
    **cube_kwargs,
) -> ShardedCube:
    """Load + build an N-way sharded ranking cube in one call.

    Parameters
    ----------
    schema, rows:
        The relation; global tids are assigned sequentially in ``rows``
        order (identical to an unsharded ``insert_rows`` load).
    num_shards, mode, key_dim, replication_factor:
        Routing policy — see :class:`~repro.shard.map.ShardMap`.  A
        ``replication_factor > 1`` makes the serving tier keep warm
        replicas and fail over instead of aborting on a dead primary.
    block_size, workers, **cube_kwargs:
        Passed through to each shard's :meth:`RankingCube.build`
        (``workers`` engages the partitioned parallel builder per shard).
    database_factory:
        ``shard_id -> Database`` override, e.g. to wrap one shard's
        device in a :class:`~repro.storage.faults.FaultyBlockDevice`
        for failure testing.  Default: a fresh pristine
        :class:`Database` per shard with ``buffer_capacity`` frames.
    """
    rows = list(rows)
    if mode == "selection_key":
        if key_dim is None:
            raise ShardError("selection_key mode needs key_dim")
        shard_map = ShardMap.selection_key(
            schema, key_dim, num_shards, replication_factor
        )
    elif mode == "tid_range":
        shard_map = ShardMap.tid_range(len(rows), num_shards, replication_factor)
    else:
        raise ShardError(f"unknown shard mode {mode!r}")

    per_shard: list[list[tuple[int, Sequence]]] = [[] for _ in range(num_shards)]
    for gtid, row in enumerate(rows):
        per_shard[shard_map.shard_of_build_row(gtid, row, schema)].append(
            (gtid, row)
        )

    shards: list[CubeShard] = []
    for shard_id in range(num_shards):
        if database_factory is not None:
            db = database_factory(shard_id)
        else:
            db = Database(buffer_capacity=buffer_capacity)
        pairs = per_shard[shard_id]
        table = db.load_table(name, schema, [row for _gtid, row in pairs])
        build_kwargs = dict(block_size=block_size, workers=workers, **cube_kwargs)
        cube = RankingCube.build(table, **build_kwargs) if pairs else None
        shards.append(
            CubeShard(
                shard_id=shard_id,
                db=db,
                table=table,
                cube=cube,
                tid_map=[gtid for gtid, _row in pairs],
                build_kwargs=build_kwargs,
            )
        )
    return ShardedCube(schema, name, shard_map, shards)
