"""Horizontal sharding of a relation and its ranking cube.

The ROADMAP's first scaling lever: split a relation into N independent
shards — each with its own :class:`~repro.storage.device.BlockDevice`,
buffer pool, and :class:`~repro.core.cube.RankingCube` — and answer
top-k queries by scatter-gather over per-shard progressive searches
(:class:`~repro.core.executor.ProgressiveSearch`), merged under a global
early-termination bound.  The paper's block lower bounds are what make
the merge sound: every shard certifies the best score any of its
unexamined blocks could produce, so the merger stops pulling from a
shard the moment the global k-th seen score beats that bound.

Layout:

* :mod:`repro.shard.map` — :class:`ShardMap`: row routing (contiguous
  tid ranges, or hash-by-selection-key so equality selections on the
  shard key prune to a single shard);
* :mod:`repro.shard.builder` — :class:`CubeShard` / :class:`ShardedCube`
  / :func:`build_sharded`: per-shard build reusing the PR 4 partitioned
  builder, local↔global tid mapping, and append routing;
* :class:`repro.serve.sharded.ShardedQueryService` — the scatter-gather
  serving loop (re-exported here for discoverability).
"""

from .builder import CubeShard, ShardedCube, build_sharded
from .map import ShardError, ShardMap

__all__ = [
    "CubeShard",
    "ShardError",
    "ShardMap",
    "ShardedCube",
    "ShardedQueryService",
    "build_sharded",
]


def __getattr__(name):
    # Lazy: repro.serve.sharded imports from this package, so a direct
    # top-level import here would be circular.
    if name == "ShardedQueryService":
        from ..serve.sharded import ShardedQueryService

        return ShardedQueryService
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
