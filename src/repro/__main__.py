"""``python -m repro`` — the interactive top-k shell.

Without arguments, generates a default synthetic relation and builds its
ranking cube; ``--workspace`` loads a saved snapshot instead.
"""

from __future__ import annotations

import argparse
import sys

from .shell import Shell


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Interactive SQL shell over a ranking cube.",
    )
    parser.add_argument("--workspace", help="load a saved .rcube snapshot")
    parser.add_argument("--tuples", type=int, default=20_000)
    parser.add_argument("--selection-dims", type=int, default=3)
    parser.add_argument("--ranking-dims", type=int, default=2)
    parser.add_argument("--cardinality", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.workspace:
        shell = Shell.from_workspace(args.workspace)
    else:
        shell = Shell.from_synthetic(
            num_tuples=args.tuples,
            num_selection_dims=args.selection_dims,
            num_ranking_dims=args.ranking_dims,
            cardinality=args.cardinality,
            seed=args.seed,
        )
    shell.run()
    return 0


if __name__ == "__main__":
    sys.exit(main())
