"""A paged B+-tree.

Every node occupies one page of the shared :class:`BlockDevice`, read and
written through the buffer pool, so index traversals are metered I/O just
like heap and cube accesses.  Keys are tuples of numbers (ints sort with
floats the way SQL composite keys do) and must be unique; callers that need
duplicates append a discriminator component (the composite index appends the
tid, the secondary index stores posting-list heads as values).

Supports point lookup, ordered range scan, single insert, and sorted bulk
load (the load path used when building indexes over a freshly generated
relation).
"""

from __future__ import annotations

import pickle
from typing import Iterable, Iterator, Sequence

from ..storage.buffer import BufferPool
from ..storage.pages import BytesPage

Key = tuple
Value = int


class BPlusTreeError(Exception):
    """Raised for malformed tree operations (duplicate keys, bad fanout)."""


class _Node:
    """In-memory image of one tree node.

    Leaf:     keys[i] -> values[i]; ``next_leaf`` chains the leaf level.
    Internal: children[i] subtends keys < keys[i] (children has one more
              entry than keys, standard B+-tree separator layout).
    """

    __slots__ = ("is_leaf", "keys", "values", "children", "next_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: list[Key] = []
        self.values: list[Value] = []      # leaves only
        self.children: list[int] = []      # internal only (page ids)
        self.next_leaf: int | None = None  # leaves only

    def to_payload(self) -> bytes:
        return pickle.dumps(
            (self.is_leaf, self.keys, self.values, self.children, self.next_leaf),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "_Node":
        is_leaf, keys, values, children, next_leaf = pickle.loads(payload)
        node = cls(is_leaf)
        node.keys = keys
        node.values = values
        node.children = children
        node.next_leaf = next_leaf
        return node


class BPlusTree:
    """Unique-key B+-tree over paged storage.

    Parameters
    ----------
    pool:
        Buffer pool for all node I/O.
    fanout:
        Maximum keys per node.  The default suits 4 KiB pages and short
        numeric keys; oversized serialized nodes fail fast at write time.
    """

    def __init__(self, pool: BufferPool, fanout: int = 32):
        if fanout < 3:
            raise BPlusTreeError(f"fanout must be >= 3, got {fanout}")
        self.pool = pool
        self.fanout = fanout
        self._page_size = pool.device.page_size
        self._root_id = self._write_new(_Node(is_leaf=True))
        self._height = 1
        self._num_keys = 0
        self._num_nodes = 1

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_keys

    @property
    def height(self) -> int:
        return self._height

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def size_in_bytes(self) -> int:
        return self._num_nodes * self._page_size

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key: Key, default: Value | None = None) -> Value | None:
        """Point lookup."""
        node = self._read(self._find_leaf(key))
        pos = _lower_bound(node.keys, key)
        if pos < len(node.keys) and node.keys[pos] == key:
            return node.values[pos]
        return default

    def __contains__(self, key: Key) -> bool:
        return self.get(key) is not None

    def range_scan(
        self,
        lo: Key | None = None,
        hi: Key | None = None,
        include_hi: bool = False,
    ) -> Iterator[tuple[Key, Value]]:
        """Yield ``(key, value)`` in key order for keys in ``[lo, hi)``.

        ``lo=None`` starts at the smallest key; ``hi=None`` runs to the end;
        ``include_hi`` closes the upper bound.
        """
        if lo is None:
            leaf_id = self._leftmost_leaf()
            node = self._read(leaf_id)
            pos = 0
        else:
            leaf_id = self._find_leaf(lo)
            node = self._read(leaf_id)
            pos = _lower_bound(node.keys, lo)
        while True:
            while pos < len(node.keys):
                key = node.keys[pos]
                if hi is not None:
                    if include_hi:
                        if key > hi:
                            return
                    elif key >= hi:
                        return
                yield key, node.values[pos]
                pos += 1
            if node.next_leaf is None:
                return
            node = self._read(node.next_leaf)
            pos = 0

    def items(self) -> Iterator[tuple[Key, Value]]:
        """Full ordered scan."""
        return self.range_scan()

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, key: Key, value: Value) -> None:
        """Insert one key; duplicate keys raise :class:`BPlusTreeError`."""
        key = tuple(key)
        split = self._insert_into(self._root_id, key, value)
        if split is not None:
            sep_key, right_id = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep_key]
            new_root.children = [self._root_id, right_id]
            self._root_id = self._write_new(new_root)
            self._height += 1
        self._num_keys += 1

    def bulk_load(self, pairs: Iterable[tuple[Key, Value]]) -> None:
        """Replace the tree contents from *sorted*, unique ``(key, value)``.

        Builds leaves left to right at ~full fanout, then each internal
        level, the standard bottom-up bulk load.  Raises on unsorted or
        duplicate input.
        """
        pairs = list(pairs)
        if not pairs:
            return
        for (k1, _), (k2, _) in zip(pairs, pairs[1:]):
            if tuple(k1) >= tuple(k2):
                raise BPlusTreeError("bulk_load input must be strictly sorted")
        if self._num_keys:
            raise BPlusTreeError("bulk_load requires an empty tree")

        per_leaf = max(2, self.fanout - 1)
        leaves: list[tuple[Key, int]] = []  # (first key, page id)
        prev_leaf: _Node | None = None
        prev_leaf_id: int | None = None
        for start in range(0, len(pairs), per_leaf):
            chunk = pairs[start:start + per_leaf]
            node = _Node(is_leaf=True)
            node.keys = [tuple(k) for k, _v in chunk]
            node.values = [v for _k, v in chunk]
            page_id = self._write_new(node)
            if prev_leaf is not None and prev_leaf_id is not None:
                prev_leaf.next_leaf = page_id
                self._write(prev_leaf_id, prev_leaf)
            leaves.append((node.keys[0], page_id))
            prev_leaf, prev_leaf_id = node, page_id

        level = leaves
        height = 1
        per_internal = max(2, self.fanout)
        while len(level) > 1:
            next_level: list[tuple[Key, int]] = []
            for start in range(0, len(level), per_internal):
                chunk = level[start:start + per_internal]
                node = _Node(is_leaf=False)
                node.children = [page_id for _k, page_id in chunk]
                node.keys = [k for k, _pid in chunk[1:]]
                page_id = self._write_new(node)
                next_level.append((chunk[0][0], page_id))
            level = next_level
            height += 1
        self._root_id = level[0][1]
        self._height = height
        self._num_keys = len(pairs)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _insert_into(
        self, page_id: int, key: Key, value: Value
    ) -> tuple[Key, int] | None:
        """Recursive insert; returns ``(separator, new right page)`` on split."""
        node = self._read(page_id)
        if node.is_leaf:
            pos = _lower_bound(node.keys, key)
            if pos < len(node.keys) and node.keys[pos] == key:
                raise BPlusTreeError(f"duplicate key {key!r}")
            node.keys.insert(pos, key)
            node.values.insert(pos, value)
            if len(node.keys) <= self.fanout:
                self._write(page_id, node)
                return None
            return self._split_leaf(page_id, node)
        pos = _upper_bound(node.keys, key)
        split = self._insert_into(node.children[pos], key, value)
        if split is None:
            return None
        sep_key, right_id = split
        node.keys.insert(pos, sep_key)
        node.children.insert(pos + 1, right_id)
        if len(node.keys) <= self.fanout:
            self._write(page_id, node)
            return None
        return self._split_internal(page_id, node)

    def _split_leaf(self, page_id: int, node: _Node) -> tuple[Key, int]:
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        right.next_leaf = node.next_leaf
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right_id = self._write_new(right)
        node.next_leaf = right_id
        self._write(page_id, node)
        return right.keys[0], right_id

    def _split_internal(self, page_id: int, node: _Node) -> tuple[Key, int]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        right_id = self._write_new(right)
        self._write(page_id, node)
        return sep, right_id

    def _find_leaf(self, key: Key) -> int:
        page_id = self._root_id
        node = self._read(page_id)
        while not node.is_leaf:
            pos = _upper_bound(node.keys, key)
            page_id = node.children[pos]
            node = self._read(page_id)
        return page_id

    def _leftmost_leaf(self) -> int:
        page_id = self._root_id
        node = self._read(page_id)
        while not node.is_leaf:
            page_id = node.children[0]
            node = self._read(page_id)
        return page_id

    def _read(self, page_id: int) -> _Node:
        data = self.pool.get(page_id)
        return _Node.from_payload(BytesPage.from_bytes(data, self._page_size).payload)

    def _write(self, page_id: int, node: _Node) -> None:
        self.pool.put(page_id, BytesPage(self._page_size, node.to_payload()).to_bytes())

    def _write_new(self, node: _Node) -> int:
        page_id = self.pool.device.allocate()
        self._write(page_id, node)
        if not hasattr(self, "_num_nodes"):
            return page_id
        self._num_nodes += 1
        return page_id


def _lower_bound(keys: Sequence[Key], key: Key) -> int:
    """First position whose key is >= ``key``."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _upper_bound(keys: Sequence[Key], key: Key) -> int:
    """First position whose key is > ``key``."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] <= key:
            lo = mid + 1
        else:
            hi = mid
    return lo
