"""Index structures over paged storage.

:class:`BPlusTree` is the shared foundation; :class:`SecondaryIndex` models
the baseline's per-dimension non-clustered indexes; :class:`CompositeIndex`
models the rank-mapping baseline's multi-dimensional clustered index.
"""

from .bptree import BPlusTree, BPlusTreeError
from .composite import CompositeIndex
from .secondary import SecondaryIndex

__all__ = ["BPlusTree", "BPlusTreeError", "CompositeIndex", "SecondaryIndex"]
