"""Non-clustered secondary index.

Models the "non-clustered index on each selection dimension" the paper
builds for its Baseline configuration: a B+-tree mapping each attribute
value to the head of a paged *posting list* of rids.  Looking a value up
costs the tree descent plus one sequential chain walk; the rids then require
random heap fetches, which is exactly the access pattern whose cost the
ranking cube is designed to avoid.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..storage.buffer import BufferPool
from ..storage.heap import Rid
from ..storage.pages import RecordCodec, RecordPage
from .bptree import BPlusTree

_POSTING_CODEC = RecordCodec("ii")  # (page_index, slot)


class SecondaryIndex:
    """Value -> rid-list index over one selection attribute.

    Parameters
    ----------
    pool:
        Buffer pool of the shared device.
    attribute:
        Indexed attribute name (metadata only; the caller extracts values).
    """

    def __init__(self, pool: BufferPool, attribute: str, fanout: int = 32):
        self.pool = pool
        self.attribute = attribute
        self._tree = BPlusTree(pool, fanout=fanout)
        self._chain_pages = 0
        self._num_entries = 0

    # ------------------------------------------------------------------
    def build(self, entries: Iterable[tuple[int, Rid]]) -> None:
        """Bulk build from ``(value, rid)`` pairs (any order)."""
        by_value: dict[int, list[Rid]] = {}
        for value, rid in entries:
            by_value.setdefault(int(value), []).append(rid)
        pairs = []
        for value in sorted(by_value):
            head = self._write_chain(by_value[value])
            pairs.append(((value,), head))
            self._num_entries += len(by_value[value])
        self._tree.bulk_load(pairs)

    def lookup(self, value: int) -> list[Rid]:
        """All rids whose indexed attribute equals ``value``."""
        head = self._tree.get((int(value),))
        if head is None:
            return []
        return self._read_chain(head)

    def count(self, value: int) -> int:
        """Posting-list length, reading the chain (no separate stats here;
        see :class:`~repro.relational.table.Table` for cached selectivity)."""
        return len(self.lookup(value))

    # ------------------------------------------------------------------
    @property
    def size_in_bytes(self) -> int:
        page_size = self.pool.device.page_size
        return self._tree.size_in_bytes + self._chain_pages * page_size

    def __len__(self) -> int:
        return self._num_entries

    # ------------------------------------------------------------------
    def _write_chain(self, rids: Sequence[Rid]) -> int:
        """Store a posting list as a linked chain of record pages."""
        page_size = self.pool.device.page_size
        capacity = _POSTING_CODEC.capacity(page_size)
        page_ids = self.pool.device.allocate_many(
            max(1, -(-len(rids) // capacity))
        )
        self._chain_pages += len(page_ids)
        for chunk_no, page_id in enumerate(page_ids):
            page = RecordPage(_POSTING_CODEC, page_size)
            start = chunk_no * capacity
            page.extend(rids[start:start + capacity])
            if chunk_no + 1 < len(page_ids):
                page.next_page_id = page_ids[chunk_no + 1]
            self.pool.put(page_id, page.to_bytes())
        return page_ids[0]

    def _read_chain(self, head: int) -> list[Rid]:
        page_size = self.pool.device.page_size
        rids: list[Rid] = []
        page_id: int | None = head
        while page_id is not None:
            page = RecordPage.from_bytes(
                self.pool.get(page_id), _POSTING_CODEC, page_size
            )
            rids.extend((int(p), int(s)) for p, s in page.records)
            page_id = page.next_page_id
        return rids
