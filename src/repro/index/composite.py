"""Multi-dimensional composite index.

Models the rank-mapping baseline's index: a clustered B+-tree whose keys
concatenate selection dimensions first, ranking dimensions after (the
"dimension order in the index is first the selection dimensions and then
the ranking dimensions" configuration from Section 5.1.2), with the tid as
a final uniquifier.  Ranking values ride inside the key, so a range scan
returns everything the rank-mapping executor needs without heap fetches —
the most favorable realistic treatment of that baseline.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..storage.buffer import BufferPool
from .bptree import BPlusTree

_NEG_INF = float("-inf")
_POS_INF = float("inf")


class CompositeIndex:
    """Clustered index over ``(selection dims..., ranking dims..., tid)``.

    Parameters
    ----------
    pool:
        Buffer pool of the shared device.
    selection_dims / ranking_dims:
        Attribute names in index order.
    """

    def __init__(
        self,
        pool: BufferPool,
        selection_dims: Sequence[str],
        ranking_dims: Sequence[str],
        fanout: int = 32,
    ):
        self.pool = pool
        self.selection_dims = tuple(selection_dims)
        self.ranking_dims = tuple(ranking_dims)
        self._tree = BPlusTree(pool, fanout=fanout)

    # ------------------------------------------------------------------
    def build(self, rows: Iterable[tuple[tuple, tuple, int]]) -> None:
        """Bulk build from ``(selection values, ranking values, tid)`` rows."""
        keys = sorted(
            tuple(sel) + tuple(rank) + (tid,) for sel, rank, tid in rows
        )
        self._tree.bulk_load((key, key[-1]) for key in keys)

    def range_query(
        self,
        selections: Sequence[int],
        ranking_lo: Sequence[float] | None = None,
        ranking_hi: Sequence[float] | None = None,
    ) -> Iterator[tuple[int, tuple[float, ...]]]:
        """Yield ``(tid, ranking values)`` matching the index prefix + range.

        ``selections`` must bind every selection dimension of the index (a
        partial prefix is allowed only from the left — exactly the
        limitation Figure 9/14 exposes for the RM approach; see
        :meth:`prefix_range_query`).  Bounds on ranking dimensions beyond
        the first can only be applied as filters, which is how real
        composite B-trees behave.
        """
        return self.prefix_range_query(
            dict(zip(self.selection_dims, selections)), ranking_lo, ranking_hi
        )

    def prefix_range_query(
        self,
        selections: dict[str, int],
        ranking_lo: Sequence[float] | None = None,
        ranking_hi: Sequence[float] | None = None,
    ) -> Iterator[tuple[int, tuple[float, ...]]]:
        """Range query binding a subset of selection dims by name.

        Only the longest *leading* run of bound dims narrows the scan; any
        unbound dim forces the remaining components (including all ranking
        bounds) to act as post-filters over the scanned range.
        """
        num_sel = len(self.selection_dims)
        lo_key: list = []
        hi_key: list = []
        prefix_len = 0
        for dim in self.selection_dims:
            if dim in selections:
                value = int(selections[dim])
                lo_key.append(value)
                hi_key.append(value)
                prefix_len += 1
            else:
                break
        # pad the unbound tail of the key with -inf / +inf
        lo_key.extend([_NEG_INF] * (num_sel - prefix_len))
        hi_key.extend([_POS_INF] * (num_sel - prefix_len))
        if prefix_len == num_sel and ranking_lo is not None:
            # the first ranking dim's bound can narrow the scan too
            lo_key.append(float(ranking_lo[0]))
            hi_key.append(float(ranking_hi[0]) if ranking_hi else _POS_INF)
        lo_key.extend([_NEG_INF] * (len(self.ranking_dims) + 1 - (len(lo_key) - num_sel)))
        hi_key.extend([_POS_INF] * (len(self.ranking_dims) + 1 - (len(hi_key) - num_sel)))

        residual = {
            dim: selections[dim]
            for dim in self.selection_dims[prefix_len:]
            if dim in selections
        }
        for key, _value in self._tree.range_scan(tuple(lo_key), tuple(hi_key), include_hi=True):
            sel_part = key[:num_sel]
            rank_part = key[num_sel:-1]
            tid = key[-1]
            if any(
                sel_part[self.selection_dims.index(dim)] != value
                for dim, value in residual.items()
            ):
                continue
            if ranking_lo is not None and any(
                r < lo for r, lo in zip(rank_part, ranking_lo)
            ):
                continue
            if ranking_hi is not None and any(
                r > hi for r, hi in zip(rank_part, ranking_hi)
            ):
                continue
            yield int(tid), tuple(float(r) for r in rank_part)

    # ------------------------------------------------------------------
    @property
    def size_in_bytes(self) -> int:
        return self._tree.size_in_bytes

    def __len__(self) -> int:
        return len(self._tree)
