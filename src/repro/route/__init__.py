"""Workload-adaptive routing: cost-routed planning over answer-identical paths.

``AdaptiveRouter`` picks cube / vector / fragment / baseline execution per
query by blending analytic estimates with observed cost per query shape;
``CubeAdvisor`` promotes hot and demotes cold cuboids under a space budget;
``DriftDetector`` + ``repartition_cube`` rebuild the equi-depth grid online
when the live distribution drifts away from it.
"""

from .advisor import AdvisorError, AdvisorReport, CubeAdvisor
from .cost import DEFAULT_PRIOR_STRENGTH, CostBook, PathObservation
from .drift import (
    DEFAULT_DRIFT_THRESHOLD,
    DriftDetector,
    DriftReport,
    RepartitionReport,
    repartition_cube,
)
from .router import (
    DEFAULT_PROBE_MARGIN,
    AdaptiveRouter,
    BaselinePath,
    CubePath,
    RouteDecision,
    RoutePath,
)
from .signature import QueryShape, log2_bucket, shape_of

__all__ = [
    "AdaptiveRouter",
    "AdvisorError",
    "AdvisorReport",
    "BaselinePath",
    "CostBook",
    "CubeAdvisor",
    "CubePath",
    "DEFAULT_DRIFT_THRESHOLD",
    "DEFAULT_PRIOR_STRENGTH",
    "DEFAULT_PROBE_MARGIN",
    "DriftDetector",
    "DriftReport",
    "PathObservation",
    "QueryShape",
    "RepartitionReport",
    "RouteDecision",
    "RoutePath",
    "log2_bucket",
    "repartition_cube",
    "shape_of",
]
