"""Shrinkage-blended cost model: analytic prior, observed posterior.

The analytic estimates in :mod:`repro.core.estimate` are coarse by design
(independence, uniform spread) and were demonstrably miscalibrated before
this PR's fixes — so the router never trusts them outright.  Instead each
``(query shape, path)`` pair keeps a running mean of *observed* weighted
page cost, and the decision cost is the classic shrinkage blend

    blended = (n * observed_mean + n0 * analytic) / (n + n0)

where ``n`` is the number of observations and ``n0`` the prior strength
(how many observations the analytic model is "worth").  With no samples
the blend *is* the analytic estimate; as samples accumulate it converges
to the observed mean at rate ``n / (n + n0)`` — the standard conjugate
normal-mean posterior, and the same scheme histogram-feedback optimizers
(e.g. LEO) use to discount a calibrated-but-wrong model.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .signature import QueryShape

#: Default prior strength: the analytic estimate counts as this many
#: observations.  Small enough that a few real measurements dominate,
#: large enough that one noisy probe cannot flip a decision by itself.
DEFAULT_PRIOR_STRENGTH = 4.0


@dataclass
class PathObservation:
    """Running cost totals for one ``(shape, path)`` pair."""

    samples: int = 0
    total_io: float = 0.0
    total_wall_s: float = 0.0

    @property
    def mean_io(self) -> float:
        return self.total_io / self.samples if self.samples else 0.0

    @property
    def mean_wall_s(self) -> float:
        return self.total_wall_s / self.samples if self.samples else 0.0


@dataclass
class CostBook:
    """Thread-safe observation store + shrinkage blend."""

    prior_strength: float = DEFAULT_PRIOR_STRENGTH
    _observations: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def __post_init__(self) -> None:
        if self.prior_strength <= 0:
            raise ValueError(
                f"prior_strength must be positive, got {self.prior_strength}"
            )

    # ------------------------------------------------------------------
    def record(
        self, shape: QueryShape, path: str, io_cost: float, wall_s: float
    ) -> None:
        """Fold one executed query's observed cost into the book."""
        with self._lock:
            obs = self._observations.setdefault((shape, path), PathObservation())
            obs.samples += 1
            obs.total_io += float(io_cost)
            obs.total_wall_s += float(wall_s)

    def samples(self, shape: QueryShape, path: str) -> int:
        with self._lock:
            obs = self._observations.get((shape, path))
            return obs.samples if obs is not None else 0

    def observation(self, shape: QueryShape, path: str) -> PathObservation:
        with self._lock:
            obs = self._observations.get((shape, path))
            return (
                PathObservation(obs.samples, obs.total_io, obs.total_wall_s)
                if obs is not None
                else PathObservation()
            )

    def blended(self, shape: QueryShape, path: str, analytic_io: float) -> float:
        """Decision cost: observations shrunk toward the analytic prior."""
        with self._lock:
            obs = self._observations.get((shape, path))
            n = obs.samples if obs is not None else 0
            total = obs.total_io if obs is not None else 0.0
        return (total + self.prior_strength * float(analytic_io)) / (
            n + self.prior_strength
        )

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._observations)
