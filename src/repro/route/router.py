"""The adaptive router: one ``execute()`` over every access path.

:class:`AdaptiveRouter` wraps the cube, fragment, vectorized and baseline
executors behind a single entry point and picks the path per query by
*blended* cost — the analytic estimate of :mod:`repro.core.estimate`
shrunk toward the observed weighted page cost of past queries with the
same :class:`~repro.route.signature.QueryShape` (see
:mod:`repro.route.cost`).  Because every path honors the byte-identical
answers contract (property-tested in ``tests/properties``), routing is
purely a cost decision: the answer is the same object no matter which
path runs, so the router can never trade correctness for speed.

Exploration is deterministic, not stochastic: for each new query shape
the router probes, once each and in ascending analytic-cost order, every
path whose analytic estimate is within ``probe_margin`` of the current
best blend; after that it exploits the blended minimum.  Determinism
matters here — the bench gate replays a fixed stream and must reproduce
the same decisions run over run.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field

from ..baselines.scan import BaselineExecutor
from ..core.cube import CubeError, RankingCube
from ..core.estimate import estimate_baseline_cost, estimate_cube_cost
from ..core.executor import RankingCubeExecutor
from ..obs.tracing import maybe_span
from ..relational.query import QueryResult, TopKQuery
from ..relational.table import Table
from ..storage.device import RANDOM_READ_WEIGHT, SEQ_READ_WEIGHT
from .cost import DEFAULT_PRIOR_STRENGTH, CostBook
from .signature import QueryShape, shape_of

#: Explore an unsampled path only while its analytic estimate is within
#: this factor of the best blended cost — paths the model prices far off
#: the frontier are never worth a probe.
DEFAULT_PROBE_MARGIN = 3.0


class RoutePath:
    """One executable access path: an estimator plus an executor.

    ``execute`` returns ``(result, observed_io)`` where ``observed_io``
    is the *weighted* logical page cost of the run — sequential pages at
    ``SEQ_READ_WEIGHT``, random pages at ``RANDOM_READ_WEIGHT`` — i.e.
    the same currency the analytic estimates price in, so observations
    and priors blend without unit conversion.
    """

    name: str

    def estimate_io(self, query: TopKQuery) -> float:
        raise NotImplementedError

    def execute(self, query, trace=None, tracer=None):
        raise NotImplementedError


class CubePath(RoutePath):
    """Progressive ranking-cube search (row, vector, or fragment family)."""

    def __init__(
        self, name: str, cube: RankingCube, table: Table,
        executor: RankingCubeExecutor,
    ):
        self.name = name
        self.cube = cube
        self.table = table
        self.executor = executor

    def estimate_io(self, query: TopKQuery) -> float:
        try:
            return estimate_cube_cost(self.cube, self.table, query).io_cost
        except CubeError:
            # this family cannot cover the query's dimensions at all
            return math.inf

    def execute(self, query, trace=None, tracer=None):
        result = self.executor.execute(query, trace=trace, tracer=tracer)
        return result, RANDOM_READ_WEIGHT * result.blocks_accessed


class BaselinePath(RoutePath):
    """Index-or-scan over the base relation (Section 5.1.2's BL)."""

    name = "baseline"

    def __init__(self, table: Table):
        self.table = table

    def estimate_io(self, query: TopKQuery) -> float:
        return estimate_baseline_cost(self.table, query).io_cost

    def execute(self, query, trace=None, tracer=None):
        # a fresh executor per call keeps ``last_plan`` race-free under
        # concurrent routing (the object is two attribute assignments)
        executor = BaselineExecutor(self.table)
        result = executor.execute(query)
        weight = (
            SEQ_READ_WEIGHT
            if executor.last_plan == "scan"
            else RANDOM_READ_WEIGHT
        )
        return result, weight * result.blocks_accessed


@dataclass(frozen=True)
class RouteDecision:
    """Everything one routed query decided and observed."""

    path: str
    shape: QueryShape
    probe: bool                      #: was this a deterministic exploration?
    analytic: dict = field(default_factory=dict)   #: path -> analytic io
    blended: dict = field(default_factory=dict)    #: path -> blended io
    result: QueryResult | None = None
    observed_io: float = 0.0
    observed_pages: int = 0
    wall_s: float = 0.0


class AdaptiveRouter:
    """Cost-routed execution over a family of answer-identical paths.

    Parameters
    ----------
    table:
        The base relation (supplies selectivity statistics for shapes and
        the baseline path).
    paths:
        The :class:`RoutePath` family to route over, tried in the given
        order for deterministic tie-breaks.
    registry:
        Optional metrics registry; decisions bump ``route.decision``
        (labeled by path — the same series :class:`HybridExecutor`
        emits), probes bump ``route.probes``, observed pages accumulate
        under ``route.observed_pages``.
    prior_strength / probe_margin:
        Shrinkage prior weight (see :mod:`repro.route.cost`) and the
        exploration cutoff factor.
    """

    def __init__(
        self,
        table: Table,
        paths: list[RoutePath],
        registry=None,
        prior_strength: float = DEFAULT_PRIOR_STRENGTH,
        probe_margin: float = DEFAULT_PROBE_MARGIN,
    ):
        if not paths:
            raise ValueError("need at least one route path")
        names = [p.name for p in paths]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate path names: {names}")
        if probe_margin < 1.0:
            raise ValueError(f"probe_margin must be >= 1.0, got {probe_margin}")
        self.table = table
        self.paths = {p.name: p for p in paths}
        self.registry = registry
        self.book = CostBook(prior_strength=prior_strength)
        self.probe_margin = probe_margin
        self.last_decision: RouteDecision | None = None
        self._decide_lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def for_cube(
        cls,
        cube: RankingCube,
        table: Table,
        fragment_cube: RankingCube | None = None,
        include_vector: bool = True,
        pseudo_cache=None,
        bound_memo=None,
        columnar_cache=None,
        registry=None,
        prior_strength: float = DEFAULT_PRIOR_STRENGTH,
        probe_margin: float = DEFAULT_PROBE_MARGIN,
    ) -> "AdaptiveRouter":
        """The standard path family: cube / vector / fragments / baseline.

        Injected caches are shared across the cube-family paths exactly
        like :class:`~repro.serve.service.QueryService` shares them.
        """
        paths: list[RoutePath] = [
            CubePath(
                "cube", cube, table,
                RankingCubeExecutor(
                    cube, table,
                    pseudo_cache=pseudo_cache, bound_memo=bound_memo,
                ),
            )
        ]
        if include_vector:
            paths.append(
                CubePath(
                    "vector", cube, table,
                    RankingCubeExecutor(
                        cube, table,
                        pseudo_cache=pseudo_cache, bound_memo=bound_memo,
                        use_vector=True, columnar_cache=columnar_cache,
                    ),
                )
            )
        if fragment_cube is not None:
            paths.append(
                CubePath(
                    "fragments", fragment_cube, table,
                    RankingCubeExecutor(fragment_cube, table),
                )
            )
        paths.append(BaselinePath(table))
        return cls(
            table, paths,
            registry=registry,
            prior_strength=prior_strength,
            probe_margin=probe_margin,
        )

    # ------------------------------------------------------------------
    def decide(
        self, query: TopKQuery, shape: QueryShape | None = None
    ) -> RouteDecision:
        """Pick a path for one query without executing it."""
        if shape is None:
            shape = shape_of(self.table, query)
        with self._decide_lock:
            analytic = {
                name: path.estimate_io(query)
                for name, path in self.paths.items()
            }
            blended = {
                name: self.book.blended(shape, name, analytic[name])
                for name in self.paths
            }
            best = min(blended, key=lambda name: (blended[name], name))
            probe = False
            # deterministic exploration: unsampled paths near the frontier
            # get exactly one probe each, cheapest analytic first
            for name in sorted(self.paths, key=lambda n: (analytic[n], n)):
                if name == best:
                    continue
                if self.book.samples(shape, name) > 0:
                    continue
                if analytic[name] <= self.probe_margin * blended[best]:
                    best, probe = name, True
                    break
        return RouteDecision(
            path=best, shape=shape, probe=probe,
            analytic=analytic, blended=blended,
        )

    def execute(
        self, query: TopKQuery, trace=None, tracer=None
    ) -> RouteDecision:
        """Route, run, observe: the router's single entry point.

        Returns the full :class:`RouteDecision` (the answer is
        ``decision.result``).  A storage-fault abort propagates as
        :class:`~repro.core.executor.QueryAbortedError` and leaves the
        cost book untouched — a partial run's cost would poison the
        observed mean.
        """
        decision = self.decide(query)
        path = self.paths[decision.path]
        started = time.perf_counter()
        with maybe_span(
            tracer, "route.query", path=decision.path, probe=decision.probe
        ) as span:
            result, observed_io = path.execute(query, trace=trace, tracer=tracer)
            wall_s = time.perf_counter() - started
            if span is not None:
                span.add_many(
                    observed_io=observed_io,
                    observed_pages=result.blocks_accessed,
                )
        self.book.record(decision.shape, decision.path, observed_io, wall_s)
        finished = RouteDecision(
            path=decision.path, shape=decision.shape, probe=decision.probe,
            analytic=decision.analytic, blended=decision.blended,
            result=result, observed_io=observed_io,
            observed_pages=result.blocks_accessed, wall_s=wall_s,
        )
        self.last_decision = finished
        if self.registry is not None:
            self.registry.counter("route.queries").inc()
            self.registry.counter("route.decision", path=decision.path).inc()
            if decision.probe:
                self.registry.counter("route.probes").inc()
            self.registry.counter("route.observed_pages").inc(
                result.blocks_accessed
            )
            self.registry.histogram("route.wall_s").observe(wall_s)
        return finished
