"""Query-shape signatures: the key space of the router's cost memory.

Observed costs generalize across queries that stress the system the same
way, not across literally identical queries.  A :class:`QueryShape`
therefore quantizes exactly the features the analytic model in
:mod:`repro.core.estimate` says drive cost — which dimensions are
constrained, how selective the conjunction is (log-bucketed expected
qualifying count), how deep the answer is (log-bucketed ``k``), and what
is being ranked — and drops everything it says is irrelevant (the actual
constants, the weight values).  Two queries with the same shape hit the
same cost regime, so their observations pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.estimate import estimate_qualifying
from ..relational.query import TopKQuery
from ..relational.table import Table


@dataclass(frozen=True)
class QueryShape:
    """The equivalence class a query's cost observations are pooled under."""

    selection_dims: tuple[str, ...]
    selectivity_bucket: int
    k_bucket: int
    ranking_dims: tuple[str, ...]
    function: str

    def __str__(self) -> str:
        sel = ",".join(self.selection_dims) or "-"
        rank = ",".join(self.ranking_dims)
        return (
            f"sel[{sel}]~2^{self.selectivity_bucket}"
            f"/k~2^{self.k_bucket}/{self.function}({rank})"
        )


def log2_bucket(value: float) -> int:
    """``floor(log2(value))``, clamped so 0 and sub-1 values map to 0."""
    if value < 1.0:
        return 0
    return int(math.log2(value))


def shape_of(table: Table, query: TopKQuery) -> QueryShape:
    """Quantize one query into its :class:`QueryShape`."""
    qualifying = estimate_qualifying(table, query)
    return QueryShape(
        selection_dims=query.selection_names,
        selectivity_bucket=log2_bucket(qualifying),
        k_bucket=log2_bucket(float(query.k)),
        ranking_dims=tuple(sorted(query.ranking.dims)),
        function=type(query.ranking).__name__,
    )
