"""Online materialization advisor: promote hot cuboids, demote cold ones.

:func:`repro.core.advisor.recommend_fragments` answers the *offline*
design question.  :class:`CubeAdvisor` closes the loop at runtime: it
counts which selection-dimension sets queries actually use, and under a
space budget (in Lemma 2's tuple-entry units) it

* **promotes** a hot, not-yet-materialized dimension set to a real
  cuboid — built from the *base-table-resident* tuples only (delta tuples
  are merged by every query separately, so materializing them twice
  would double-count), grouped by the same
  :func:`~repro.core.parallel.compute_build_groups` arithmetic the
  builder and compactor use, and stamped with the cube's **current**
  epoch so the mixed-generation guard in :attr:`RankingCube.epoch` holds;
* **demotes** cold non-singleton cuboids to reclaim budget.  Singletons
  are never demoted: they are the covering safety net — as long as every
  selection dimension keeps its singleton cuboid, any query stays
  answerable (Section 4.2.1's covering always succeeds).

The swap protocol is :class:`~repro.core.compaction.CubeCompactor`'s:
build on fresh pages, flush the pool (write-ahead ordering), swap the
cuboid map atomically under the cube's state lock, then notify
invalidation listeners.  If a concurrent compaction replaced the base
table between our snapshot and the swap, the run aborts without swapping
(the promoted cuboids would index a dead generation) and retries on the
next round.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..core.cube import RankingCube
from ..core.cuboid import RankingCuboid
from ..core.parallel import CuboidSpec, compute_build_groups
from ..core.pseudo import scale_factor
from ..obs.tracing import maybe_span
from ..relational.query import TopKQuery
from ..relational.table import Table


class AdvisorError(Exception):
    """Raised on advisor misuse (bad config, closed daemon)."""


@dataclass
class AdvisorReport:
    """What one :meth:`CubeAdvisor.advise_once` run did."""

    observations: int = 0
    promoted: tuple = ()         #: cuboid names newly materialized
    demoted: tuple = ()          #: cuboid names dropped
    skipped: tuple = ()          #: hot sets that did not fit the budget
    entries_before: int = 0
    entries_after: int = 0
    swapped: bool = False
    aborted: bool = False        #: a concurrent compaction raced the swap
    wall_s: float = 0.0


class CubeAdvisor:
    """Popularity-driven cuboid promotion/demotion under a space budget.

    Parameters
    ----------
    cube / table / pool:
        The cube to maintain, its source relation (for selection values
        during promotion builds), and the buffer pool for fresh pages.
    space_budget_entries:
        Cap on total stored cuboid entries.  ``None`` means promotion is
        unconstrained and nothing is ever demoted for space.
    min_observations:
        A run is a no-op until this many queries have been observed since
        the last swap — popularity over a handful of queries is noise.
    hot_fraction / cold_fraction:
        A missing set whose query share is >= ``hot_fraction`` is a
        promotion candidate; a materialized non-singleton whose *usage*
        share (queries whose dimensions contain it) is <= ``cold_fraction``
        is a demotion candidate.
    max_promote_dims:
        Never materialize cuboids wider than this (space is ``~T``
        regardless, but build cost and marginal benefit fall off).
    decay:
        After each swap the popularity counters are multiplied by this
        factor, so the advisor tracks the *recent* workload.
    """

    def __init__(
        self,
        cube: RankingCube,
        table: Table,
        pool,
        space_budget_entries: int | None = None,
        min_observations: int = 16,
        hot_fraction: float = 0.10,
        cold_fraction: float = 0.01,
        max_promote_dims: int = 3,
        decay: float = 0.5,
        registry=None,
        tracer=None,
    ):
        if min_observations < 1:
            raise AdvisorError("min_observations must be >= 1")
        if not 0 < hot_fraction <= 1 or not 0 <= cold_fraction < 1:
            raise AdvisorError("fractions must lie in (0,1] / [0,1)")
        if not 0 <= decay <= 1:
            raise AdvisorError("decay must lie in [0, 1]")
        self.cube = cube
        self.table = table
        self.pool = pool
        self.space_budget_entries = space_budget_entries
        self.min_observations = min_observations
        self.hot_fraction = hot_fraction
        self.cold_fraction = cold_fraction
        self.max_promote_dims = max_promote_dims
        self.decay = decay
        self.registry = registry
        self.tracer = tracer
        self._counts: dict[frozenset, float] = {}
        self._observed_since = 0
        self._counts_lock = threading.Lock()
        self._run_lock = threading.Lock()
        self._cond = threading.Condition()
        self._thread: threading.Thread | None = None
        self._closed = False
        self._wake_requested = False
        self.runs = 0
        self.last_report: AdvisorReport | None = None
        self.last_error: BaseException | None = None

    # ------------------------------------------------------------------
    # workload observation
    # ------------------------------------------------------------------
    def observe(self, query: TopKQuery) -> None:
        """Count one query's selection-dimension set."""
        key = frozenset(query.selection_names)
        if not key:
            return
        with self._counts_lock:
            self._counts[key] = self._counts.get(key, 0.0) + 1.0
            self._observed_since += 1
        with self._cond:
            self._cond.notify_all()

    @property
    def observed_since_swap(self) -> int:
        with self._counts_lock:
            return self._observed_since

    # ------------------------------------------------------------------
    # one advisory run (foreground)
    # ------------------------------------------------------------------
    def advise_once(self) -> AdvisorReport:
        with self._run_lock:
            return self._advise_locked()

    def _advise_locked(self) -> AdvisorReport:
        started = time.perf_counter()
        report = AdvisorReport()
        with self._counts_lock:
            counts = dict(self._counts)
            report.observations = self._observed_since
        total = sum(counts.values())
        state = self.cube.snapshot()
        report.entries_before = report.entries_after = sum(
            c.num_entries for c in state.cuboids.values()
        )
        if report.observations < self.min_observations or total <= 0:
            report.wall_s = time.perf_counter() - started
            self._record(report)
            return report

        with maybe_span(self.tracer, "route.advise") as span:
            epoch = state.epoch
            num_tuples = state.base_table.num_tuples
            # Promotion candidates: hot sets with no exact cuboid.  Delta
            # correctness bound: the delta rows only carry values for the
            # dimensions the cube was built over.
            legal_dims = self.cube._delta_selection_dims
            hot = [
                (key, count)
                for key, count in counts.items()
                if count / total >= self.hot_fraction
                and key not in state.cuboids
                and 1 <= len(key) <= self.max_promote_dims
                and key <= legal_dims
            ]
            hot.sort(key=lambda item: (-item[1], sorted(item[0])))

            # Demotion candidates: materialized non-singletons whose usage
            # share (any query constraining a superset uses them) is cold.
            def usage(key: frozenset) -> float:
                return sum(c for q, c in counts.items() if key <= q)

            cold = sorted(
                (
                    key
                    for key in state.cuboids
                    if len(key) > 1 and usage(key) / total <= self.cold_fraction
                ),
                key=lambda key: (usage(key), sorted(key)),
            )

            budget = self.space_budget_entries
            entries = report.entries_before
            promote: list[frozenset] = []
            demote: list[frozenset] = []
            skipped: list[frozenset] = []
            cold_pool = list(cold)
            # an already-over-budget cube sheds cold cuboids even with
            # nothing to promote
            while budget is not None and entries > budget and cold_pool:
                victim = cold_pool.pop(0)
                demote.append(victim)
                entries -= state.cuboids[victim].num_entries
            for key, _count in hot:
                added = num_tuples  # a cuboid stores one entry per tuple
                projected = entries + added
                while (
                    budget is not None and projected > budget and cold_pool
                ):
                    victim = cold_pool.pop(0)
                    demote.append(victim)
                    projected -= state.cuboids[victim].num_entries
                if budget is not None and projected > budget:
                    skipped.append(key)
                    continue
                promote.append(key)
                entries = projected

            report.skipped = tuple(
                ",".join(sorted(key)) for key in skipped
            )
            if not promote and not demote:
                report.wall_s = time.perf_counter() - started
                self._record(report)
                return report

            new_cuboids = (
                self._build_promotions(state, promote, epoch)
                if promote
                else {}
            )

            # write-ahead ordering: fresh pages durable before the swap
            self.pool.flush()

            with self.cube._state_lock:
                if self.cube.base_table is not state.base_table:
                    # a compaction swapped generations under us: the
                    # promoted cuboids index dead bids — drop them
                    report.aborted = True
                    report.wall_s = time.perf_counter() - started
                    self._record(report)
                    return report
                updated = dict(self.cube.cuboids)
                for key in demote:
                    updated.pop(key, None)
                updated.update(new_cuboids)
                self.cube.cuboids = updated
            self.cube._notify_invalidation()

            with self._counts_lock:
                self._observed_since = 0
                if self.decay < 1.0:
                    self._counts = {
                        key: count * self.decay
                        for key, count in self._counts.items()
                        if count * self.decay >= 0.5
                    }

            report.promoted = tuple(c.name for c in new_cuboids.values())
            report.demoted = tuple(
                state.cuboids[key].name for key in demote
            )
            report.entries_after = sum(
                c.num_entries for c in updated.values()
            )
            report.swapped = True
            if span is not None:
                span.add_many(
                    promoted=len(report.promoted),
                    demoted=len(report.demoted),
                    entries=report.entries_after,
                )
        report.wall_s = time.perf_counter() - started
        self._record(report)
        return report

    def _build_promotions(
        self, state, promote: list[frozenset], epoch: int
    ) -> dict[frozenset, RankingCuboid]:
        """Materialize the promoted sets from base-table-resident tuples."""
        schema = self.table.schema
        # one maintenance scan of the base table: tid-ordered, matching
        # the canonical scan-order grouping of the from-scratch build
        pairs: list[tuple[int, tuple[float, ...]]] = []
        for _bid, records in state.base_table.blocks():
            for record in records:
                pairs.append((int(record[0]), tuple(record[1:])))
        pairs.sort(key=lambda item: item[0])
        tids = [tid for tid, _point in pairs]
        points = [point for _tid, point in pairs]

        needed_dims = tuple(sorted(set().union(*promote)))
        needed_pos = {d: schema.position(d) for d in needed_dims}
        sel_by_tid: dict[int, tuple[int, ...]] = {}
        wanted = set(tids)
        for record in self.table.scan():
            tid = int(record[0])
            if tid in wanted:
                sel_by_tid[tid] = tuple(
                    int(record[1 + needed_pos[d]]) for d in needed_dims
                )
        sel_rows = [sel_by_tid[tid] for tid in tids]

        sel_index = {dim: i for i, dim in enumerate(needed_dims)}
        specs: list[CuboidSpec] = []
        spec_meta: list[tuple[frozenset, tuple[str, ...], tuple[int, ...]]] = []
        for key in promote:
            dims = tuple(sorted(key))
            cardinalities = tuple(schema.cardinalities(dims))
            scale = scale_factor(cardinalities, state.grid.num_dims)
            specs.append(
                CuboidSpec(
                    dims=dims,
                    positions=tuple(sel_index[d] for d in dims),
                    scale=scale,
                )
            )
            spec_meta.append((key, dims, cardinalities))

        grouped = compute_build_groups(
            state.grid, specs, tids, points, sel_rows
        )
        built: dict[frozenset, RankingCuboid] = {}
        for (key, dims, cardinalities), groups, spec in zip(
            spec_meta, grouped.cuboid_groups, specs
        ):
            built[key] = RankingCuboid.from_groups(
                self.pool,
                dims,
                cardinalities,
                state.grid,
                groups,
                scale_override=spec.scale,
                epoch=epoch,
            )
        return built

    def _record(self, report: AdvisorReport) -> None:
        self.runs += 1
        self.last_report = report
        if self.registry is None:
            return
        self.registry.counter("route.advisor.runs").inc()
        if not report.swapped:
            name = (
                "route.advisor.aborts"
                if report.aborted
                else "route.advisor.noops"
            )
            self.registry.counter(name).inc()
            return
        self.registry.counter("route.advisor.swaps").inc()
        self.registry.counter("route.advisor.promotions").inc(
            len(report.promoted)
        )
        self.registry.counter("route.advisor.demotions").inc(
            len(report.demoted)
        )
        self.registry.gauge("route.advisor.entries").set(report.entries_after)

    # ------------------------------------------------------------------
    # background daemon
    # ------------------------------------------------------------------
    def start(self) -> "CubeAdvisor":
        """Start the background worker thread (idempotent)."""
        with self._cond:
            if self._closed:
                raise AdvisorError("advisor is closed")
            if self._thread is not None:
                return self
            self._thread = threading.Thread(
                target=self._worker, name="cube-advisor", daemon=True
            )
            self._thread.start()
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def wake(self) -> None:
        with self._cond:
            self._wake_requested = True
            self._cond.notify_all()

    def close(self, wait: bool = True) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            thread = self._thread
        if wait and thread is not None:
            thread.join()

    def _pending(self) -> bool:
        return (
            self._wake_requested
            or self.observed_since_swap >= self.min_observations
        )

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._closed and not self._pending():
                    self._cond.wait(timeout=0.05)
                if self._closed:
                    return
                self._wake_requested = False
            try:
                self.advise_once()
            except BaseException as exc:  # noqa: BLE001 - worker must survive
                self.last_error = exc
                if self.registry is not None:
                    self.registry.counter("route.advisor.errors").inc()

    # ------------------------------------------------------------------
    def __enter__(self) -> "CubeAdvisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
