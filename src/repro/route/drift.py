"""Distribution drift detection and online re-partitioning.

The equi-depth grid (Section 3.1.2) is balanced for the data it was built
over: every bin holds ~``T / bins`` tuples per dimension, which is what
makes ``expected_blocks_to_k`` honest and block occupancy uniform.  As
appended tuples shift the score distribution, new data piles into a few
bins (delta tuples are merged per query, and once compacted they inflate
the corresponding base blocks), progressive search degrades, and the cost
model quietly diverges from reality.

:class:`DriftDetector` measures exactly that: per ranking dimension it
counts the *live* population (base-table tuples plus the delta) per
existing bin and reports the worst ``max bin depth / expected depth``
ratio.  A fresh equi-depth build sits near 1.0 by construction; a drifted
stream pushes it up.  Past a threshold, :func:`repartition_cube` rebuilds
the grid over the current data and re-materializes base table and every
cuboid through the same snapshot → build-on-fresh-pages → flush → atomic
swap → invalidate seam the compactor uses, bumping every cuboid epoch so
no stale cache entry survives.  Queries in flight keep their pinned
snapshots (old grid, old stores) and finish exactly; queries opened after
the swap see the new geometry — never a mix.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from dataclasses import dataclass, field

from ..core.base_table import BaseBlockTable
from ..core.cube import RankingCube
from ..core.cuboid import RankingCuboid
from ..core.parallel import CuboidSpec, compute_build_groups
from ..core.partition import EquiDepthPartitioner, Partitioner
from ..obs.tracing import maybe_span
from ..relational.table import Table

#: A bin holding more than this multiple of the equi-depth expectation
#: marks the grid as drifted.  2.0 means "some bin carries double its
#: fair share" — far outside equi-depth construction noise.
DEFAULT_DRIFT_THRESHOLD = 2.0


@dataclass(frozen=True)
class DriftReport:
    """One drift measurement over the live (base + delta) population."""

    max_depth_ratio: float
    per_dim: dict = field(default_factory=dict)  #: dim -> worst bin ratio
    tuples: int = 0
    drifted: bool = False


class DriftDetector:
    """Compares live per-bin depths against the equi-depth expectation."""

    def __init__(
        self, cube: RankingCube, threshold: float = DEFAULT_DRIFT_THRESHOLD
    ):
        if threshold <= 1.0:
            raise ValueError(f"threshold must exceed 1.0, got {threshold}")
        self.cube = cube
        self.threshold = threshold
        self.last_report: DriftReport | None = None

    def check(self, state=None) -> DriftReport:
        """Measure drift against a snapshot (taken fresh when omitted)."""
        if state is None:
            state = self.cube.snapshot()
        # live per-dimension values: base-table points plus delta points
        values_by_dim: list[list[float]] = [[] for _ in state.grid.dims]
        for _bid, records in state.base_table.blocks():
            for record in records:
                for index in range(len(state.grid.dims)):
                    values_by_dim[index].append(float(record[1 + index]))
        for _tid, _sel, rank_values in state.delta:
            for index, dim in enumerate(state.grid.dims):
                values_by_dim[index].append(float(rank_values[dim]))

        per_dim: dict[str, float] = {}
        total = len(values_by_dim[0]) if values_by_dim else 0
        for index, dim in enumerate(state.grid.dims):
            edges = state.grid.boundaries[index]
            bins = len(edges) - 1
            if bins < 1 or total == 0:
                per_dim[dim] = 1.0
                continue
            counts = [0] * bins
            # interior edges split bins; values beyond either end clamp to
            # the edge bins, exactly as BlockGrid.locate places tuples
            for value in values_by_dim[index]:
                slot = bisect_right(edges, value, 1, bins) - 1
                counts[slot] += 1
            expected = total / bins
            per_dim[dim] = max(counts) / expected
        worst = max(per_dim.values(), default=1.0)
        report = DriftReport(
            max_depth_ratio=worst,
            per_dim=per_dim,
            tuples=total,
            drifted=worst > self.threshold,
        )
        self.last_report = report
        return report


@dataclass
class RepartitionReport:
    """What one :func:`repartition_cube` run did."""

    tuples: int = 0
    absorbed_delta: int = 0
    cuboids_rebuilt: int = 0
    blocks_before: int = 0
    blocks_after: int = 0
    swapped: bool = False
    aborted: bool = False        #: a concurrent swap raced us
    wall_s: float = 0.0
    epochs: dict = field(default_factory=dict)


def repartition_cube(
    cube: RankingCube,
    table: Table,
    pool,
    partitioner: Partitioner | None = None,
    registry=None,
    tracer=None,
) -> RepartitionReport:
    """Rebuild the grid over the live data and swap it in online.

    Follows the compactor's crash/concurrency discipline: everything is
    built from one snapshot on fresh pages, the pool is flushed before
    the swap (write-ahead ordering), the ``(grid, base_table, cuboids,
    delta)`` quadruple flips atomically under the cube's state lock, and
    invalidation listeners run after.  The whole snapshotted delta is
    absorbed — the new grid is built over base *and* delta points, so
    every one of them lands inside the new full box (no residuals).
    Cuboid epochs bump by one, exactly like a compaction generation.
    """
    started = time.perf_counter()
    report = RepartitionReport()
    if partitioner is None:
        partitioner = EquiDepthPartitioner()
    with maybe_span(tracer, "route.repartition") as span:
        state = cube.snapshot()
        report.blocks_before = state.grid.num_blocks
        drained = len(state.delta)

        # ---- gather the live population, tid-ordered (canonical order) --
        entries: list[tuple[int, tuple[float, ...], dict | None]] = []
        for _bid, records in state.base_table.blocks():
            for record in records:
                entries.append((int(record[0]), tuple(record[1:]), None))
        for tid, sel_values, rank_values in state.delta:
            point = tuple(
                float(rank_values[dim]) for dim in state.grid.dims
            )
            entries.append((int(tid), point, sel_values))
        entries.sort(key=lambda item: item[0])
        tids = [tid for tid, _point, _sel in entries]
        points = [point for _tid, point, _sel in entries]
        report.tuples = len(tids)
        report.absorbed_delta = drained

        # ---- new equi-depth geometry over the live distribution ---------
        columns = [list(column) for column in zip(*points)]
        new_grid = partitioner.build_grid(
            state.grid.dims, columns, cube.block_size
        )
        report.blocks_after = new_grid.num_blocks

        # ---- selection values: base rows from one relation scan, delta
        # rows from their stored selection dicts -------------------------
        cuboid_keys = sorted(
            state.cuboids, key=lambda key: (len(key), sorted(key))
        )
        needed_dims = tuple(
            sorted(set().union(*cuboid_keys)) if cuboid_keys else ()
        )
        schema = table.schema
        needed_pos = {dim: schema.position(dim) for dim in needed_dims}
        sel_by_tid: dict[int, tuple[int, ...]] = {}
        delta_sel = {
            tid: sel for tid, _point, sel in entries if sel is not None
        }
        if needed_dims:
            wanted = set(tids)
            for record in table.scan():
                tid = int(record[0])
                if tid in wanted and tid not in delta_sel:
                    sel_by_tid[tid] = tuple(
                        int(record[1 + needed_pos[d]]) for d in needed_dims
                    )
            for tid, sel in delta_sel.items():
                sel_by_tid[tid] = tuple(
                    int(sel[d]) for d in needed_dims
                )
        sel_rows = [sel_by_tid.get(tid, ()) for tid in tids]

        # ---- regroup and rebuild every store on fresh pages -------------
        sel_index = {dim: i for i, dim in enumerate(needed_dims)}
        specs = [
            CuboidSpec(
                dims=state.cuboids[key].dims,
                positions=tuple(
                    sel_index[d] for d in state.cuboids[key].dims
                ),
                scale=state.cuboids[key].scale_factor,
            )
            for key in cuboid_keys
        ]
        grouped = compute_build_groups(new_grid, specs, tids, points, sel_rows)
        new_base = BaseBlockTable.from_groups(
            pool, new_grid, grouped.base_groups
        )
        new_cuboids: dict[frozenset, RankingCuboid] = {}
        for key, groups in zip(cuboid_keys, grouped.cuboid_groups):
            old = state.cuboids[key]
            new_cuboids[key] = RankingCuboid.from_groups(
                pool,
                old.dims,
                old.cardinalities,
                new_grid,
                groups,
                scale_override=old.scale_factor,
                compress=old.compressed,
                epoch=old.epoch + 1,
            )
        report.cuboids_rebuilt = len(new_cuboids)

        # ---- durability before visibility -------------------------------
        pool.flush()

        # ---- atomic swap -------------------------------------------------
        with cube._state_lock:
            if cube.base_table is not state.base_table:
                report.aborted = True
                report.wall_s = time.perf_counter() - started
                _record(registry, report)
                return report
            cube.grid = new_grid
            cube.base_table = new_base
            cube.cuboids = new_cuboids
            cube._delta = cube._delta[drained:]
        cube._notify_invalidation()

        report.swapped = True
        report.epochs = {c.name: c.epoch for c in new_cuboids.values()}
        if span is not None:
            span.add_many(
                tuples=report.tuples,
                absorbed_delta=report.absorbed_delta,
                blocks_after=report.blocks_after,
            )
    report.wall_s = time.perf_counter() - started
    _record(registry, report)
    return report


def _record(registry, report: RepartitionReport) -> None:
    if registry is None:
        return
    registry.counter("route.repartition.runs").inc()
    if not report.swapped:
        registry.counter("route.repartition.aborts").inc()
        return
    registry.counter("route.repartition.swaps").inc()
    registry.counter("route.repartition.tuples").inc(report.tuples)
    registry.counter("route.repartition.delta_absorbed").inc(
        report.absorbed_delta
    )
    registry.histogram("route.repartition.wall_s").observe(report.wall_s)
