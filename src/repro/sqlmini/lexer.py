"""Tokenizer for the paper's SQL dialect.

Handles exactly the surface syntax of Section 2's query template::

    SELECT TOP k [cols] FROM R WHERE A1 = a1 AND ... ORDER BY f(N1..Nj) [ASC|DESC]

Keywords are case-insensitive; numbers may be integers or decimals with an
optional suffix ``k`` (the paper writes "$10k" style literals in its
examples, e.g. ``(price - 10k)^2``).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator


class SqlError(Exception):
    """Raised for lexical or syntactic problems in a query string."""


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    END = "end"


KEYWORDS = {
    "select", "top", "from", "where", "and", "order", "by", "asc", "desc",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(?:\.\d+)?(?:[kK]\b)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<string>'[^']*')
  | (?P<symbol>\*\*|<=|>=|<>|!=|[-+*/(),=<>])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def is_symbol(self, symbol: str) -> bool:
        return self.kind is TokenKind.SYMBOL and self.text == symbol


def tokenize(sql: str) -> list[Token]:
    """Tokenize a query string; raises :class:`SqlError` on junk."""
    tokens: list[Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SqlError(f"unexpected character {sql[position]!r} at offset {position}")
        position = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        if match.lastgroup == "number":
            tokens.append(Token(TokenKind.NUMBER, text, match.start()))
        elif match.lastgroup == "ident":
            lowered = text.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, lowered, match.start()))
            else:
                tokens.append(Token(TokenKind.IDENT, text, match.start()))
        elif match.lastgroup == "string":
            tokens.append(Token(TokenKind.STRING, text[1:-1], match.start()))
        else:
            tokens.append(Token(TokenKind.SYMBOL, text, match.start()))
    tokens.append(Token(TokenKind.END, "", len(sql)))
    return tokens


def number_value(text: str) -> float:
    """Numeric value of a number token (``10k`` -> 10000)."""
    if text[-1] in "kK":
        return float(text[:-1]) * 1000.0
    return float(text)


class TokenStream:
    """Cursor over a token list with one-token lookahead."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.END:
            self._pos += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise SqlError(
                f"expected {word.upper()!r} at offset {self.current.position}, "
                f"found {self.current.text!r}"
            )
        return self.advance()

    def expect_symbol(self, symbol: str) -> Token:
        if not self.current.is_symbol(symbol):
            raise SqlError(
                f"expected {symbol!r} at offset {self.current.position}, "
                f"found {self.current.text!r}"
            )
        return self.advance()

    def expect_kind(self, kind: TokenKind) -> Token:
        if self.current.kind is not kind:
            raise SqlError(
                f"expected {kind.value} at offset {self.current.position}, "
                f"found {self.current.text!r}"
            )
        return self.advance()

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def accept_symbol(self, symbol: str) -> bool:
        if self.current.is_symbol(symbol):
            self.advance()
            return True
        return False

    def __iter__(self) -> Iterator[Token]:
        return iter(self._tokens[self._pos:])
