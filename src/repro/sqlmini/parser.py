"""Parser for top-k SQL statements.

Grammar (Section 2's template)::

    query      := SELECT TOP number projection FROM ident
                  [WHERE condition (AND condition)*]
                  ORDER BY expression [ASC | DESC]
    projection := '*' | ident (',' ident)* | <empty>
    condition  := ident '=' (number | string | ident)
    expression := additive arithmetic over idents, numbers, abs(), pow()

Use :func:`parse_topk` to get a :class:`ParsedQuery`, or
:func:`compile_topk` to validate against a schema and produce an
executable :class:`~repro.relational.query.TopKQuery` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..relational.query import TopKQuery
from ..relational.schema import Schema
from .expr import BinOp, Call, Col, Expr, Neg, Num, to_ranking_function
from .lexer import SqlError, Token, TokenKind, TokenStream, number_value, tokenize


@dataclass(frozen=True)
class ParsedQuery:
    """Syntactic form of a top-k statement, before schema binding."""

    k: int
    table: str
    projection: tuple[str, ...] | None  # None == SELECT * / bare SELECT TOP k
    selections: dict[str, object]       # value: int | float | str
    order_expr: Expr
    order: str                          # "asc" | "desc"


def parse_topk(sql: str) -> ParsedQuery:
    """Parse one top-k statement into its syntactic form."""
    stream = TokenStream(tokenize(sql))
    stream.expect_keyword("select")
    stream.expect_keyword("top")
    k_token = stream.expect_kind(TokenKind.NUMBER)
    k_value = number_value(k_token.text)
    if k_value != int(k_value) or int(k_value) < 1:
        raise SqlError(f"TOP expects a positive integer, got {k_token.text!r}")

    projection: tuple[str, ...] | None = None
    if stream.accept_symbol("*"):
        projection = None
    elif stream.current.kind is TokenKind.IDENT:
        names = [stream.advance().text]
        while stream.accept_symbol(","):
            names.append(stream.expect_kind(TokenKind.IDENT).text)
        projection = tuple(names)

    stream.expect_keyword("from")
    table = stream.expect_kind(TokenKind.IDENT).text

    selections: dict[str, object] = {}
    if stream.accept_keyword("where"):
        while True:
            name = stream.expect_kind(TokenKind.IDENT).text
            stream.expect_symbol("=")
            selections[name] = _condition_value(stream)
            if not stream.accept_keyword("and"):
                break

    stream.expect_keyword("order")
    stream.expect_keyword("by")
    order_expr = _parse_expression(stream)
    order = "asc"
    if stream.accept_keyword("desc"):
        order = "desc"
    else:
        stream.accept_keyword("asc")
    if stream.current.kind is not TokenKind.END:
        raise SqlError(
            f"unexpected trailing input at offset {stream.current.position}: "
            f"{stream.current.text!r}"
        )
    return ParsedQuery(
        k=int(k_value),
        table=table,
        projection=projection,
        selections=selections,
        order_expr=order_expr,
        order=order,
    )


def compile_topk(
    sql: str,
    schema: Schema,
    value_encoders: Mapping[str, Mapping[str, int]] | None = None,
) -> TopKQuery:
    """Parse and bind a statement against a schema.

    ``value_encoders`` optionally maps attribute name -> {label: code} so
    queries may use human-readable categorical labels (``type = 'sedan'``)
    against dictionary-encoded columns.
    """
    parsed = parse_topk(sql)
    selections: dict[str, int] = {}
    for name, raw in parsed.selections.items():
        if isinstance(raw, str):
            encoder = (value_encoders or {}).get(name)
            if encoder is None or raw not in encoder:
                raise SqlError(
                    f"no encoding for {name} = {raw!r}; pass value_encoders"
                )
            selections[name] = encoder[raw]
        else:
            if raw != int(raw):
                raise SqlError(f"selection value for {name} must be integral, got {raw}")
            selections[name] = int(raw)
    ranking = to_ranking_function(
        parsed.order_expr, parsed.order, ranking_dims=schema.ranking_names
    )
    query = TopKQuery(
        parsed.k, selections, ranking, projection=parsed.projection
    )
    query.validate_against(schema)
    return query


# ----------------------------------------------------------------------
# expression parsing (precedence climbing)
# ----------------------------------------------------------------------
def _condition_value(stream: TokenStream) -> object:
    token = stream.current
    if token.kind is TokenKind.NUMBER:
        stream.advance()
        return number_value(token.text)
    if token.kind is TokenKind.STRING:
        stream.advance()
        return token.text
    if token.kind is TokenKind.IDENT:
        stream.advance()
        return token.text  # bare label, resolved by value_encoders
    raise SqlError(f"expected a value at offset {token.position}, found {token.text!r}")


def _parse_expression(stream: TokenStream) -> Expr:
    return _parse_additive(stream)


def _parse_additive(stream: TokenStream) -> Expr:
    node = _parse_multiplicative(stream)
    while True:
        if stream.accept_symbol("+"):
            node = BinOp("+", node, _parse_multiplicative(stream))
        elif stream.accept_symbol("-"):
            node = BinOp("-", node, _parse_multiplicative(stream))
        else:
            return node


def _parse_multiplicative(stream: TokenStream) -> Expr:
    node = _parse_unary(stream)
    while True:
        if stream.accept_symbol("*"):
            node = BinOp("*", node, _parse_unary(stream))
        elif stream.accept_symbol("/"):
            node = BinOp("/", node, _parse_unary(stream))
        else:
            return node


def _parse_unary(stream: TokenStream) -> Expr:
    if stream.accept_symbol("-"):
        return Neg(_parse_unary(stream))
    if stream.accept_symbol("+"):
        return _parse_unary(stream)
    return _parse_power(stream)


def _parse_power(stream: TokenStream) -> Expr:
    base = _parse_atom(stream)
    if stream.accept_symbol("**"):
        # right-associative exponent
        return BinOp("**", base, _parse_unary(stream))
    return base


def _parse_atom(stream: TokenStream) -> Expr:
    token = stream.current
    if token.kind is TokenKind.NUMBER:
        stream.advance()
        return Num(number_value(token.text))
    if token.kind is TokenKind.IDENT:
        stream.advance()
        if stream.accept_symbol("("):
            args = [_parse_expression(stream)]
            while stream.accept_symbol(","):
                args.append(_parse_expression(stream))
            stream.expect_symbol(")")
            return Call(token.text.lower(), tuple(args))
        return Col(token.text)
    if stream.accept_symbol("("):
        node = _parse_expression(stream)
        stream.expect_symbol(")")
        return node
    raise SqlError(f"unexpected token {token.text!r} at offset {token.position}")
