"""Arithmetic expression AST for ORDER BY clauses.

Expressions are parsed into a small AST, then *classified* into the most
structured ranking function available:

1. affine       -> :class:`LinearFunction` (+ constant offset),
2. Lp distance  -> :class:`LpDistance` (``w*(x-t)**p`` / ``w*abs(x-t)`` sums),
3. anything else -> :class:`ConvexFunction` wrapping an AST evaluator —
   the caller asserts convexity, exactly as with a hand-built
   :class:`ConvexFunction`.

Classification matters because the structured classes carry exact
closed-form block lower bounds; the fallback pays the numeric minimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..ranking.functions import (
    ConvexFunction,
    LinearFunction,
    LpDistance,
    RankingFunction,
    descending,
)
from .lexer import SqlError


class Expr:
    """Base expression node."""

    def columns(self) -> set[str]:
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, float]) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class Num(Expr):
    value: float

    def columns(self) -> set[str]:
        return set()

    def evaluate(self, env: Mapping[str, float]) -> float:
        return self.value


@dataclass(frozen=True)
class Col(Expr):
    name: str

    def columns(self) -> set[str]:
        return {self.name}

    def evaluate(self, env: Mapping[str, float]) -> float:
        try:
            return float(env[self.name])
        except KeyError:
            raise SqlError(f"unbound column {self.name!r}") from None


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def evaluate(self, env: Mapping[str, float]) -> float:
        a = self.left.evaluate(env)
        b = self.right.evaluate(env)
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        if self.op == "/":
            if b == 0:
                raise SqlError("division by zero in ranking expression")
            return a / b
        if self.op == "**":
            return a ** b
        raise SqlError(f"unknown operator {self.op!r}")


@dataclass(frozen=True)
class Neg(Expr):
    inner: Expr

    def columns(self) -> set[str]:
        return self.inner.columns()

    def evaluate(self, env: Mapping[str, float]) -> float:
        return -self.inner.evaluate(env)


@dataclass(frozen=True)
class Call(Expr):
    name: str
    args: tuple[Expr, ...]

    def columns(self) -> set[str]:
        cols: set[str] = set()
        for arg in self.args:
            cols |= arg.columns()
        return cols

    def evaluate(self, env: Mapping[str, float]) -> float:
        values = [arg.evaluate(env) for arg in self.args]
        if self.name == "abs" and len(values) == 1:
            return abs(values[0])
        if self.name == "pow" and len(values) == 2:
            return values[0] ** values[1]
        raise SqlError(f"unknown function {self.name!r}/{len(values)}")


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------
def to_ranking_function(
    expr: Expr, order: str = "asc", ranking_dims: Sequence[str] | None = None
) -> RankingFunction:
    """Compile an ORDER BY expression into a ranking function.

    ``ranking_dims``, when given, pins the dimension order (and validates
    that the expression only reads ranking attributes); otherwise columns
    are taken in sorted name order.
    """
    columns = sorted(expr.columns())
    if not columns:
        raise SqlError("ORDER BY expression reads no columns")
    if ranking_dims is not None:
        unknown = set(columns) - set(ranking_dims)
        if unknown:
            raise SqlError(f"ORDER BY uses non-ranking columns {sorted(unknown)}")
        columns = [d for d in ranking_dims if d in set(columns)]

    fn = _classify(expr, columns)
    if order == "desc":
        fn = descending(fn)
    return fn


def _classify(expr: Expr, columns: list[str]) -> RankingFunction:
    affine = extract_affine(expr)
    if affine is not None:
        const, coeffs = affine
        weights = [coeffs.get(col, 0.0) for col in columns]
        return LinearFunction(columns, weights, offset=const)
    distance = extract_lp_distance(expr)
    if distance is not None:
        p, terms = distance
        term_map = {col: (weight, target) for col, weight, target in terms}
        if set(term_map) == set(columns):
            ordered = [term_map[col] for col in columns]
            return LpDistance(
                columns,
                [t for _w, t in ordered],
                p=p,
                weights=[w for w, _t in ordered],
            )
    return ConvexFunction(
        columns,
        lambda *values: expr.evaluate(dict(zip(columns, values))),
        name="sql",
    )


def extract_affine(expr: Expr) -> tuple[float, dict[str, float]] | None:
    """``(constant, {column: coefficient})`` if the expression is affine."""
    if isinstance(expr, Num):
        return expr.value, {}
    if isinstance(expr, Col):
        return 0.0, {expr.name: 1.0}
    if isinstance(expr, Neg):
        inner = extract_affine(expr.inner)
        if inner is None:
            return None
        const, coeffs = inner
        return -const, {c: -w for c, w in coeffs.items()}
    if isinstance(expr, BinOp):
        left = extract_affine(expr.left)
        right = extract_affine(expr.right)
        if expr.op in ("+", "-") and left is not None and right is not None:
            sign = 1.0 if expr.op == "+" else -1.0
            const = left[0] + sign * right[0]
            coeffs = dict(left[1])
            for col, weight in right[1].items():
                coeffs[col] = coeffs.get(col, 0.0) + sign * weight
            return const, {c: w for c, w in coeffs.items() if w != 0.0}
        if expr.op == "*" and left is not None and right is not None:
            if not left[1]:  # constant * affine
                scale = left[0]
                return scale * right[0], {c: scale * w for c, w in right[1].items()}
            if not right[1]:
                scale = right[0]
                return scale * left[0], {c: scale * w for c, w in left[1].items()}
            return None
        if expr.op == "/" and left is not None and right is not None and not right[1]:
            if right[0] == 0:
                raise SqlError("division by zero in ranking expression")
            scale = 1.0 / right[0]
            return scale * left[0], {c: scale * w for c, w in left[1].items()}
        if expr.op == "**" and left is not None and right is not None:
            if not left[1] and not right[1]:
                return left[0] ** right[0], {}
    return None


def extract_lp_distance(
    expr: Expr,
) -> tuple[float, list[tuple[str, float, float]]] | None:
    """Detect ``sum of w_i * |x_i - t_i| ** p`` shapes.

    Returns ``(p, [(column, weight, target), ...])`` or ``None``.  All
    terms must share the same exponent p and weights must be positive.
    """
    terms = _flatten_sum(expr)
    parsed: list[tuple[str, float, float, float]] = []  # col, w, t, p
    for term in terms:
        item = _parse_distance_term(term)
        if item is None:
            return None
        parsed.append(item)
    if not parsed:
        return None
    exponents = {p for _c, _w, _t, p in parsed}
    if len(exponents) != 1:
        return None
    p = exponents.pop()
    columns = [c for c, _w, _t, _p in parsed]
    if len(set(columns)) != len(columns):
        return None
    return p, [(c, w, t) for c, w, t, _p in parsed]


def _flatten_sum(expr: Expr) -> list[Expr]:
    if isinstance(expr, BinOp) and expr.op == "+":
        return _flatten_sum(expr.left) + _flatten_sum(expr.right)
    return [expr]


def _parse_distance_term(term: Expr) -> tuple[str, float, float, float] | None:
    weight = 1.0
    # optional leading constant factor
    if isinstance(term, BinOp) and term.op == "*":
        left_affine = extract_affine(term.left)
        right_affine = extract_affine(term.right)
        if left_affine is not None and not left_affine[1]:
            weight = left_affine[0]
            term = term.right
        elif right_affine is not None and not right_affine[1]:
            weight = right_affine[0]
            term = term.left
    if weight <= 0:
        return None
    # (x - t) ** p  or  pow(x - t, p)
    if isinstance(term, BinOp) and term.op == "**":
        base, exponent = term.left, term.right
    elif isinstance(term, Call) and term.name == "pow" and len(term.args) == 2:
        base, exponent = term.args
    elif isinstance(term, Call) and term.name == "abs" and len(term.args) == 1:
        base, exponent = term.args[0], Num(1.0)
    else:
        return None
    exp_affine = extract_affine(exponent)
    if exp_affine is None or exp_affine[1]:
        return None
    p = exp_affine[0]
    if p < 1:
        return None
    if p > 1 and p % 2 != 0 and not isinstance(term, Call):
        # odd powers of a signed base are not |x-t|^p; reject
        return None
    base_affine = extract_affine(base)
    if base_affine is None or len(base_affine[1]) != 1:
        return None
    const, coeffs = base_affine
    (column, coeff), = coeffs.items()
    if coeff == 0:
        return None
    # w * (a*x + b) ** p == w*|a|^p * |x - (-b/a)| ** p for even p / abs
    target = -const / coeff
    weight *= abs(coeff) ** p
    return column, weight, target, p
