"""A tiny SQL front-end for the paper's top-k dialect.

``SELECT TOP k ... FROM R WHERE A = a AND ... ORDER BY f(N1..Nj) [DESC]``
parses into :class:`~repro.relational.query.TopKQuery` objects; ORDER BY
expressions classify into the structured ranking-function families when
their shape allows (linear, Lp distance), falling back to a generic convex
wrapper otherwise.
"""

from .expr import (
    BinOp,
    Call,
    Col,
    Expr,
    Neg,
    Num,
    extract_affine,
    extract_lp_distance,
    to_ranking_function,
)
from .lexer import SqlError, Token, TokenKind, tokenize
from .parser import ParsedQuery, compile_topk, parse_topk

__all__ = [
    "BinOp",
    "Call",
    "Col",
    "Expr",
    "Neg",
    "Num",
    "ParsedQuery",
    "SqlError",
    "Token",
    "TokenKind",
    "compile_topk",
    "extract_affine",
    "extract_lp_distance",
    "parse_topk",
    "to_ranking_function",
    "tokenize",
]
