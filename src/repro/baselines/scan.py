"""The Baseline approach (Section 5.1.2, "BL").

Models what a commercial engine does with a non-clustered index on each
selection dimension: a cost-based choice between

* **index plan** — probe the most selective index among the query's
  conditions, random-fetch every rid it returns, filter the remaining
  conditions on the fetched tuples, score, and keep a top-k heap; and
* **scan plan** — sequential scan of the whole heap when the index plan's
  expected random I/O exceeds the scan's sequential I/O.

Either way, *every* qualifying tuple is evaluated — the behavior whose cost
the ranking cube avoids (the paper: "current database systems will have to
evaluate all the data records").
"""

from __future__ import annotations

import heapq

from ..relational.query import QueryResult, ResultRow, TopKQuery
from ..relational.table import Table
from ..storage.device import RANDOM_READ_WEIGHT, SEQ_READ_WEIGHT


class BaselineExecutor:
    """Index-or-scan top-k execution over the base relation."""

    def __init__(self, table: Table):
        self.table = table
        self.last_plan: str | None = None

    # ------------------------------------------------------------------
    def execute(self, query: TopKQuery) -> QueryResult:
        query.validate_against(self.table.schema)
        plan_attr = self._choose_index(query)
        if plan_attr is None:
            self.last_plan = "scan"
            return self._scan_plan(query)
        self.last_plan = f"index({plan_attr})"
        return self._index_plan(query, plan_attr)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _choose_index(self, query: TopKQuery) -> str | None:
        """Most selective indexed condition, if cheaper than scanning."""
        best_attr = None
        best_rows = None
        for name, value in query.selections.items():
            if name not in self.table.secondary_indexes:
                continue
            rows = self.table.value_count(name, value)
            if best_rows is None or rows < best_rows:
                best_attr, best_rows = name, rows
        if best_attr is None:
            return None
        # one random fetch per matching rid vs. one sequential read per page
        index_cost = RANDOM_READ_WEIGHT * (best_rows or 0)
        scan_cost = SEQ_READ_WEIGHT * self.table.heap.num_pages
        return best_attr if index_cost < scan_cost else None

    # ------------------------------------------------------------------
    # plans
    # ------------------------------------------------------------------
    def _scan_plan(self, query: TopKQuery) -> QueryResult:
        schema = self.table.schema
        result = QueryResult()
        topk: list[tuple[float, int]] = []
        for record in self.table.scan():
            tid, row = int(record[0]), record[1:]
            if not query.matches(schema, row):
                continue
            score = query.score_row(schema, row)
            result.tuples_examined += 1
            _push_topk(topk, query.k, score, tid)
        result.blocks_accessed = self.table.heap.num_pages
        result.rows = _finish(topk, query, self.table)
        return result

    def _index_plan(self, query: TopKQuery, attr: str) -> QueryResult:
        schema = self.table.schema
        index = self.table.secondary_indexes[attr]
        rids = index.lookup(query.selections[attr])
        result = QueryResult()
        topk: list[tuple[float, int]] = []
        for rid in rids:
            record = self.table.fetch_by_rid(rid)
            result.blocks_accessed += 1
            tid, row = int(record[0]), record[1:]
            if not query.matches(schema, row):
                continue
            score = query.score_row(schema, row)
            result.tuples_examined += 1
            _push_topk(topk, query.k, score, tid)
        result.rows = _finish(topk, query, self.table)
        return result


def _push_topk(topk: list[tuple[float, int]], k: int, score: float, tid: int) -> None:
    entry = (-score, -tid)
    if len(topk) < k:
        heapq.heappush(topk, entry)
    elif entry > topk[0]:
        heapq.heapreplace(topk, entry)


def _finish(
    topk: list[tuple[float, int]], query: TopKQuery, table: Table
) -> list[ResultRow]:
    rows = [
        ResultRow(tid=-neg_tid, score=-neg_score)
        for neg_score, neg_tid in sorted(topk, reverse=True)
    ]
    if query.projection:
        schema = table.schema
        rows = [
            ResultRow(
                tid=row.tid,
                score=row.score,
                values=tuple(
                    table.fetch_by_tid(row.tid)[schema.position(name)]
                    for name in query.projection
                ),
            )
            for row in rows
        ]
    return rows
