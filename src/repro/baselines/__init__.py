"""Comparison methods.

The paper's evaluated competitors: :class:`BaselineExecutor` ("BL") and
:class:`RankMappingExecutor` ("RM").  Plus the two rank-aware prior-art
techniques the paper criticizes as selection-unaware — :class:`OnionIndex`
and :class:`PreferView` — implemented to quantify that motivation.
"""

from .onion import OnionIndex
from .prefer import PreferView
from .rank_mapping import RankMappingExecutor
from .scan import BaselineExecutor

__all__ = ["BaselineExecutor", "OnionIndex", "PreferView", "RankMappingExecutor"]
