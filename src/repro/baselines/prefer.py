"""The PREFER technique [Hristidis et al., reference [6] of the paper].

PREFER materializes a *ranked view*: tuples sorted by a reference linear
function ``f_v`` with positive weights.  A query function ``f_q`` (also
positive-linear over the same dimensions, values normalized to ``[0, 1]``)
is answered by scanning the view in ``f_v`` order while maintaining a
watermark: since

    f_q(t) = sum_i (wq_i / wv_i) * wv_i * t_i
           >= min_i(wq_i / wv_i) * f_v(t)          (all terms nonnegative)

every tuple at view position >= p satisfies
``f_q >= ratio * f_v(view[p])``, so the scan stops as soon as the k-th
best seen score is below that bound.

Like Onion, PREFER predates multi-dimensional selections: conditions are
filtered per scanned tuple with a heap fetch — the degradation the paper's
introduction calls out.  Views are stored through the paged storage layer
(a heap in ``f_v`` order), so scans cost sequential I/O like the original.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from ..ranking.functions import LinearFunction
from ..relational.query import QueryError, QueryResult, ResultRow, TopKQuery
from ..relational.table import Table
from ..storage.heap import HeapFile
from ..storage.pages import RecordCodec


class PreferView:
    """A materialized ranked view over the relation's ranking dimensions.

    Parameters
    ----------
    table:
        Source relation.
    view_weights:
        Positive weights of the reference function ``f_v``; defaults to
        the balanced function (all ones).
    """

    def __init__(
        self,
        table: Table,
        ranking_dims: Sequence[str] | None = None,
        view_weights: Sequence[float] | None = None,
    ):
        self.table = table
        schema = table.schema
        if ranking_dims is None:
            ranking_dims = schema.ranking_names
        self.ranking_dims = tuple(ranking_dims)
        if view_weights is None:
            view_weights = [1.0] * len(self.ranking_dims)
        if len(view_weights) != len(self.ranking_dims):
            raise QueryError("one view weight per ranking dimension required")
        if any(w <= 0 for w in view_weights):
            raise QueryError("PREFER view weights must be positive")
        self.view_weights = tuple(float(w) for w in view_weights)

        positions = [schema.position(d) for d in self.ranking_dims]
        rows = []
        for record in table.scan():
            tid = int(record[0])
            values = tuple(float(record[1 + p]) for p in positions)
            view_score = sum(w * x for w, x in zip(self.view_weights, values))
            rows.append((view_score, tid, values))
        rows.sort()
        codec = RecordCodec("dq" + "d" * len(self.ranking_dims))
        self._view = HeapFile(table.pool, codec)
        self._view.extend(
            (view_score, tid, *values) for view_score, tid, values in rows
        )
        self._view.seal()

    # ------------------------------------------------------------------
    def execute(self, query: TopKQuery) -> QueryResult:
        """Watermark scan of the ranked view."""
        fn = query.ranking
        if not isinstance(fn, LinearFunction):
            raise QueryError("PREFER supports linear ranking functions only")
        if set(fn.dims) != set(self.ranking_dims):
            raise QueryError(
                f"view is ranked over {self.ranking_dims}; the query must "
                "rank over exactly those dimensions"
            )
        if any(w < 0 for w in fn.weights):
            raise QueryError("PREFER requires non-negative query weights")
        query.validate_against(self.table.schema)
        schema = self.table.schema

        # per-dimension weight ratio in *view* dimension order
        query_w = dict(zip(fn.dims, fn.weights))
        ratio = min(
            query_w[d] / wv for d, wv in zip(self.ranking_dims, self.view_weights)
        )
        value_positions = {d: i for i, d in enumerate(self.ranking_dims)}
        fn_positions = [value_positions[d] for d in fn.dims]

        result = QueryResult()
        topk: list[tuple[float, int]] = []
        for _rid, record in self._view.scan():
            view_score = float(record[0])
            tid = int(record[1])
            values = record[2:]
            watermark = fn.offset + ratio * view_score
            if len(topk) >= query.k and -topk[0][0] <= watermark:
                break
            if query.selections:
                row = self.table.fetch_by_tid(tid)
                result.blocks_accessed += 1
                if not query.matches(schema, row):
                    continue
            score = fn.score([values[p] for p in fn_positions])
            result.tuples_examined += 1
            entry = (-score, -tid)
            if len(topk) < query.k:
                heapq.heappush(topk, entry)
            elif entry > topk[0]:
                heapq.heapreplace(topk, entry)
        result.rows = [
            ResultRow(tid=-neg_tid, score=-neg_score)
            for neg_score, neg_tid in sorted(topk, reverse=True)
        ]
        return result

    @property
    def size_in_bytes(self) -> int:
        return self._view.size_in_bytes

    def __len__(self) -> int:
        return len(self._view)
